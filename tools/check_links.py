#!/usr/bin/env python3
"""Check that relative markdown links in the given files resolve.

Usage:  python tools/check_links.py README.md docs/*.md

For every ``[text](target)`` whose target is not an absolute URL or a
pure in-page anchor, the target path (resolved against the containing
file's directory, ``#fragment`` stripped) must exist.  Exits non-zero
listing every broken link.  Stdlib only — this runs in the CI docs-lint
leg next to ``python -m doctest`` over the same files.
"""

import re
import sys
from pathlib import Path

LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
EXTERNAL = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")  # http:, https:, mailto:


def broken_links(path: Path):
    base = path.parent
    for target in LINK.findall(path.read_text(encoding="utf-8")):
        if EXTERNAL.match(target) or target.startswith("#"):
            continue
        resolved = base / target.split("#", 1)[0]
        if not resolved.exists():
            yield target


def main(arguments) -> int:
    if not arguments:
        print("usage: check_links.py FILE.md [FILE.md ...]", file=sys.stderr)
        return 2
    status = 0
    for name in arguments:
        path = Path(name)
        if not path.exists():
            print(f"{name}: file not found", file=sys.stderr)
            status = 1
            continue
        for target in broken_links(path):
            print(f"{name}: broken link -> {target}", file=sys.stderr)
            status = 1
    if status == 0:
        print(f"checked {len(arguments)} file(s): all relative links resolve")
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
