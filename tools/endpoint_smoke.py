#!/usr/bin/env python3
"""CI smoke for the admin HTTP surface: start, serve, scrape, lint, exit.

Usage:  python tools/endpoint_smoke.py

Stands a :class:`~repro.serve.PublishingService` up on an ephemeral admin
port (``admin_port=0``) with SLO tracking and a temporary audit log,
drives a few publishes and one update through it, then:

* hits every admin route and fails on any unexpected status code;
* pipes the live ``/metrics`` body through the ``--scrape`` lint of
  ``tools/check_metrics.py`` (the same validator CI runs over the
  source tree);
* checks ``/health`` reports ``healthy``, ``/stats`` carries the audit
  and SLO sections, and the audit log on disk replays every
  acknowledged request.

Exits non-zero with the violation list on any failure.  Stdlib only.
"""

import json
import sys
import tempfile
import urllib.error
import urllib.request
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from check_metrics import lint_scrape  # noqa: E402
from repro.obs import AuditLog  # noqa: E402
from repro.replica import ChangeSet  # noqa: E402
from repro.serve import PublishingService  # noqa: E402
from repro.workloads import medical  # noqa: E402


def get(base: str, path: str):
    """``(status, body_bytes)`` for one GET, errors included."""
    try:
        with urllib.request.urlopen(base + path, timeout=10.0) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as error:
        return error.code, error.read()


def main() -> int:
    failures = []
    audit_dir = tempfile.mkdtemp(prefix="mars-audit-smoke-")
    service = PublishingService(
        medical.build_configuration(),
        pool_size=2,
        admin_port=0,
        audit_dir=audit_dir,
        slo_target_p99=5.0,
        profile_sample=1,
    )
    published = 0
    try:
        base = f"http://127.0.0.1:{service.admin_port}"
        print(f"admin endpoint up at {base}")
        for _ in range(3):
            service.publish(medical.client_query())
            published += 1
        lsn = service.update(
            ChangeSet.build(inserts={"drugPrice": [("smokeine", 9.99)]})
        )
        expected = {
            "/metrics": 200,
            "/stats": 200,
            "/health": 200,
            "/ready": 200,
            "/events": 200,
            "/traces/recent": 200,
            "/profiles/recent": 200,
            "/profiles/worst": 200,
            "/definitely-not-a-route": 404,
        }
        bodies = {}
        for path, want in expected.items():
            status, body = get(base, path)
            bodies[path] = body
            if status != want:
                failures.append(f"GET {path}: status {status}, wanted {want}")
        scrape = bodies["/metrics"].decode("utf-8")
        scrape_failures, families = lint_scrape(scrape)
        failures.extend(f"/metrics lint: {failure}" for failure in scrape_failures)
        if not scrape_failures:
            print(f"/metrics: {families} families, lint-clean")
        if "mars_profile" not in scrape:
            failures.append("/metrics is missing the mars_profile_* family")
        profiles = json.loads(bodies["/profiles/recent"])
        if not profiles.get("profiles"):
            failures.append("/profiles/recent returned no profiles")
        else:
            root = profiles["profiles"][0].get("profile", {})
            if root.get("actual_rows") is None:
                failures.append(
                    "/profiles/recent root node is missing actual_rows"
                )
        worst = json.loads(bodies["/profiles/worst"])
        if worst.get("worst_q_error", 0.0) < 1.0:
            failures.append(f"/profiles/worst q-error malformed: {worst}")
        health = json.loads(bodies["/health"])
        if health.get("status") != "healthy":
            failures.append(f"/health reports {health.get('status')!r}: {health}")
        stats = json.loads(bodies["/stats"])
        for key in ("uptime_seconds", "started_at", "version", "audit", "slo"):
            if key not in stats:
                failures.append(f"/stats is missing {key!r}")
        if stats.get("last_write_lsn") != lsn:
            failures.append(
                f"/stats LSN {stats.get('last_write_lsn')} != update LSN {lsn}"
            )
    finally:
        service.close()
    with AuditLog(audit_dir) as audit:
        entries = list(audit.entries())
    publishes = [entry for entry in entries if entry["kind"] == "publish"]
    updates = [entry for entry in entries if entry["kind"] == "update"]
    if len(publishes) != published:
        failures.append(
            f"audit log replays {len(publishes)} publish(es), "
            f"expected {published}"
        )
    if len(updates) != 1 or updates[0].get("lsn") != lsn:
        failures.append(f"audit log update entries wrong: {updates}")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if failures:
        print(f"{len(failures)} endpoint-smoke failure(s)", file=sys.stderr)
        return 1
    print(
        f"endpoint smoke passed: {len(entries)} audit record(s) replayed, "
        "every route served, scrape lint-clean"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
