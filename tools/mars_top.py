#!/usr/bin/env python3
"""``top`` for a MARS publishing service: poll /stats, render a live table.

Usage:  python tools/mars_top.py [--url http://127.0.0.1:PORT] \
            [--interval SECONDS] [--once]

Polls the admin endpoint's ``/stats`` and ``/health`` routes (see
``docs/OBSERVABILITY.md``) and renders one screen per poll: service
identity and uptime, the health verdict with its reasons, serving and
write-path counters, pool and replica occupancy, and — when SLO tracking
is on — the hot-fingerprint table sorted by error-budget burn.  When
query profiling is on (``profile_sample`` > 0), a worst-q-error panel
fed by ``/profiles/worst`` names the operators whose cardinality
estimates miss hardest; with profiling disabled the panel is simply
omitted (the route 404s and the poll carries on).

``--once`` prints a single snapshot and exits (scripts and tests);
without it the screen refreshes every ``--interval`` seconds until
interrupted.  Stdlib only; exits 1 when the endpoint is unreachable.
"""

import argparse
import json
import sys
import time
import urllib.error
import urllib.request

DEFAULT_URL = "http://127.0.0.1:9780"


def fetch(url: str, timeout: float = 5.0):
    """One JSON document from *url* (raises ``urllib.error.URLError``)."""
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return json.loads(response.read().decode("utf-8"))


def fetch_health(base: str, timeout: float = 5.0):
    """/health parses the same on 200 (healthy/degraded) and 503."""
    try:
        return fetch(base + "/health", timeout=timeout)
    except urllib.error.HTTPError as error:
        if error.code == 503:
            return json.loads(error.read().decode("utf-8"))
        raise


def fetch_worst_profiles(base: str, n: int = 5, timeout: float = 5.0):
    """/profiles/worst, or ``None`` when profiling is off or unreachable.

    A 404 means the service runs with ``profile_sample=0``; any other
    fetch problem is also swallowed — the panel is optional decoration,
    and a flaky profile route must not take the whole screen down.
    """
    try:
        return fetch(base + f"/profiles/worst?n={n}", timeout=timeout)
    except (urllib.error.URLError, OSError, ValueError):
        return None


def _bar(label: str, value, width: int = 24) -> str:
    return f"  {label:<28} {value}"


def render_snapshot(stats, health, profiles=None) -> str:
    """One screenful of operator-facing text from the two JSON bodies."""
    lines = []
    status = health.get("status", "unknown") if health else "unknown"
    marker = {"healthy": "OK", "degraded": "!!", "unhealthy": "XX"}.get(
        status, "??"
    )
    uptime = stats.get("uptime_seconds", 0.0)
    lines.append(
        f"mars {stats.get('version', '?')}  up {uptime:,.0f}s  "
        f"health [{marker}] {status}"
    )
    for check in (health or {}).get("checks", ()):
        if check.get("status") != "healthy":
            lines.append(
                f"    {check['name']}: {check['status']}"
                + (f" — {check['reason']}" if check.get("reason") else "")
            )
    lines.append("")
    lines.append(_bar("queries served", f"{stats.get('queries_served', 0):,}"))
    lines.append(
        _bar("updates applied", f"{stats.get('updates_applied', 0):,}")
        + f"   (write LSN {stats.get('last_write_lsn', 0)})"
    )
    cache = stats.get("cache", {})
    lines.append(
        _bar(
            "plan cache",
            f"{cache.get('entries', 0)} plan(s), "
            f"{cache.get('hit_rate', 0.0):.0%} hit rate",
        )
    )
    pool = stats.get("pool", {})
    lines.append(
        _bar(
            "pool",
            f"{pool.get('in_use', 0)}/{pool.get('size', 0)} in use, "
            f"{pool.get('checkouts', 0):,} checkout(s), "
            f"{pool.get('rejections', 0)} rejection(s), "
            f"{pool.get('stale_rebuilds', 0)} stale rebuild(s)",
        )
    )
    replicas = stats.get("replicas")
    if replicas:
        lines.append(
            _bar(
                "replicas",
                f"{replicas.get('live_replicas', 0)}/"
                f"{replicas.get('replica_count', 0)} live, "
                f"{replicas.get('failovers', 0)} failover(s), "
                f"{replicas.get('fenced', 0)} fenced",
            )
        )
    audit = stats.get("audit")
    if audit:
        lines.append(
            _bar(
                "audit log",
                f"{audit.get('records', 0):,} record(s) in "
                f"{audit.get('files', 0)} file(s)",
            )
        )
    slo = stats.get("slo") or []
    if slo:
        lines.append("")
        lines.append(
            f"  {'query':<24} {'reqs':>7} {'viol':>5} "
            f"{'p99(s)':>9} {'target':>8} {'burn':>7}"
        )
        for entry in slo:
            burn = entry.get("budget_burn", 0.0)
            flag = " <-- breaching" if entry.get("breached") else ""
            lines.append(
                f"  {entry.get('key', '?')[:24]:<24} "
                f"{entry.get('requests', 0):>7,} "
                f"{entry.get('violations', 0):>5,} "
                f"{entry.get('window_p99_seconds', 0.0):>9.4f} "
                f"{entry.get('target_p99_seconds', 0.0):>8.3f} "
                f"{burn:>7.2f}{flag}"
            )
    worst = (profiles or {}).get("profiles") or []
    if worst:
        lines.append("")
        lines.append(
            f"  {'worst estimates (query)':<24} {'operator':<34} "
            f"{'q-err':>7} {'rows':>7}"
        )
        for entry in worst:
            root = entry.get("profile", {})
            lines.append(
                f"  {str(entry.get('query', '?'))[:24]:<24} "
                f"{str(entry.get('worst_operator', '-'))[:34]:<34} "
                f"{entry.get('worst_q_error', 1.0):>7.2f} "
                f"{root.get('actual_rows', 0) or 0:>7,}"
            )
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="live operational view of a MARS publishing service"
    )
    parser.add_argument(
        "--url",
        default=DEFAULT_URL,
        help=f"admin endpoint base URL (default {DEFAULT_URL})",
    )
    parser.add_argument(
        "--interval",
        type=float,
        default=2.0,
        help="seconds between refreshes (default 2)",
    )
    parser.add_argument(
        "--once",
        action="store_true",
        help="print one snapshot and exit",
    )
    args = parser.parse_args(argv)
    base = args.url.rstrip("/")
    while True:
        try:
            stats = fetch(base + "/stats")
            health = fetch_health(base)
        except (urllib.error.URLError, OSError) as error:
            print(f"mars_top: {base} unreachable: {error}", file=sys.stderr)
            return 1
        profiles = fetch_worst_profiles(base)
        screen = render_snapshot(stats, health, profiles)
        if args.once:
            print(screen)
            return 0
        # ANSI clear + home, the portable-enough terminal refresh.
        sys.stdout.write("\x1b[2J\x1b[H" + screen + "\n")
        sys.stdout.flush()
        time.sleep(args.interval)


if __name__ == "__main__":
    sys.exit(main())
