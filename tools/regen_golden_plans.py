#!/usr/bin/env python3
"""Regenerate (or check) the golden plan artifacts under tests/golden_plans/.

The golden files lock the canonical identity of every workload query:
the plan-artifact identity, the query fingerprint digest, the canonical
artifact's SHA-256 and the deterministic compile statistics.  The
determinism suite (tests/test_plan_determinism.py) compares fresh
compiles against them, so any change that moves a canonical form — an
engine refactor that changes search behaviour, a canonicalization edit,
a view/constraint edit in a workload — shows up as an explicit golden
drift instead of silently re-keying the plan store.

Modes:

* default (regenerate): recompile every workload and rewrite the golden
  files.  Refuses to run when the git working tree is dirty — goldens
  must be regenerated from exactly the code that is committed, so the
  locked identities are attributable to one revision.
* ``--check``: recompile and compare against the checked-in goldens
  without writing anything; exit 1 listing every drifted entry.  Safe on
  a dirty tree (CI runs it on every push).
"""

from __future__ import annotations

import argparse
import hashlib
import json
import subprocess
import sys
from pathlib import Path
from typing import Dict, List, Tuple

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.core.system import MarsSystem  # noqa: E402
from repro.plan import (  # noqa: E402
    canonical_reformulation,
    plan_identity,
    stable_dumps,
)
from repro.workloads import medical, star, xmark  # noqa: E402

GOLDEN_DIR = ROOT / "tests" / "golden_plans"


def workload_suites() -> Dict[str, Tuple[MarsSystem, List]]:
    """Every golden workload: a fresh system and its client queries."""
    parameters = star.StarParameters()
    return {
        "medical": (
            MarsSystem(medical.build_configuration()),
            [medical.client_query(), medical.drug_usage_query()],
        ),
        "star": (
            MarsSystem(star.build_configuration(parameters)),
            [star.client_query(parameters)],
        ),
        "xmark": (
            MarsSystem(xmark.build_configuration()),
            list(xmark.query_suite()),
        ),
    }


def golden_document(name: str, system: MarsSystem, queries: List) -> Dict:
    """The golden document for one workload, freshly compiled."""
    entries: Dict[str, Dict] = {}
    for query in queries:
        reformulation = system.reformulate(query)
        artifact = stable_dumps(canonical_reformulation(reformulation))
        entries[query.name] = {
            "identity": plan_identity(
                query.fingerprint_digest(),
                system.configuration_digest,
                system.cb_config.minimize,
            ),
            "query_digest": query.fingerprint_digest(),
            "artifact_sha256": hashlib.sha256(
                artifact.encode("ascii")
            ).hexdigest(),
            "chase_steps": reformulation.chase_steps,
            "subqueries_inspected": reformulation.subqueries_inspected,
        }
    return {
        "workload": name,
        "configuration": system.configuration_digest,
        "queries": entries,
    }


def working_tree_dirty(root: Path = ROOT) -> bool:
    """Whether *root*'s git tree has uncommitted or untracked changes."""
    result = subprocess.run(
        ["git", "status", "--porcelain"],
        cwd=root,
        capture_output=True,
        text=True,
        check=True,
    )
    return bool(result.stdout.strip())


def ensure_clean(root: Path = ROOT) -> None:
    """Exit with an error unless *root*'s working tree is clean."""
    if working_tree_dirty(root):
        sys.exit(
            "refusing to regenerate golden plans: the git working tree is "
            "dirty.\nGoldens must be regenerated from committed code so "
            "every locked identity is attributable to one revision; commit "
            "(or stash) first, or use --check to compare without writing."
        )


def drift_report(name: str, fresh: Dict, golden_path: Path) -> List[str]:
    """Human-readable differences between *fresh* and the checked-in golden."""
    if not golden_path.is_file():
        return [f"{name}: golden file {golden_path} is missing"]
    stored = json.loads(golden_path.read_text(encoding="ascii"))
    problems: List[str] = []
    if stored.get("configuration") != fresh["configuration"]:
        problems.append(
            f"{name}: configuration fingerprint drifted "
            f"({stored.get('configuration')} -> {fresh['configuration']})"
        )
    stored_queries = stored.get("queries", {})
    for query_name, entry in fresh["queries"].items():
        old = stored_queries.get(query_name)
        if old is None:
            problems.append(f"{name}/{query_name}: missing from golden file")
            continue
        for key, value in entry.items():
            if old.get(key) != value:
                problems.append(
                    f"{name}/{query_name}: {key} drifted "
                    f"({old.get(key)} -> {value})"
                )
    for query_name in stored_queries:
        if query_name not in fresh["queries"]:
            problems.append(
                f"{name}/{query_name}: in golden file but not in the workload"
            )
    return problems


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="compare fresh compiles against the goldens; write nothing",
    )
    args = parser.parse_args(argv)
    if not args.check:
        ensure_clean()
    problems: List[str] = []
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    for name, (system, queries) in sorted(workload_suites().items()):
        document = golden_document(name, system, queries)
        path = GOLDEN_DIR / f"{name}.json"
        if args.check:
            problems.extend(drift_report(name, document, path))
        else:
            path.write_text(
                json.dumps(document, indent=2, sort_keys=True) + "\n",
                encoding="ascii",
            )
            print(f"wrote {path} ({len(document['queries'])} queries)")
    if problems:
        print("golden plan drift detected:", file=sys.stderr)
        for problem in problems:
            print(f"  {problem}", file=sys.stderr)
        return 1
    if args.check:
        print("golden plans match (no identity drift)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
