#!/usr/bin/env python3
"""Lint metric-name literals in the source tree, or a live scrape.

Usage:  python tools/check_metrics.py [SRC_DIR ...]   (default: src/)
        python tools/check_metrics.py --scrape [FILE | -]

With ``--scrape`` the input is a Prometheus text exposition (a captured
``GET /metrics`` body; ``-`` reads stdin) and the lint checks the wire
format instead of the source: every sample line parses, belongs to a
``# TYPE``-declared family (histogram samples may carry the ``_bucket``/
``_sum``/``_count`` suffixes and ``le`` label), every family name passes
the same validator as the source lint, every value is a float, and no
family is declared twice.  The CI endpoint-smoke leg pipes a live scrape
through this mode.

Finds every ``registry.counter("...")`` / ``.gauge("...")`` /
``.histogram("...")`` registration in the given source trees and checks,
without importing the modules under lint:

* the name passes :func:`repro.obs.metrics.validate_metric_name` —
  ``snake_case`` and a known unit suffix (counters must end ``_total``);
* the name is registered at exactly **one** callsite — two subsystems
  silently sharing (or shadowing) a series is a dashboard lie.

The validator and :data:`~repro.obs.metrics.ALLOWED_UNIT_SUFFIXES` are
imported from the package itself, so this lint and the runtime
registration checks can never disagree.  Exits non-zero listing every
failure.  Stdlib only — this runs in the CI docs-lint leg next to
``tools/check_links.py``.
"""

import re
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.obs.metrics import ALLOWED_UNIT_SUFFIXES, validate_metric_name  # noqa: E402

#: A registration call with a literal name: ``<anything>.counter("name"``.
#: Multi-line calls are fine — the name is the first argument by
#: convention (and by the registry's signature).
REGISTRATION = re.compile(
    r"\.\s*(counter|gauge|histogram)\(\s*[\"']([^\"']+)[\"']"
)

#: Names in doctests/docstrings are examples, not registrations; they are
#: still name-checked (examples must model the convention) but exempt
#: from the registered-once rule.
EXAMPLE_PREFIXES = ("demo_", "example_")


def scan(root: Path):
    """Yield ``(path, line_number, kind, name)`` for every registration."""
    for path in sorted(root.rglob("*.py")):
        text = path.read_text(encoding="utf-8")
        for match in REGISTRATION.finditer(text):
            line = text.count("\n", 0, match.start()) + 1
            yield path, line, match.group(1), match.group(2)


#: One exposition sample: name, optional {labels}, value (and nothing
#: else — this exporter emits no timestamps).
SAMPLE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{.*\})?\s+(\S+)$"
)

#: Per-family sample-name suffixes the histogram kind adds on the wire.
HISTOGRAM_SUFFIXES = ("_bucket", "_sum", "_count")


def lint_scrape(text: str):
    """Every violation in one Prometheus text exposition, as messages."""
    failures = []
    typed = {}
    for number, line in enumerate(text.splitlines(), start=1):
        where = f"line {number}"
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in ("counter", "gauge", "histogram"):
                failures.append(f"{where}: malformed TYPE line {line!r}")
                continue
            name, kind = parts[2], parts[3]
            if name in typed:
                failures.append(f"{where}: family {name!r} declared twice")
                continue
            try:
                validate_metric_name(name, kind)
            except ValueError as error:
                failures.append(f"{where}: {error}")
            typed[name] = kind
            continue
        if line.startswith("#"):
            continue
        match = SAMPLE.match(line)
        if match is None:
            failures.append(f"{where}: unparseable sample {line!r}")
            continue
        sample_name, _labels, value = match.groups()
        family = sample_name
        if family not in typed:
            for suffix in HISTOGRAM_SUFFIXES:
                base = family[: -len(suffix)] if family.endswith(suffix) else None
                if base and typed.get(base) == "histogram":
                    family = base
                    break
        if family not in typed:
            failures.append(
                f"{where}: sample {sample_name!r} has no # TYPE declaration"
            )
        elif family != sample_name and typed[family] != "histogram":
            failures.append(
                f"{where}: {sample_name!r} suffixed like a histogram sample "
                f"but {family!r} is a {typed[family]}"
            )
        if value not in ("+Inf", "-Inf", "NaN"):
            try:
                float(value)
            except ValueError:
                failures.append(
                    f"{where}: sample {sample_name!r} value {value!r} is not "
                    "a number"
                )
    if not typed:
        failures.append("scrape declares no metric families at all")
    return failures, len(typed)


def scrape_main(arguments) -> int:
    source = arguments[0] if arguments else "-"
    if source == "-":
        text = sys.stdin.read()
    else:
        text = Path(source).read_text(encoding="utf-8")
    failures, families = lint_scrape(text)
    for failure in failures:
        print(failure, file=sys.stderr)
    if failures:
        print(f"{len(failures)} scrape violation(s)", file=sys.stderr)
        return 1
    print(
        f"scrape is valid Prometheus text: {families} family(ies), every "
        "sample typed, named and numeric"
    )
    return 0


def main(arguments) -> int:
    if arguments and arguments[0] == "--scrape":
        return scrape_main(arguments[1:])
    roots = [Path(name) for name in arguments] or [
        Path(__file__).resolve().parent.parent / "src"
    ]
    failures = []
    seen = {}
    total = 0
    for root in roots:
        if not root.exists():
            print(f"{root}: directory not found", file=sys.stderr)
            return 2
        for path, line, kind, name in scan(root):
            total += 1
            where = f"{path}:{line}"
            try:
                validate_metric_name(name, kind)
            except ValueError as error:
                failures.append(f"{where}: {error}")
                continue
            if name.startswith(EXAMPLE_PREFIXES):
                continue
            if name in seen and seen[name] != where:
                failures.append(
                    f"{where}: metric {name!r} already registered at "
                    f"{seen[name]} — one series, one owner"
                )
            else:
                seen.setdefault(name, where)
    for failure in failures:
        print(failure, file=sys.stderr)
    if failures:
        print(
            f"{len(failures)} metric-name violation(s) in {total} "
            f"registration(s)",
            file=sys.stderr,
        )
        return 1
    print(
        f"checked {total} metric registration(s) across "
        f"{len(roots)} tree(s): all names are snake_case, unit-suffixed "
        f"({', '.join(ALLOWED_UNIT_SUFFIXES)}) and uniquely owned"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
