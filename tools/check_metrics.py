#!/usr/bin/env python3
"""Lint metric-name literals in the source tree.

Usage:  python tools/check_metrics.py [SRC_DIR ...]   (default: src/)

Finds every ``registry.counter("...")`` / ``.gauge("...")`` /
``.histogram("...")`` registration in the given source trees and checks,
without importing the modules under lint:

* the name passes :func:`repro.obs.metrics.validate_metric_name` —
  ``snake_case`` and a known unit suffix (counters must end ``_total``);
* the name is registered at exactly **one** callsite — two subsystems
  silently sharing (or shadowing) a series is a dashboard lie.

The validator and :data:`~repro.obs.metrics.ALLOWED_UNIT_SUFFIXES` are
imported from the package itself, so this lint and the runtime
registration checks can never disagree.  Exits non-zero listing every
failure.  Stdlib only — this runs in the CI docs-lint leg next to
``tools/check_links.py``.
"""

import re
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.obs.metrics import ALLOWED_UNIT_SUFFIXES, validate_metric_name  # noqa: E402

#: A registration call with a literal name: ``<anything>.counter("name"``.
#: Multi-line calls are fine — the name is the first argument by
#: convention (and by the registry's signature).
REGISTRATION = re.compile(
    r"\.\s*(counter|gauge|histogram)\(\s*[\"']([^\"']+)[\"']"
)

#: Names in doctests/docstrings are examples, not registrations; they are
#: still name-checked (examples must model the convention) but exempt
#: from the registered-once rule.
EXAMPLE_PREFIXES = ("demo_", "example_")


def scan(root: Path):
    """Yield ``(path, line_number, kind, name)`` for every registration."""
    for path in sorted(root.rglob("*.py")):
        text = path.read_text(encoding="utf-8")
        for match in REGISTRATION.finditer(text):
            line = text.count("\n", 0, match.start()) + 1
            yield path, line, match.group(1), match.group(2)


def main(arguments) -> int:
    roots = [Path(name) for name in arguments] or [
        Path(__file__).resolve().parent.parent / "src"
    ]
    failures = []
    seen = {}
    total = 0
    for root in roots:
        if not root.exists():
            print(f"{root}: directory not found", file=sys.stderr)
            return 2
        for path, line, kind, name in scan(root):
            total += 1
            where = f"{path}:{line}"
            try:
                validate_metric_name(name, kind)
            except ValueError as error:
                failures.append(f"{where}: {error}")
                continue
            if name.startswith(EXAMPLE_PREFIXES):
                continue
            if name in seen and seen[name] != where:
                failures.append(
                    f"{where}: metric {name!r} already registered at "
                    f"{seen[name]} — one series, one owner"
                )
            else:
                seen.setdefault(name, where)
    for failure in failures:
        print(failure, file=sys.stderr)
    if failures:
        print(
            f"{len(failures)} metric-name violation(s) in {total} "
            f"registration(s)",
            file=sys.stderr,
        )
        return 1
    print(
        f"checked {total} metric registration(s) across "
        f"{len(roots)} tree(s): all names are snake_case, unit-suffixed "
        f"({', '.join(ALLOWED_UNIT_SUFFIXES)}) and uniquely owned"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
