#!/usr/bin/env python3
"""Restart smoke test for the persistent plan store.

Usage:  python tools/plan_restart_smoke.py [PLAN_DIR]

Runs the warm-restart guarantee end to end, the way an operator would
see it: a *cold* process compiles the medical workload queries and
writes their plan artifacts under ``MARS_PLAN_DIR``; a **separate**
*warm* process — a genuine restart, no shared interpreter state — points
at the same directory, serves the same queries, and must

* enter the Chase & Backchase engine **zero** times,
* produce exactly the rows the cold process produced,
* report the loads in its stats (``plans_loaded``, store hits).

Each phase runs in its own subprocess so nothing can leak between the
incarnations except the artifact files themselves.  Exits non-zero with
a diagnostic if any guarantee fails.  The CI plan-artifacts leg runs
this after the golden-plan drift check.
"""

import json
import subprocess
import sys
import tempfile
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

_PHASE = """
import json, sys
sys.path.insert(0, {src!r})
from repro.serve import PublishingService
from repro.workloads import medical

with PublishingService(medical.build_configuration()) as service:
    rows = {{
        query.name: sorted(map(list, service.publish(query)))
        for query in (medical.client_query(), medical.drug_usage_query())
    }}
    stats = service.stats()
    print(json.dumps({{
        "rows": rows,
        "engine_invocations": service.system.engine_invocations,
        "reformulations_computed": stats.reformulations_computed,
        "plans_loaded": stats.plans_loaded,
        "store": stats.plan_store.to_dict() if stats.plan_store else None,
    }}))
"""


def run_phase(name: str, plan_dir: Path) -> dict:
    result = subprocess.run(
        [sys.executable, "-c", _PHASE.format(src=str(ROOT / "src"))],
        capture_output=True,
        text=True,
        env={"MARS_PLAN_DIR": str(plan_dir), "PATH": "/usr/bin:/bin"},
    )
    if result.returncode != 0:
        print(f"{name} phase crashed:\n{result.stderr}", file=sys.stderr)
        sys.exit(1)
    return json.loads(result.stdout)


def main(argv) -> int:
    if argv:
        plan_dir = Path(argv[0])
        plan_dir.mkdir(parents=True, exist_ok=True)
        context = None
    else:
        context = tempfile.TemporaryDirectory(prefix="mars-plan-smoke-")
        plan_dir = Path(context.name)
    try:
        cold = run_phase("cold", plan_dir)
        warm = run_phase("warm", plan_dir)
    finally:
        if context is not None:
            context.cleanup()

    failures = []
    if cold["engine_invocations"] != 2:
        failures.append(
            f"cold phase entered the engine {cold['engine_invocations']} "
            "times (expected 2)"
        )
    if warm["engine_invocations"] != 0:
        failures.append(
            f"warm phase entered the engine {warm['engine_invocations']} "
            "times (expected 0: every plan must come from the store)"
        )
    if warm["reformulations_computed"] != 0:
        failures.append(
            f"warm phase computed {warm['reformulations_computed']} "
            "reformulations (expected 0)"
        )
    if warm["plans_loaded"] != 2:
        failures.append(
            f"warm phase loaded {warm['plans_loaded']} plans (expected 2)"
        )
    if warm["rows"] != cold["rows"]:
        failures.append("warm rows differ from cold rows")
    store = warm["store"] or {}
    if store.get("hits") != 2 or store.get("corrupt"):
        failures.append(f"warm store stats look wrong: {store}")

    if failures:
        print("plan restart smoke FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(
        "plan restart smoke OK: cold compiled "
        f"{cold['engine_invocations']} plans, warm served "
        f"{warm['plans_loaded']} from the store with 0 engine entries"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
