"""Unit tests for conjunctive queries, unions and schemas."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SchemaError
from repro.logical import (
    ConjunctiveQuery,
    EqualityAtom,
    InequalityAtom,
    RelationalAtom,
    RelationalSchema,
    UnionQuery,
    const,
    make_query,
    var,
)


def q(name, head, body):
    return ConjunctiveQuery(name, head, body)


class TestConjunctiveQuery:
    def test_head_and_body_variables(self):
        query = q(
            "Q",
            [var("x")],
            [RelationalAtom("R", (var("x"), var("y"))), EqualityAtom(var("y"), const(1))],
        )
        assert query.head_variables() == (var("x"),)
        assert set(query.body_variables()) == {var("x"), var("y")}
        assert query.existential_variables() == (var("y"),)

    def test_safety(self):
        safe = q("Q", [var("x")], [RelationalAtom("R", (var("x"),))])
        unsafe = q("Q", [var("x")], [RelationalAtom("R", (var("y"),))])
        assert safe.is_safe()
        assert not unsafe.is_safe()

    def test_make_query_rejects_unsafe(self):
        with pytest.raises(SchemaError):
            make_query("Q", [var("x")], [RelationalAtom("R", (var("y"),))])

    def test_substitute_drops_trivial_equalities(self):
        query = q(
            "Q",
            [var("x")],
            [RelationalAtom("R", (var("x"), var("y"))), EqualityAtom(var("x"), var("y"))],
        )
        collapsed = query.substitute({var("y"): var("x")})
        assert all(not isinstance(a, EqualityAtom) for a in collapsed.body)

    def test_add_atoms_deduplicates(self):
        atom = RelationalAtom("R", (var("x"),))
        query = q("Q", [var("x")], [atom])
        extended = query.add_atoms([atom, RelationalAtom("S", (var("x"),))])
        assert len(extended.body) == 2

    def test_subquery_keeps_covered_filters(self):
        r_atom = RelationalAtom("R", (var("x"), var("y")))
        s_atom = RelationalAtom("S", (var("y"), var("z")))
        query = q(
            "Q",
            [var("x")],
            [r_atom, s_atom, InequalityAtom(var("x"), var("y")), InequalityAtom(var("z"), const(1))],
        )
        sub = query.subquery([r_atom])
        assert r_atom in sub.body
        assert s_atom not in sub.body
        assert InequalityAtom(var("x"), var("y")) in sub.body
        assert InequalityAtom(var("z"), const(1)) not in sub.body

    def test_normalize_equalities_merges_variables(self):
        query = q(
            "Q",
            [var("x")],
            [
                RelationalAtom("R", (var("x"), var("y"))),
                RelationalAtom("S", (var("z"),)),
                EqualityAtom(var("y"), var("z")),
            ],
        )
        normalized = query.normalize_equalities()
        assert not normalized.equalities
        variables = set(normalized.body_variables())
        assert len(variables) == 2  # y and z collapsed

    def test_normalize_equalities_prefers_constants(self):
        query = q(
            "Q",
            [var("x")],
            [RelationalAtom("R", (var("x"), var("y"))), EqualityAtom(var("y"), const(7))],
        )
        normalized = query.normalize_equalities()
        atom = normalized.relational_body[0]
        assert atom.terms[1] == const(7)

    def test_normalize_conflicting_constants_raises(self):
        query = q("Q", [var("x")], [RelationalAtom("R", (var("x"),)), EqualityAtom(const(1), const(2))])
        with pytest.raises(SchemaError):
            query.normalize_equalities()

    def test_rename_apart_preserves_structure(self):
        query = q(
            "Q",
            [var("x")],
            [RelationalAtom("R", (var("x"), var("y"))), RelationalAtom("S", (var("y"),))],
        )
        renamed, mapping = query.rename_apart()
        assert len(renamed.body) == len(query.body)
        assert set(mapping) == {var("x"), var("y")}
        assert not set(renamed.variables()) & set(query.variables())

    def test_relation_names(self):
        query = q("Q", [var("x")], [RelationalAtom("R", (var("x"),)), RelationalAtom("S", (var("x"),))])
        assert query.relation_names() == frozenset({"R", "S"})

    def test_dedupe(self):
        atom = RelationalAtom("R", (var("x"),))
        query = q("Q", [var("x")], [atom, atom])
        assert len(query.dedupe().body) == 1


class TestUnionQuery:
    def test_arity_mismatch_rejected(self):
        q1 = q("Q1", [var("x")], [RelationalAtom("R", (var("x"),))])
        q2 = q("Q2", [var("x"), var("y")], [RelationalAtom("R", (var("x"), var("y")))])
        with pytest.raises(SchemaError):
            UnionQuery("U", [q1, q2])

    def test_iteration(self):
        q1 = q("Q1", [var("x")], [RelationalAtom("R", (var("x"),))])
        union = UnionQuery("U", [q1])
        assert list(union) == [q1]
        assert union.arity == 1


class TestRelationalSchema:
    def test_declare_and_lookup(self):
        schema = RelationalSchema("s")
        schema.add_relation("R", ["a", "b"])
        assert "R" in schema
        assert schema.relation("R").arity == 2
        assert schema.relation("R").position("b") == 1

    def test_duplicate_relation_rejected(self):
        schema = RelationalSchema()
        schema.add_relation("R", ["a"])
        with pytest.raises(SchemaError):
            schema.add_relation("R", ["a"])

    def test_duplicate_attributes_rejected(self):
        schema = RelationalSchema()
        with pytest.raises(SchemaError):
            schema.add_relation("R", ["a", "a"])

    def test_key_dependency_generation(self):
        schema = RelationalSchema()
        schema.add_relation("R", ["k", "v"])
        schema.add_key("R", ["k"])
        dependencies = schema.key_dependencies()
        assert len(dependencies) == 1
        assert dependencies[0].is_egd

    def test_foreign_key_dependency_generation(self):
        schema = RelationalSchema()
        schema.add_relation("R", ["k", "f"])
        schema.add_relation("S", ["k", "v"])
        schema.add_foreign_key("R", ["f"], "S", ["k"])
        dependencies = schema.foreign_key_dependencies()
        assert len(dependencies) == 1
        assert not dependencies[0].is_egd

    def test_unknown_relation_raises(self):
        schema = RelationalSchema()
        with pytest.raises(SchemaError):
            schema.relation("missing")


@given(st.integers(min_value=1, max_value=6))
def test_property_subquery_of_full_body_is_identity_on_relational_atoms(n):
    atoms = [RelationalAtom(f"R{i}", (var(f"x{i}"), var(f"x{i+1}"))) for i in range(n)]
    query = ConjunctiveQuery("Q", [var("x0")], atoms)
    sub = query.subquery(atoms)
    assert sub.relational_body == tuple(atoms)
