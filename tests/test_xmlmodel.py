"""Unit tests for the XML document model, parser, serializer, XPath and DTDs."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ParseError
from repro.xmlmodel import (
    Axis,
    DocumentType,
    NodeTestKind,
    Occurrence,
    XMLDocument,
    XMLNode,
    build_document,
    evaluate_xpath,
    parse_xml,
    parse_xpath,
    serialize,
)


@pytest.fixture
def books() -> XMLDocument:
    root = XMLNode("library")
    for title, author in [("TAPL", "Pierce"), ("SICP", "Abelson"), ("SICP2", "Abelson")]:
        book = root.add("book", category="cs")
        book.add("title", title)
        book.add("author", author)
    return XMLDocument("books.xml", root)


class TestModel:
    def test_node_ids_unique(self, books):
        ids = [node.node_id for node in books.nodes()]
        assert len(ids) == len(set(ids))

    def test_node_count(self, books):
        assert books.node_count() == 1 + 3 * 3

    def test_find_all(self, books):
        assert len(books.find_all("book")) == 3
        assert len(books.find_all("title")) == 3

    def test_ancestors_and_descendants(self, books):
        title = books.find_all("title")[0]
        assert [a.tag for a in title.ancestors()] == ["book", "library"]
        assert books.root in title.ancestors()
        assert title in books.root.descendants()

    def test_text_content_concatenates(self):
        node = XMLNode("a", text="x")
        node.add("b", "y")
        assert node.text_content() == "xy"

    def test_grex_facts_shape(self, books):
        facts = books.grex_facts()
        assert len(facts["el"]) == books.node_count()
        assert len(facts["root"]) == 1
        # virtual document node has the top element as its only child
        doc_node = facts["root"][0][0]
        assert (doc_node, books.root.node_id) in facts["child"]
        # desc is reflexive
        assert (books.root.node_id, books.root.node_id) in facts["desc"]
        # every child edge is also a desc edge
        child_pairs = set(facts["child"])
        assert child_pairs <= set(facts["desc"]) | {(doc_node, books.root.node_id)}

    def test_build_document_from_spec(self):
        document = build_document(
            "d.xml",
            ("catalog", [("drug", [("name", "aspirin"), ("price", "3")])]),
        )
        assert document.root.tag == "catalog"
        assert document.find_all("name")[0].text == "aspirin"


class TestParserSerializer:
    def test_roundtrip(self, books):
        text = serialize(books)
        parsed = parse_xml(text, "books.xml")
        assert parsed.node_count() == books.node_count()
        assert [n.tag for n in parsed.nodes()] == [n.tag for n in books.nodes()]

    def test_parse_attributes_and_entities(self):
        document = parse_xml('<a x="1 &amp; 2"><b>&lt;hi&gt;</b></a>')
        assert document.root.attributes["x"] == "1 & 2"
        assert document.root.children[0].text == "<hi>"

    def test_parse_self_closing_and_comments(self):
        document = parse_xml("<a><!-- note --><b/><c>t</c></a>")
        assert [c.tag for c in document.root.children] == ["b", "c"]

    def test_parse_errors(self):
        with pytest.raises(ParseError):
            parse_xml("<a><b></a>")
        with pytest.raises(ParseError):
            parse_xml("<a>text")
        with pytest.raises(ParseError):
            parse_xml("<a x=1></a>")

    def test_prolog_and_doctype_skipped(self):
        document = parse_xml('<?xml version="1.0"?><!DOCTYPE a><a/>')
        assert document.root.tag == "a"


class TestXPath:
    def test_parse_absolute_and_relative(self):
        absolute = parse_xpath("/library/book")
        relative = parse_xpath("./title/text()")
        bare = parse_xpath("author")
        assert absolute.absolute and not relative.absolute and not bare.absolute
        assert absolute.steps[0].axis is Axis.CHILD
        assert relative.steps[-1].kind is NodeTestKind.TEXT

    def test_parse_descendant_attribute_wildcard(self):
        path = parse_xpath("//book/@category")
        assert path.steps[0].axis is Axis.DESCENDANT
        assert path.steps[1].kind is NodeTestKind.ATTRIBUTE
        assert parse_xpath("//*").steps[0].kind is NodeTestKind.WILDCARD

    def test_parse_errors(self):
        with pytest.raises(ParseError):
            parse_xpath("")
        with pytest.raises(ParseError):
            parse_xpath("//book//")
        with pytest.raises(ParseError):
            parse_xpath("//@")

    def test_returns_value(self):
        assert parse_xpath("//a/text()").returns_value
        assert parse_xpath("//a/@id").returns_value
        assert not parse_xpath("//a").returns_value

    def test_evaluate_descendant(self, books):
        titles = evaluate_xpath("//title/text()", books)
        assert sorted(titles) == ["SICP", "SICP2", "TAPL"]

    def test_evaluate_absolute_child_chain(self, books):
        nodes = evaluate_xpath("/library/book/title", books)
        assert len(nodes) == 3

    def test_evaluate_relative_from_context(self, books):
        book = books.find_all("book")[0]
        assert evaluate_xpath("./title/text()", books, context=book) == ["TAPL"]

    def test_evaluate_attribute(self, books):
        assert evaluate_xpath("//book/@category", books) == ["cs"]

    def test_evaluate_missing_path_is_empty(self, books):
        assert evaluate_xpath("//publisher", books) == []

    def test_descendant_or_self_semantics(self, books):
        # //library matches the root element itself (descendant-or-self).
        assert evaluate_xpath("//library", books) == [books.root]


class TestDocumentType:
    def test_infer_occurrences(self, books):
        document_type = DocumentType.infer(books)
        library = document_type.element("library")
        book = document_type.element("book")
        assert library.children["book"] is Occurrence.MANY
        assert book.children["title"] is Occurrence.ONE
        assert "category" in book.attributes

    def test_validate_accepts_instance(self, books):
        document_type = DocumentType.infer(books)
        assert document_type.validate(books) == []

    def test_validate_reports_violations(self, books):
        document_type = DocumentType.infer(books)
        bad_root = XMLNode("library")
        bad_book = bad_root.add("book")
        bad_book.add("title", "one")
        bad_book.add("title", "two")
        bad = XMLDocument("books.xml", bad_root)
        problems = document_type.validate(bad)
        assert any("exactly one" in p for p in problems)


@given(st.lists(st.sampled_from(["alpha", "beta", "gamma"]), min_size=1, max_size=8))
def test_property_parse_serialize_roundtrip(tags):
    root = XMLNode("root")
    current = root
    for tag in tags:
        current = current.add(tag, text=tag)
    document = XMLDocument("prop.xml", root)
    reparsed = parse_xml(serialize(document), "prop.xml")
    assert [n.tag for n in reparsed.nodes()] == [n.tag for n in document.nodes()]
    assert [n.text for n in reparsed.nodes()] == [n.text for n in document.nodes()]
