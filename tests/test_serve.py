"""The serving subsystem: pool, plan cache, service, and backend lifecycle.

The headline test is the concurrency stress: ≥8 threads share one
pooled-SQLite :class:`PublishingService`, every thread must see exactly the
rows serial execution produces (no cross-talk, no wrong-thread
``sqlite3.ProgrammingError``), and the C&B engine must run once per
distinct query — everything else is served from the plan cache.
"""

import threading

import pytest

from repro.core import MarsConfiguration, MarsExecutor, MarsSystem
from repro.errors import ReformulationError, StorageError
from repro.logical.atoms import RelationalAtom
from repro.logical.queries import ConjunctiveQuery
from repro.logical.terms import Constant, Variable
from repro.serve import (
    ConnectionPool,
    PlanCache,
    PoolExhaustedError,
    PublishingService,
)
from repro.storage.backends import MemoryBackend, SQLiteBackend
from repro.workloads import medical
from repro.xbind.query import XBindQuery
from repro.xbind.atoms import PathAtom


def multiset(rows):
    return sorted(map(repr, rows))


# ----------------------------------------------------------------------
# SQLiteBackend lifecycle (the thread-affinity / leaked-connection fix)
# ----------------------------------------------------------------------
class TestSQLiteLifecycle:
    def test_double_close_raises(self):
        backend = SQLiteBackend()
        backend.close()
        assert backend.closed
        with pytest.raises(StorageError):
            backend.close()

    def test_use_after_close_raises(self):
        backend = SQLiteBackend()
        backend.create_table("r", 1)
        backend.close()
        x = Variable("x")
        query = ConjunctiveQuery("q", (x,), (RelationalAtom("r", (x,)),))
        for call in (
            lambda: backend.execute(query),
            lambda: backend.rows("r"),
            lambda: backend.insert_many("r", [(1,)]),
            lambda: backend.create_table("s", 1),
            lambda: backend.cardinalities(),
            lambda: backend.cardinality("r"),
            lambda: backend.explain(query),
            lambda: backend.clone(),
        ):
            with pytest.raises(StorageError):
                call()

    def test_context_manager_tolerates_inner_close(self):
        with SQLiteBackend() as backend:
            backend.close()
        assert backend.closed

    def test_memory_backend_matches_lifecycle(self):
        backend = MemoryBackend()
        backend.close()
        with pytest.raises(StorageError):
            backend.close()
        with pytest.raises(StorageError):
            backend.clone()

    def test_same_thread_affinity_is_kept_by_default(self):
        """The raw backend still refuses cross-thread use (sane default)."""
        backend = SQLiteBackend()
        backend.create_table("r", 1)
        backend.insert_many("r", [(1,)])
        errors = []

        def use():
            try:
                backend.rows("r")
            except Exception as error:  # sqlite3.ProgrammingError
                errors.append(error)

        thread = threading.Thread(target=use)
        thread.start()
        thread.join()
        assert errors, "expected wrong-thread use to be rejected"
        backend.close()


class TestSQLiteClone:
    def test_clone_snapshots_memory_database(self):
        backend = SQLiteBackend()
        backend.create_table("r", 2, ("a", "b"))
        backend.insert_many("r", [(1, "x"), (2, "y")])
        clone = backend.clone()
        assert tuple(clone.rows("r")) == ((1, "x"), (2, "y"))
        # the clone is independent: writes to the template do not leak in
        backend.insert_many("r", [(3, "z")])
        assert clone.cardinality("r") == 2
        clone.close()
        backend.close()

    def test_clone_is_thread_portable(self):
        backend = SQLiteBackend()
        backend.create_table("r", 1)
        backend.insert_many("r", [(7,)])
        clone = backend.clone()
        seen = []

        def use():
            seen.append(tuple(clone.rows("r")))

        thread = threading.Thread(target=use)
        thread.start()
        thread.join()
        assert seen == [((7,),)]
        clone.close()
        backend.close()

    def test_clone_snapshots_unnamed_temp_database(self):
        """path='' is a per-connection temp db and needs the backup path too."""
        backend = SQLiteBackend(path="")
        backend.create_table("r", 1)
        backend.insert_many("r", [(5,)])
        clone = backend.clone()
        assert tuple(clone.rows("r")) == ((5,),)
        clone.close()
        backend.close()

    def test_clone_of_file_database_shares_data(self, tmp_path):
        path = str(tmp_path / "clone.db")
        backend = SQLiteBackend(path=path)
        backend.create_table("r", 1)
        backend.insert_many("r", [(1,)])
        clone = backend.clone()
        assert tuple(clone.rows("r")) == ((1,),)
        clone.close()
        backend.close()


# ----------------------------------------------------------------------
# ConnectionPool
# ----------------------------------------------------------------------
class TestConnectionPool:
    def build_template(self):
        backend = SQLiteBackend()
        backend.create_table("r", 1)
        backend.insert_many("r", [(1,), (2,)])
        return backend

    def test_checkout_checkin_cycle(self):
        template = self.build_template()
        pool = ConnectionPool(template, size=2)
        first = pool.acquire()
        second = pool.acquire()
        assert first is not second
        pool.release(first)
        third = pool.acquire()
        assert third is first  # LIFO reuse of the warm connection
        pool.release(second)
        pool.release(third)
        stats = pool.stats()
        assert stats.created == 2 and stats.checkouts == 3
        assert stats.peak_in_use == 2 and stats.in_use == 0
        pool.close()
        template.close()

    def test_exhausted_pool_times_out(self):
        template = self.build_template()
        pool = ConnectionPool(template, size=1)
        held = pool.acquire()
        with pytest.raises(PoolExhaustedError) as excinfo:
            pool.acquire(timeout=0.05)
        # admission control reports the pool state at rejection time
        assert excinfo.value.stats.in_use == 1
        assert excinfo.value.stats.size == 1
        pool.release(held)
        pool.close()
        template.close()

    def test_full_wait_queue_rejects_immediately(self):
        """max_waiters bounds the queue: excess acquires shed, not parked."""
        template = self.build_template()
        pool = ConnectionPool(template, size=1, max_waiters=1)
        held = pool.acquire()
        queued = threading.Thread(target=lambda: pool.acquire(timeout=5))
        queued.start()
        deadline = 50
        while pool.stats().waiting < 1 and deadline:
            deadline -= 1
            threading.Event().wait(0.01)
        assert pool.stats().waiting == 1
        # the queue is full: this acquire must fail fast, without a timeout
        with pytest.raises(PoolExhaustedError) as excinfo:
            pool.acquire(timeout=30)
        assert excinfo.value.stats.waiting == 1
        assert excinfo.value.stats.rejections == 1
        pool.release(held)  # unblocks the queued thread
        queued.join(timeout=10)
        stats = pool.stats()
        assert stats.rejections == 1 and stats.waiting == 0
        pool.close(force=True)  # queued thread still holds its checkout
        template.close()

    def test_close_with_checkouts_fails_loudly(self):
        template = self.build_template()
        pool = ConnectionPool(template, size=2)
        checked_out = pool.acquire()
        with pytest.raises(StorageError):
            pool.close()
        assert not pool.closed  # nothing was torn down
        # forced teardown is the explicit escape hatch
        pool.close(force=True)
        with pytest.raises(StorageError):
            pool.acquire()
        # releasing after forced teardown stays safe (already closed)
        pool.release(checked_out)
        assert checked_out.closed
        pool.close()  # idempotent
        assert not template.closed
        template.close()

    def test_force_close_closes_checked_out_clones(self):
        """Regression: close(force=True) used to leak abandoned checkouts.

        A clone checked out and never released kept its SQLite handle open
        forever; forced teardown must sweep every clone it created, not
        just the idle ones.
        """
        template = self.build_template()
        pool = ConnectionPool(template, size=3)
        abandoned = pool.acquire()
        also_abandoned = pool.acquire()
        assert not abandoned.closed and not also_abandoned.closed
        pool.close(force=True)
        # the checked-out clones are closed immediately, not "eventually"
        assert abandoned.closed
        assert also_abandoned.closed
        # and the closed handle is genuinely unusable
        with pytest.raises(StorageError):
            abandoned.rows("r")
        template.close()

    def test_invalid_size_rejected(self):
        template = self.build_template()
        with pytest.raises(StorageError):
            ConnectionPool(template, size=0)
        template.close()

    def test_context_manager(self):
        template = self.build_template()
        with ConnectionPool(template, size=1) as pool:
            with pool.connection() as backend:
                x = Variable("x")
                rows = backend.execute(
                    ConjunctiveQuery("q", (x,), (RelationalAtom("r", (x,)),))
                )
                assert multiset(rows) == multiset([(1,), (2,)])
        assert pool.closed
        template.close()


# ----------------------------------------------------------------------
# PlanCache
# ----------------------------------------------------------------------
class TestPlanCache:
    def test_lru_eviction_order(self):
        cache = PlanCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh "a"; "b" is now LRU
        cache.put("c", 3)
        assert "b" not in cache and "a" in cache and "c" in cache
        stats = cache.stats()
        assert stats.evictions == 1 and stats.current_size == 2

    def test_counters_and_hit_rate(self):
        cache = PlanCache(maxsize=4)
        assert cache.get("missing") is None
        cache.put("k", "plan")
        assert cache.get("k") == "plan"
        stats = cache.stats()
        assert (stats.hits, stats.misses) == (1, 1)
        assert stats.hit_rate == 0.5

    def test_none_is_rejected(self):
        cache = PlanCache()
        with pytest.raises(ValueError):
            cache.put("k", None)
        with pytest.raises(ValueError):
            PlanCache(maxsize=0)

    def test_fingerprint_is_rename_invariant(self):
        def query(prefix):
            case_el = Variable(f"{prefix}_el")
            diag = Variable(f"{prefix}_diag")
            return XBindQuery(
                f"{prefix}_q",
                (diag,),
                (
                    PathAtom("//case", case_el, document="case.xml"),
                    PathAtom("./diag/text()", diag, source=case_el),
                ),
            )

        assert query("a").fingerprint() == query("b").fingerprint()
        other = XBindQuery(
            "c",
            (Variable("x"),),
            (PathAtom("//case/diag/text()", Variable("x"), document="case.xml"),),
        )
        assert other.fingerprint() != query("a").fingerprint()

    def test_fingerprint_distinguishes_constants_from_variables(self):
        x = Variable("x")
        with_constant = XBindQuery(
            "q", (x,), (RelationalAtom("r", (x, Constant("x"))),)
        )
        with_variable = XBindQuery(
            "q", (x,), (RelationalAtom("r", (x, Variable("y"))),)
        )
        assert with_constant.fingerprint() != with_variable.fingerprint()


# ----------------------------------------------------------------------
# PublishingService
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def medical_service():
    configuration = medical.build_configuration()
    configuration.backend = "sqlite"
    service = PublishingService(configuration, pool_size=4)
    yield service
    service.close()


class TestPublishingService:
    def test_publish_matches_direct_execution(self, medical_service):
        query = medical.client_query()
        rows = medical_service.publish(query)
        expected = medical_service.executor.execute_original(query)
        assert multiset(rows) == multiset(expected)

    def test_repeated_query_hits_plan_cache(self):
        configuration = medical.build_configuration()
        configuration.backend = "sqlite"
        with PublishingService(configuration, pool_size=2) as service:
            query = medical.client_query()
            first = service.publish(query)
            # Make re-entering the C&B engine an error: a cached plan must
            # never reach reformulate() on the underlying engine again.
            def boom(*args, **kwargs):
                raise AssertionError("C&B engine re-entered on a cached query")

            service.system._engine.reformulate = boom
            renamed = query.substitute(
                {v: Variable(f"fresh_{v.name}") for v in query.variables()}
            )
            second = service.publish(renamed)
            assert multiset(first) == multiset(second)
            stats = service.stats()
            assert stats.cache.hits >= 1
            assert stats.reformulations_computed == 1

    def test_union_strategy_single_round_trip(self, medical_service):
        query = medical.client_query()
        best_rows = medical_service.publish(query, strategy="best")
        union_rows = medical_service.publish(query, strategy="union")
        assert multiset(best_rows) == multiset(union_rows)
        with pytest.raises(ValueError):
            medical_service.publish(query, strategy="union", distinct=False)

    def test_union_strategy_on_multi_reformulation_workload(self):
        """Star with cost-pruning off yields several minimal reformulations;
        the union strategy must push them through as one batch and still
        return exactly the best plan's rows."""
        from repro.engine.backchase import BackchaseConfig
        from repro.engine.cb import CBConfig
        from repro.logical.queries import UnionQuery
        from repro.workloads import star
        from repro.workloads.star import StarParameters

        parameters = StarParameters(corners=3, hub_count=10, corner_size=6)
        configuration = star.build_configuration(parameters, with_instance=True)
        configuration.backend = "sqlite"
        cb_config = CBConfig(backchase=BackchaseConfig(prune_by_cost=False))
        system = MarsSystem(configuration, cb_config=cb_config)
        with system.service(pool_size=2, strategy="union") as service:
            query = star.client_query(parameters)
            reformulation = service.reformulate(query)
            assert len(reformulation.minimal) > 1
            plan = service.plan_for(reformulation)
            assert isinstance(plan, UnionQuery)
            assert len(plan) == len(reformulation.minimal)
            union_rows = service.publish(query)
            best_rows = service.publish(query, strategy="best")
            assert multiset(union_rows) == multiset(best_rows)

    def test_unreformulable_query_raises(self, medical_service):
        ghost = Variable("g")
        query = XBindQuery(
            "Ghost", (ghost,), (PathAtom("//nosuch", ghost, document="case.xml"),)
        )
        with pytest.raises(ReformulationError):
            medical_service.publish(query)

    def test_publish_many_reuses_one_connection(self, medical_service):
        before = medical_service.pool.stats().checkouts
        results = medical_service.publish_many(
            [medical.client_query(), medical.drug_usage_query()]
        )
        assert len(results) == 2 and all(results)
        assert medical_service.pool.stats().checkouts == before + 1

    def test_publish_many_enforces_publish_guards(self, medical_service):
        queries = [medical.client_query()]
        with pytest.raises(ValueError):
            medical_service.publish_many(queries, strategy="unionall")
        with pytest.raises(ValueError):
            medical_service.publish_many(
                queries, distinct=False, strategy="union"
            )
        configuration = medical.build_configuration()
        service = PublishingService(configuration, pool_size=1)
        service.close()
        with pytest.raises(StorageError):
            service.publish_many(queries)

    def test_system_service_factory(self):
        configuration = medical.build_configuration()
        configuration.backend = "sqlite"
        system = MarsSystem(configuration)
        with system.service(pool_size=2) as service:
            assert service.system is system
            assert system.plan_cache is service.plan_cache
            assert service.publish(medical.client_query())

    def test_closed_service_rejects_publish(self):
        configuration = medical.build_configuration()
        service = PublishingService(configuration, pool_size=1)
        service.close()
        with pytest.raises(StorageError):
            service.publish(medical.client_query())

    def test_invalid_strategy_rejected(self):
        configuration = medical.build_configuration()
        with pytest.raises(ValueError):
            PublishingService(configuration, strategy="fastest")
        with PublishingService(configuration, pool_size=1) as service:
            with pytest.raises(ValueError):
                service.publish(medical.client_query(), strategy="unionall")

    def test_failed_pool_construction_closes_template(self):
        configuration = medical.build_configuration()
        configuration.backend = "sqlite"
        shared = configuration.create_backend()
        with pytest.raises(StorageError):
            PublishingService(configuration, backend=shared, pool_size=0)
        # the injected backend stays the caller's, but the pool failure must
        # not leave an owned template connection dangling either
        assert not shared.closed
        shared.close()
        broken = MarsConfiguration("broken")
        broken.pool_size = 0
        with pytest.raises(StorageError):
            PublishingService(broken)

    def test_cold_query_counts_one_reformulation_across_threads(self):
        """Threads racing on an uncached query must not over-count C&B runs."""
        configuration = medical.build_configuration()
        with PublishingService(configuration, pool_size=4) as service:
            query = medical.client_query()
            barrier = threading.Barrier(THREADS)
            errors = []

            def worker():
                try:
                    barrier.wait(timeout=10)
                    service.publish(query)
                except Exception as error:
                    errors.append(error)

            threads = [threading.Thread(target=worker) for _ in range(THREADS)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            assert not errors
            stats = service.stats()
            assert stats.reformulations_computed == 1
            assert stats.cache.misses == 1


# ----------------------------------------------------------------------
# The acceptance-criteria stress test
# ----------------------------------------------------------------------
THREADS = 8
ROUNDS = 6


class TestConcurrencyStress:
    def test_threads_share_pooled_sqlite_service(self):
        configuration = medical.build_configuration()
        configuration.backend = "sqlite"
        queries = [medical.client_query(), medical.drug_usage_query()]
        with PublishingService(configuration, pool_size=4) as service:
            # serial ground truth, computed before any concurrency
            serial = {q.name: multiset(service.publish(q)) for q in queries}
            errors = []
            mismatches = []
            started = threading.Barrier(THREADS)

            def worker():
                try:
                    started.wait(timeout=10)
                    for _ in range(ROUNDS):
                        for query in queries:
                            rows = multiset(service.publish(query))
                            if rows != serial[query.name]:
                                mismatches.append(query.name)
                except Exception as error:
                    errors.append(error)

            threads = [threading.Thread(target=worker) for _ in range(THREADS)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            assert not errors, f"workers raised: {errors!r}"
            assert not mismatches, f"cross-talk on: {set(mismatches)}"

            stats = service.stats()
            total = len(queries) * (1 + THREADS * ROUNDS)
            assert stats.queries_served == total
            # one C&B run per distinct query; the rest from the plan cache
            assert stats.reformulations_computed == len(queries)
            assert stats.cache.misses == len(queries)
            assert stats.cache.hits == total - len(queries)
            assert stats.pool.created == 4
            assert stats.pool.checkouts == total

    def test_loud_close_blocks_midflight_shutdown(self):
        configuration = medical.build_configuration()
        service = PublishingService(configuration, pool_size=2)
        # the single pool, or any shard's pool on a sharded default backend
        pool = service.pool if service.pool is not None else service.shard_pools[0]
        connection = pool.acquire()
        with pytest.raises(StorageError):
            service.close()
        assert not service.closed
        pool.release(connection)
        service.close()
        assert service.closed

    def test_stress_on_memory_backend_for_symmetry(self):
        configuration = medical.build_configuration()
        configuration.backend = "memory"
        query = medical.client_query()
        with PublishingService(configuration, pool_size=4) as service:
            serial = multiset(service.publish(query))
            errors = []

            def worker():
                try:
                    for _ in range(ROUNDS):
                        assert multiset(service.publish(query)) == serial
                except Exception as error:
                    errors.append(error)

            threads = [threading.Thread(target=worker) for _ in range(THREADS)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            assert not errors


# ----------------------------------------------------------------------
# Plan-cache invalidation on configuration edits
# ----------------------------------------------------------------------
class TestCacheInvalidation:
    def test_evict_where_drops_matching_keys(self):
        cache = PlanCache(maxsize=8)
        cache.put((1, "a"), "old")
        cache.put((1, "b"), "old")
        cache.put((2, "a"), "new")
        dropped = cache.evict_where(lambda key: key[0] == 1)
        assert dropped == 2
        assert (2, "a") in cache and (1, "a") not in cache
        assert cache.stats().invalidations == 2
        # LRU capacity evictions are counted separately
        assert cache.stats().evictions == 0

    def test_configuration_edit_bumps_version(self):
        configuration = medical.build_configuration()
        before = configuration.version
        configuration.add_relation("audit", ("who", "what"))
        assert configuration.version == before + 1

    def test_stale_plans_flushed_on_view_change(self):
        """A configuration edit must recompile and flush dependent plans."""
        from repro.workloads.medical import cache_view, CACHE_DOCUMENT

        configuration = medical.build_configuration()
        cache = PlanCache(maxsize=16)
        system = MarsSystem(configuration, plan_cache=cache)
        query = medical.client_query()
        first = system.reformulate(query)
        assert first.found and len(cache) == 1
        stale_keys = cache.keys()
        # Declare the redundant cache document mid-flight (a new LAV view):
        # the reformulation search space changes, so the cached plan is stale.
        view = cache_view()
        configuration.add_xml_view(view, published=False)
        configuration.add_proprietary_document(CACHE_DOCUMENT)
        configuration.public_documents.pop(CACHE_DOCUMENT, None)
        second = system.reformulate(query)
        assert second.found
        # old-version entries were evicted, the new plan is cached under
        # the new version key
        assert all(key not in cache for key in stale_keys)
        assert cache.stats().invalidations >= 1
        assert len(cache) == 1
        # the recompiled system sees the new view: the cache document's
        # relations are now legal reformulation targets
        assert any("cache" in relation for relation in system.target_relations)

    def test_cached_plans_survive_unrelated_lookups(self):
        configuration = medical.build_configuration()
        cache = PlanCache(maxsize=16)
        system = MarsSystem(configuration, plan_cache=cache)
        system.reformulate(medical.client_query())
        hits_before = cache.stats().hits
        system.reformulate(medical.client_query())
        assert cache.stats().hits == hits_before + 1


# ----------------------------------------------------------------------
# PublishingService over the sharded backend (per-shard pools)
# ----------------------------------------------------------------------
class TestShardedService:
    def build_service(self, **kwargs):
        configuration = medical.build_configuration()
        configuration.backend = "sharded"
        configuration.shard_count = 3
        configuration.shard_children = ("memory", "sqlite", "memory")
        return PublishingService(configuration, **kwargs)

    def test_publish_matches_direct_execution(self):
        with self.build_service(pool_size=2) as service:
            for query in (medical.client_query(), medical.drug_usage_query()):
                rows = multiset(service.publish(query))
                expected = multiset(service.executor.execute_original(query))
                assert rows == expected

    def test_per_shard_pools_and_stats(self):
        with self.build_service(pool_size=2) as service:
            assert service.pool is None
            assert len(service.shard_pools) == 3
            service.publish(medical.client_query())
            stats = service.stats()
            assert len(stats.shard_pools) == 3
            assert stats.shard_pools[0].label == "shard-0"
            assert stats.pool.label == "sharded(3)"
            assert stats.pool.checkouts == sum(
                pool.checkouts for pool in stats.shard_pools
            )
            assert stats.router is not None and stats.router.queries >= 1

    def test_pruned_plan_checks_out_one_shard_only(self):
        """A partition-key-bound plan occupies exactly one shard's pool."""
        with self.build_service(pool_size=2) as service:
            template = service.executor.backend
            x = Variable("x")
            plan = ConjunctiveQuery(
                "pruned",
                (x,),
                (RelationalAtom("patientDiag", (Constant("ana"), x)),),
            )
            route = template.route_plan(plan)
            assert [d.mode for _q, d in route.decisions] == ["single"]
            target = route.needed_shards[0]
            before = [pool.stats().checkouts for pool in service.shard_pools]
            rows = service._run_plan(plan, distinct=True)
            assert rows == [("flu",)]
            after = [pool.stats().checkouts for pool in service.shard_pools]
            deltas = [b - a for a, b in zip(before, after)]
            assert sum(deltas) == 1 and deltas[target] == 1

    def test_concurrent_sharded_publishing(self):
        # pool_size=4 per shard: with 8 worker threads the bounded wait
        # queue (2 * size waiters) admits everyone; smaller pools would
        # correctly shed load with PoolExhaustedError instead.
        with self.build_service(pool_size=4) as service:
            queries = [medical.client_query(), medical.drug_usage_query()]
            serial = {q.name: multiset(service.publish(q)) for q in queries}
            errors = []

            def worker():
                try:
                    for _ in range(ROUNDS):
                        for query in queries:
                            assert multiset(service.publish(query)) == serial[
                                query.name
                            ]
                except Exception as error:
                    errors.append(error)

            threads = [threading.Thread(target=worker) for _ in range(THREADS)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            assert not errors, f"workers raised: {errors!r}"
            stats = service.stats()
            assert stats.queries_served == len(queries) * (1 + THREADS * ROUNDS)
