"""Shared fixtures: backend-matrix plumbing and the random-query generator.

Two pieces live here because several test modules need them:

* ``mars_backend`` — the storage-backend name the suite's *default*
  configurations run on.  ``MarsConfiguration`` reads the ``MARS_BACKEND``
  environment variable, so CI runs the whole tier-1 suite once per engine
  (``memory`` and ``sqlite``) by flipping one env value; the fixture simply
  exposes the active name to tests that want to log or assert it.

* :class:`RandomQueryGenerator` — seeded random conjunctive queries (and
  unions) over the tables a built backend actually holds, used by the
  randomized differential tests as a cross-backend oracle.  No hypothesis
  dependency: a seeded :class:`random.Random` makes every failure
  reproducible from the test id alone.
"""

import random
from typing import Dict, List, Optional, Sequence, Tuple

import pytest

from repro.logical.atoms import InequalityAtom, RelationalAtom
from repro.logical.queries import ConjunctiveQuery, UnionQuery
from repro.logical.terms import Constant, Variable
from repro.storage.backends import StorageBackend, default_backend_name


@pytest.fixture
def mars_backend() -> str:
    """The backend name default-constructed configurations will use."""
    return default_backend_name()


class RandomQueryGenerator:
    """Generate random conjunctive queries over a backend's actual tables.

    Queries are built so both engines must agree on them: every head
    variable is bound by a relational atom, constants are drawn from values
    actually stored in the column they constrain (so selections are
    non-trivially satisfiable), and join variables prefer columns with
    overlapping value sets (so joins are non-trivially non-empty).
    """

    def __init__(self, backend: StorageBackend, seed: int, max_atoms: int = 3):
        self.rng = random.Random(seed)
        self.max_atoms = max_atoms
        self.tables: Dict[str, List[Tuple[object, ...]]] = {}
        for name in backend.table_names:
            rows = [tuple(row) for row in backend.rows(name)]
            if rows:
                self.tables[name] = rows
        if not self.tables:
            raise ValueError("backend holds no populated tables to query")
        self._names = sorted(self.tables)
        self._counter = 0

    # ------------------------------------------------------------------
    def _fresh_variable(self) -> Variable:
        self._counter += 1
        return Variable(f"rv{self._counter}")

    def _column_values(self, table: str, position: int) -> List[object]:
        return [row[position] for row in self.tables[table]]

    def conjunctive(self, name: str, head_arity: Optional[int] = None) -> ConjunctiveQuery:
        rng = self.rng
        atom_count = rng.randint(1, self.max_atoms)
        atoms: List[RelationalAtom] = []
        # variable -> sample of values it may take, used to bias joins
        # toward columns whose value sets overlap.
        var_values: Dict[Variable, set] = {}
        for _ in range(atom_count):
            table = rng.choice(self._names)
            arity = len(self.tables[table][0])
            terms = []
            for position in range(arity):
                column = set(self._column_values(table, position))
                roll = rng.random()
                joinable = [
                    v for v, values in var_values.items() if values & column
                ]
                if joinable and roll < 0.35:
                    variable = rng.choice(joinable)
                    var_values[variable] = var_values[variable] & column
                    terms.append(variable)
                elif roll < 0.5:
                    terms.append(Constant(rng.choice(sorted(column, key=repr))))
                else:
                    variable = self._fresh_variable()
                    var_values[variable] = column
                    terms.append(variable)
            atoms.append(RelationalAtom(table, tuple(terms)))
        variables = sorted(var_values, key=lambda v: v.name)
        if head_arity is None:
            head_arity = rng.randint(1, min(3, len(variables))) if variables else 1
        if not variables:
            # all-constant atoms: give the query a constant head
            head = tuple(Constant("hit") for _ in range(head_arity))
            return ConjunctiveQuery(name, head, tuple(atoms))
        head = tuple(rng.choice(variables) for _ in range(head_arity))
        body: List = list(atoms)
        if len(variables) >= 2 and rng.random() < 0.3:
            left, right = rng.sample(variables, 2)
            body.append(InequalityAtom(left, right))
        return ConjunctiveQuery(name, head, tuple(body))

    def union(self, name: str, disjuncts: Optional[int] = None) -> UnionQuery:
        """A union of 2-3 random conjunctive queries with one head arity."""
        count = disjuncts or self.rng.randint(2, 3)
        arity = self.rng.randint(1, 2)
        return UnionQuery(
            name,
            tuple(
                self.conjunctive(f"{name}_d{index}", head_arity=arity)
                for index in range(count)
            ),
        )

    def key_bound_conjunctive(
        self, name: str, table: str, position: int
    ) -> ConjunctiveQuery:
        """A single-table query binding column *position* to a stored value.

        Used by the sharding differential tests: binding a table's
        partition-key column to a constant makes the query prunable to one
        shard, and drawing the constant from the stored data keeps the
        answer non-trivially non-empty.
        """
        rng = self.rng
        value = rng.choice(sorted(set(self._column_values(table, position)), key=repr))
        arity = len(self.tables[table][0])
        terms: List = []
        variables: List[Variable] = []
        for index in range(arity):
            if index == position:
                terms.append(Constant(value))
            else:
                variable = self._fresh_variable()
                variables.append(variable)
                terms.append(variable)
        head = tuple(variables) if variables else (Constant("hit"),)
        return ConjunctiveQuery(name, head, (RelationalAtom(table, tuple(terms)),))


@pytest.fixture
def query_generator():
    """Factory fixture: ``query_generator(backend, seed)`` -> generator."""

    def build(backend: StorageBackend, seed: int, **kwargs) -> RandomQueryGenerator:
        return RandomQueryGenerator(backend, seed, **kwargs)

    return build
