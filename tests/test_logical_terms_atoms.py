"""Unit tests for terms and atoms of the logical framework."""

import pytest
from hypothesis import given, strategies as st

from repro.logical import (
    Constant,
    EqualityAtom,
    InequalityAtom,
    RelationalAtom,
    Variable,
    VariableFactory,
    atom_variables,
    const,
    is_constant,
    is_variable,
    var,
)


class TestTerms:
    def test_variable_identity_and_hash(self):
        assert Variable("x") == Variable("x")
        assert Variable("x") != Variable("y")
        assert hash(Variable("x")) == hash(Variable("x"))
        assert len({Variable("x"), Variable("x"), Variable("y")}) == 2

    def test_constant_identity(self):
        assert Constant("a") == Constant("a")
        assert Constant(1) != Constant("1")

    def test_var_const_helpers(self):
        assert is_variable(var("x"))
        assert is_constant(const("x"))
        assert not is_variable(const(3))

    def test_variable_and_constant_never_equal(self):
        assert Variable("x") != Constant("x")

    def test_variable_factory_avoids_used_names(self):
        factory = VariableFactory(prefix="v", used=["v0", "v1"])
        fresh = factory.fresh()
        assert fresh.name not in {"v0", "v1"}

    def test_variable_factory_never_repeats(self):
        factory = VariableFactory()
        names = {factory.fresh().name for _ in range(100)}
        assert len(names) == 100

    def test_variable_factory_reserve(self):
        factory = VariableFactory(prefix="w")
        factory.reserve(["w0"])
        assert factory.fresh().name != "w0"


class TestRelationalAtom:
    def test_arity_and_str(self):
        atom = RelationalAtom("R", (var("x"), const("a")))
        assert atom.arity == 2
        assert "R" in str(atom)

    def test_variables_and_constants(self):
        atom = RelationalAtom("R", (var("x"), const("a"), var("x")))
        assert list(atom.variables()) == [var("x"), var("x")]
        assert list(atom.constants()) == [const("a")]

    def test_substitute(self):
        atom = RelationalAtom("R", (var("x"), var("y")))
        replaced = atom.substitute({var("x"): const(5)})
        assert replaced.terms == (const(5), var("y"))

    def test_substitute_is_pure(self):
        atom = RelationalAtom("R", (var("x"),))
        atom.substitute({var("x"): var("z")})
        assert atom.terms == (var("x"),)

    def test_atoms_hashable(self):
        a1 = RelationalAtom("R", (var("x"),))
        a2 = RelationalAtom("R", (var("x"),))
        assert a1 == a2
        assert len({a1, a2}) == 1


class TestFilterAtoms:
    def test_equality_trivial(self):
        assert EqualityAtom(var("x"), var("x")).is_trivial()
        assert not EqualityAtom(var("x"), var("y")).is_trivial()

    def test_equality_substitute(self):
        atom = EqualityAtom(var("x"), var("y")).substitute({var("y"): const(1)})
        assert atom.right == const(1)

    def test_inequality_substitute_and_vars(self):
        atom = InequalityAtom(var("x"), const("a"))
        assert list(atom.variables()) == [var("x")]
        replaced = atom.substitute({var("x"): var("z")})
        assert replaced.left == var("z")

    def test_atom_variables_dedupes_in_order(self):
        atoms = [
            RelationalAtom("R", (var("x"), var("y"))),
            RelationalAtom("S", (var("y"), var("z"))),
        ]
        assert atom_variables(atoms) == (var("x"), var("y"), var("z"))


@given(st.lists(st.sampled_from(["x", "y", "z", "w"]), min_size=1, max_size=4))
def test_property_substitution_idempotent_on_fixed_point(names):
    atom = RelationalAtom("R", tuple(var(n) for n in names))
    mapping = {var(n): var(n + "_1") for n in set(names)}
    once = atom.substitute(mapping)
    twice = once.substitute(mapping)
    # After the first substitution no original variable remains, so applying
    # the same mapping again changes nothing.
    assert once == twice


@given(
    st.lists(
        st.tuples(st.sampled_from("RST"), st.integers(min_value=1, max_value=3)),
        min_size=0,
        max_size=6,
    )
)
def test_property_atom_variables_subset_of_union(spec):
    atoms = [
        RelationalAtom(name, tuple(var(f"v{i}_{j}") for j in range(arity)))
        for i, (name, arity) in enumerate(spec)
    ]
    collected = set(atom_variables(atoms))
    union = set()
    for atom in atoms:
        union.update(atom.variables())
    assert collected == union
