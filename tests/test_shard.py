"""The sharding subsystem: partitioners, router pruning, scatter/gather.

The acceptance-critical test is
``test_key_bound_query_executes_on_exactly_one_shard``: a query binding the
partition key to a constant must be pruned to a single shard, proven
through the backend's per-shard execution counters, not just the routing
decision.
"""

import pytest

from repro.core import MarsConfiguration, MarsExecutor
from repro.errors import EvaluationError, SchemaError, StorageError
from repro.logical.atoms import InequalityAtom, RelationalAtom
from repro.logical.queries import ConjunctiveQuery, UnionQuery
from repro.logical.terms import Constant, Variable
from repro.shard import (
    MODE_GATHER,
    MODE_SCATTER,
    MODE_SINGLE,
    HashPartitioner,
    RangePartitioner,
    ScatterGatherExecutor,
    ShardedBackend,
    merge_rows,
    stable_hash,
)
from repro.storage.backends import (
    MemoryBackend,
    SQLiteBackend,
    available_backends,
    create_backend,
)
from repro.workloads import medical


def multiset(rows):
    return sorted(map(repr, rows))


# ----------------------------------------------------------------------
# Partitioners
# ----------------------------------------------------------------------
class TestPartitioners:
    def test_stable_hash_is_deterministic(self):
        # CRC-32 of the repr: process- and run-independent, unlike str hash
        assert stable_hash("ana") == stable_hash("ana")
        assert stable_hash(("a", 1)) == stable_hash(("a", 1))

    def test_hash_partitioner_covers_all_shards(self):
        partitioner = HashPartitioner()
        shards = {partitioner.shard_of(f"v{i}", 4) for i in range(200)}
        assert shards == {0, 1, 2, 3}

    def test_hash_partitioners_are_co_partition_compatible(self):
        assert HashPartitioner().compatible_with(HashPartitioner())
        assert not HashPartitioner().compatible_with(RangePartitioner(("m",)))

    def test_range_partitioner_boundaries(self):
        partitioner = RangePartitioner(("g", "p"))
        assert partitioner.shard_of("a", 3) == 0
        assert partitioner.shard_of("g", 3) == 1  # boundary is exclusive upper
        assert partitioner.shard_of("k", 3) == 1
        assert partitioner.shard_of("z", 3) == 2
        # more boundaries than shards: clamp to the last shard
        assert RangePartitioner((1, 2, 3, 4)).shard_of(100, 2) == 1

    def test_range_partitioner_rejects_unsorted(self):
        with pytest.raises(StorageError):
            RangePartitioner(("z", "a"))

    def test_range_partitioner_incomparable_value(self):
        with pytest.raises(StorageError):
            RangePartitioner(("a", "b")).shard_of(3.5, 2)


# ----------------------------------------------------------------------
# Construction and the registry
# ----------------------------------------------------------------------
class TestShardedConstruction:
    def test_registered_backend_name(self):
        assert "sharded" in available_backends()
        backend = create_backend("sharded", shards=3)
        assert isinstance(backend, ShardedBackend)
        assert backend.shard_count == 3
        backend.close()

    def test_mars_shards_environment_default(self, monkeypatch):
        monkeypatch.setenv("MARS_SHARDS", "5")
        backend = ShardedBackend()
        assert backend.shard_count == 5
        backend.close()
        monkeypatch.setenv("MARS_SHARDS", "zero")
        with pytest.raises(StorageError):
            ShardedBackend()
        monkeypatch.setenv("MARS_SHARDS", "0")
        with pytest.raises(StorageError):
            ShardedBackend()
        monkeypatch.delenv("MARS_SHARDS")
        backend = ShardedBackend()
        assert backend.shard_count == 2
        backend.close()

    def test_mixed_children(self):
        backend = ShardedBackend(children=("memory", "sqlite"))
        assert isinstance(backend.children[0], MemoryBackend)
        assert isinstance(backend.children[1], SQLiteBackend)
        assert backend.shard_count == 2
        backend.close()

    def test_child_count_mismatch_rejected(self):
        with pytest.raises(StorageError):
            ShardedBackend(shards=3, children=("memory", "sqlite"))
        with pytest.raises(StorageError):
            ShardedBackend(children=())

    def test_nested_sharding_rejected(self):
        with pytest.raises(StorageError):
            ShardedBackend(shards=2, children="sharded")

    def test_configuration_threads_sharding_defaults(self):
        configuration = MarsConfiguration("conf")
        configuration.backend = "sharded"
        configuration.shard_count = 3
        configuration.shard_children = ("memory", "memory", "sqlite")
        configuration.set_partition_key("r", "a")
        backend = configuration.create_backend()
        assert isinstance(backend, ShardedBackend)
        assert backend.shard_count == 3
        backend.create_table("r", 2, ("a", "b"))
        spec = backend.partition_spec("r")
        assert spec is not None and spec.column == "a" and spec.position == 0
        backend.close()

    def test_unknown_partition_column_rejected(self):
        backend = ShardedBackend(shards=2, partition_keys={"r": "nope", "s": 7})
        with pytest.raises(SchemaError):
            backend.create_table("r", 2, ("a", "b"))
        with pytest.raises(SchemaError):
            backend.create_table("s", 2, ("a", "b"))
        backend.close()


def build_backend(shards=3, children="memory", **kwargs):
    backend = ShardedBackend(
        shards=shards,
        children=children,
        partition_keys={"orders": "customer", "customers": "name"},
        **kwargs,
    )
    backend.create_table("orders", 3, ("customer", "item", "qty"))
    backend.create_table("customers", 2, ("name", "city"))
    backend.create_table("cities", 2, ("city", "country"))  # broadcast
    customers = [(f"c{i}", f"city{i % 4}") for i in range(12)]
    orders = [
        (f"c{i % 12}", f"item{i % 5}", i % 7) for i in range(60)
    ]
    cities = [(f"city{i}", "xy") for i in range(4)]
    backend.insert_many("customers", customers)
    backend.insert_many("orders", orders)
    backend.insert_many("cities", cities)
    return backend, customers, orders, cities


def memory_oracle(customers, orders, cities):
    oracle = MemoryBackend()
    oracle.create_table("orders", 3, ("customer", "item", "qty"))
    oracle.create_table("customers", 2, ("name", "city"))
    oracle.create_table("cities", 2, ("city", "country"))
    oracle.insert_many("customers", customers)
    oracle.insert_many("orders", orders)
    oracle.insert_many("cities", cities)
    return oracle


# ----------------------------------------------------------------------
# Data distribution
# ----------------------------------------------------------------------
class TestDataDistribution:
    def test_partitioned_fragments_are_disjoint_and_complete(self):
        backend, customers, orders, _cities = build_backend()
        fragments = backend.fragment_cardinalities("orders")
        assert sum(fragments) == len(orders)
        assert all(count < len(orders) for count in fragments)
        assert multiset(backend.rows("orders")) == multiset(orders)
        assert backend.cardinality("orders") == len(orders)
        backend.close()

    def test_broadcast_tables_replicated_everywhere(self):
        backend, _customers, _orders, cities = build_backend()
        assert backend.fragment_cardinalities("cities") == (4, 4, 4)
        # logical count is one copy, not shard_count copies
        assert backend.cardinality("cities") == 4
        assert backend.cardinalities()["cities"] == 4
        backend.close()

    def test_co_partitioned_rows_land_together(self):
        backend, _customers, _orders, _cities = build_backend()
        # customers.name and orders.customer use the same hash partitioner:
        # every customer's orders live on the customer's own shard
        for shard, child in enumerate(backend.children):
            names = {row[0] for row in child.rows("customers")}
            order_customers = {row[0] for row in child.rows("orders")}
            assert order_customers <= names
        backend.close()

    def test_clear_and_arity_validation(self):
        backend, *_ = build_backend()
        with pytest.raises(EvaluationError):
            backend.insert_many("orders", [("c1", "x")])
        with pytest.raises(EvaluationError):
            backend.rows("missing")
        backend.clear_table("orders")
        assert backend.cardinality("orders") == 0
        assert backend.has_table("orders")
        backend.close()


# ----------------------------------------------------------------------
# Routing decisions
# ----------------------------------------------------------------------
class TestRouting:
    def query_all_orders(self):
        c, i, q = Variable("c"), Variable("i"), Variable("q")
        return ConjunctiveQuery(
            "all_orders", (c, i), (RelationalAtom("orders", (c, i, q)),)
        )

    def test_broadcast_only_routes_to_one_shard(self):
        backend, *_ = build_backend()
        x, y = Variable("x"), Variable("y")
        query = ConjunctiveQuery("dims", (x, y), (RelationalAtom("cities", (x, y)),))
        decision = backend.router.route(query)
        assert decision.mode == MODE_SINGLE and len(decision.shards) == 1
        # the round-robin rotation spreads broadcast-only load over shards
        seen = {backend.router.route(query).shards[0] for _ in range(6)}
        assert len(seen) > 1
        backend.close()

    def test_bound_key_routes_to_single_shard(self):
        backend, *_ = build_backend()
        i, q = Variable("i"), Variable("q")
        query = ConjunctiveQuery(
            "one_customer",
            (i,),
            (RelationalAtom("orders", (Constant("c3"), i, q)),),
        )
        decision = backend.router.route(query)
        assert decision.mode == MODE_SINGLE
        expected = HashPartitioner().shard_of("c3", backend.shard_count)
        assert decision.shards == (expected,)
        backend.close()

    def test_equality_bound_key_is_recognized(self):
        """x = 'c3' in the body binds the key after normalization."""
        from repro.logical.atoms import EqualityAtom

        backend, *_ = build_backend()
        c, i, q = Variable("c"), Variable("i"), Variable("q")
        query = ConjunctiveQuery(
            "eq_bound",
            (i,),
            (
                RelationalAtom("orders", (c, i, q)),
                EqualityAtom(c, Constant("c3")),
            ),
        )
        decision = backend.router.route(query)
        assert decision.mode == MODE_SINGLE
        backend.close()

    def test_unbound_key_scatters(self):
        backend, *_ = build_backend()
        decision = backend.router.route(self.query_all_orders())
        assert decision.mode == MODE_SCATTER
        assert decision.shards == tuple(range(backend.shard_count))
        backend.close()

    def test_co_partitioned_join_scatters(self):
        backend, *_ = build_backend()
        c, i, q, city = (Variable("c"), Variable("i"), Variable("q"), Variable("t"))
        query = ConjunctiveQuery(
            "orders_with_city",
            (c, i, city),
            (
                RelationalAtom("orders", (c, i, q)),
                RelationalAtom("customers", (c, city)),
            ),
        )
        decision = backend.router.route(query)
        assert decision.mode == MODE_SCATTER
        backend.close()

    def test_non_key_join_gathers_with_pruned_fetch(self):
        backend, *_ = build_backend()
        c1, c2, city, i, q = (
            Variable("c1"),
            Variable("c2"),
            Variable("city"),
            Variable("i"),
            Variable("q"),
        )
        # join customers on city (not the partition key) with one bound order
        query = ConjunctiveQuery(
            "same_city",
            (c2,),
            (
                RelationalAtom("orders", (Constant("c3"), i, q)),
                RelationalAtom("customers", (Constant("c3"), city)),
                RelationalAtom("customers", (c2, city)),
            ),
        )
        decision = backend.router.route(query)
        assert decision.mode == MODE_GATHER
        fetch = dict(decision.fetch_shards)
        target = HashPartitioner().shard_of("c3", backend.shard_count)
        # the orders fragment fetch is pruned to the bound key's shard;
        # customers has an unbound atom, so every fragment is needed
        assert fetch["orders"] == (target,)
        assert fetch["customers"] == tuple(range(backend.shard_count))
        backend.close()

    def test_keys_bound_to_different_shards_gather(self):
        backend, *_ = build_backend()
        # find two customers on different shards
        partitioner = HashPartitioner()
        names = [f"c{i}" for i in range(12)]
        by_shard = {}
        for name in names:
            by_shard.setdefault(partitioner.shard_of(name, 3), name)
        assert len(by_shard) > 1
        first, second = list(by_shard.values())[:2]
        i1, i2, q1, q2 = (Variable(v) for v in ("i1", "i2", "q1", "q2"))
        query = ConjunctiveQuery(
            "two_customers",
            (i1, i2),
            (
                RelationalAtom("orders", (Constant(first), i1, q1)),
                RelationalAtom("orders", (Constant(second), i2, q2)),
            ),
        )
        decision = backend.router.route(query)
        assert decision.mode == MODE_GATHER
        backend.close()


# ----------------------------------------------------------------------
# Execution equivalence against the unsharded oracle
# ----------------------------------------------------------------------
CHILD_LAYOUTS = (
    ("memory", "memory", "memory"),
    ("memory", "sqlite", "memory"),
)


@pytest.mark.parametrize("children", CHILD_LAYOUTS, ids=("uniform", "mixed"))
class TestExecutionEquivalence:
    def queries(self):
        c, c2, i, q, city = (
            Variable("c"),
            Variable("c2"),
            Variable("i"),
            Variable("q"),
            Variable("city"),
        )
        yield ConjunctiveQuery(  # scatter: unbound partitioned scan
            "scan", (c, i, q), (RelationalAtom("orders", (c, i, q)),)
        )
        yield ConjunctiveQuery(  # single shard: bound key
            "point", (i, q), (RelationalAtom("orders", (Constant("c5"), i, q)),)
        )
        yield ConjunctiveQuery(  # scatter: co-partitioned join
            "co",
            (c, i, city),
            (
                RelationalAtom("orders", (c, i, q)),
                RelationalAtom("customers", (c, city)),
            ),
        )
        yield ConjunctiveQuery(  # gather: join through a non-key column
            "via_city",
            (c, c2),
            (
                RelationalAtom("customers", (c, city)),
                RelationalAtom("customers", (c2, city)),
                InequalityAtom(c, c2),
            ),
        )
        yield ConjunctiveQuery(  # broadcast join
            "geo",
            (c, q),
            (
                RelationalAtom("customers", (c, city)),
                RelationalAtom("cities", (city, q)),
            ),
        )

    def test_all_modes_agree_with_oracle(self, children):
        backend, customers, orders, cities = build_backend(children=children)
        oracle = memory_oracle(customers, orders, cities)
        for query in self.queries():
            for distinct in (True, False):
                expected = oracle.execute(query, distinct=distinct)
                actual = backend.execute(query, distinct=distinct)
                assert multiset(actual) == multiset(expected), (
                    f"{query.name} diverged (distinct={distinct})"
                )
        backend.close()
        oracle.close()

    def test_unions_route_per_disjunct(self, children):
        backend, customers, orders, cities = build_backend(children=children)
        oracle = memory_oracle(customers, orders, cities)
        i, q = Variable("i"), Variable("q")
        disjuncts = tuple(
            ConjunctiveQuery(
                f"d{name}", (i,), (RelationalAtom("orders", (Constant(name), i, q)),)
            )
            for name in ("c1", "c2", "c5")
        )
        union = UnionQuery("u", disjuncts)
        before = backend.stats()
        assert multiset(backend.execute_union(union)) == multiset(
            oracle.execute_union(union)
        )
        after = backend.stats()
        # three bound disjuncts -> three single-shard executions, no scatter
        assert after.router.single_shard - before.router.single_shard == 3
        assert after.router.scatter == before.router.scatter
        executed = sum(after.executions_per_shard) - sum(before.executions_per_shard)
        assert executed == 3
        backend.close()
        oracle.close()

    def gather_union(self):
        """Two disjuncts that both gather and reference the same tables."""
        c, c2, city = Variable("c"), Variable("c2"), Variable("city")
        same_city = ConjunctiveQuery(
            "same_city",
            (c, c2),
            (
                RelationalAtom("customers", (c, city)),
                RelationalAtom("customers", (c2, city)),
                InequalityAtom(c, c2),
            ),
        )
        d, d2, town = Variable("d"), Variable("d2"), Variable("town")
        cross_key = ConjunctiveQuery(
            "cross_key",
            (d, d2),
            (
                RelationalAtom("customers", (d, town)),
                RelationalAtom("orders", (d2, town, Variable("qq"))),
            ),
        )
        return UnionQuery("gu", (same_city, cross_key))

    def test_gather_only_union_is_batched(self, children):
        """Routed-union batching: one shared fetch pass for all disjuncts.

        Both disjuncts gather and both reference ``customers``; the union
        must fetch each pruned fragment once, not once per disjunct —
        proven through the gather-fetch counters and recorded on
        ``RouterStats``.
        """
        backend, customers, orders, cities = build_backend(children=children)
        oracle = memory_oracle(customers, orders, cities)
        union = self.gather_union()
        # per-disjunct baseline: run each disjunct alone and count fetches
        solo_fetches = 0
        for disjunct in union:
            before = backend.stats()
            backend.execute(disjunct)
            after = backend.stats()
            solo_fetches += sum(after.gather_fetches_per_shard) - sum(
                before.gather_fetches_per_shard
            )
        before = backend.stats()
        assert multiset(backend.execute_union(union)) == multiset(
            oracle.execute_union(union)
        )
        after = backend.stats()
        batched_fetches = sum(after.gather_fetches_per_shard) - sum(
            before.gather_fetches_per_shard
        )
        assert batched_fetches < solo_fetches
        assert after.router.gather_unions_batched - (
            before.router.gather_unions_batched
        ) == 1
        saved = (
            after.router.fragment_fetches_saved
            - before.router.fragment_fetches_saved
        )
        assert saved == solo_fetches - batched_fetches
        # bag semantics survives the shared scratch store
        assert multiset(backend.execute_union(union, distinct=False)) == multiset(
            oracle.execute_union(union, distinct=False)
        )
        backend.close()
        oracle.close()

    def test_mixed_mode_union_is_not_batched(self, children):
        """A union with a non-gather disjunct keeps per-disjunct routing."""
        backend, customers, orders, cities = build_backend(children=children)
        oracle = memory_oracle(customers, orders, cities)
        i, q = Variable("i"), Variable("q")
        point = ConjunctiveQuery(
            "point", (i, q), (RelationalAtom("orders", (Constant("c5"), i, q)),)
        )
        union = UnionQuery("mixed", (point,) + tuple(self.gather_union()))
        before = backend.stats()
        assert multiset(backend.execute_union(union)) == multiset(
            oracle.execute_union(union)
        )
        after = backend.stats()
        assert after.router.gather_unions_batched == before.router.gather_unions_batched
        assert after.router.single_shard - before.router.single_shard >= 1
        backend.close()
        oracle.close()


# ----------------------------------------------------------------------
# The acceptance criterion: provable single-shard execution
# ----------------------------------------------------------------------
class TestSingleShardPruning:
    def test_key_bound_query_executes_on_exactly_one_shard(self):
        backend, customers, orders, cities = build_backend(
            children=("sqlite", "memory", "sqlite")
        )
        oracle = memory_oracle(customers, orders, cities)
        i, q = Variable("i"), Variable("q")
        query = ConjunctiveQuery(
            "point", (i, q), (RelationalAtom("orders", (Constant("c7"), i, q)),)
        )
        target = HashPartitioner().shard_of("c7", backend.shard_count)
        before = backend.stats()
        rows = backend.execute(query)
        after = backend.stats()
        assert multiset(rows) == multiset(oracle.execute(query))
        assert after.router.single_shard - before.router.single_shard == 1
        deltas = [
            now - then
            for then, now in zip(
                before.executions_per_shard, after.executions_per_shard
            )
        ]
        assert sum(deltas) == 1, "query fanned out instead of being pruned"
        assert deltas[target] == 1, "query ran on the wrong shard"
        assert after.gather_fetches_per_shard == before.gather_fetches_per_shard
        backend.close()
        oracle.close()


# ----------------------------------------------------------------------
# Lifecycle, clone, explain
# ----------------------------------------------------------------------
class TestLifecycle:
    def test_close_is_loud_and_closes_children(self):
        backend, *_ = build_backend(children=("memory", "sqlite", "memory"))
        children = backend.children
        backend.close()
        assert backend.closed and all(child.closed for child in children)
        with pytest.raises(StorageError):
            backend.close()
        with pytest.raises(StorageError):
            backend.execute(
                ConjunctiveQuery(
                    "q", (Variable("x"),), (RelationalAtom("cities", (Variable("x"), Variable("y"))),)
                )
            )
        with pytest.raises(StorageError):
            backend.clone()

    def test_clone_is_independent(self):
        backend, customers, orders, cities = build_backend(
            children=("memory", "sqlite", "memory")
        )
        clone = backend.clone()
        c, i, q = Variable("c"), Variable("i"), Variable("q")
        query = ConjunctiveQuery(
            "scan", (c, i, q), (RelationalAtom("orders", (c, i, q)),)
        )
        assert multiset(clone.execute(query)) == multiset(backend.execute(query))
        # clone counters start fresh and do not leak into the template
        assert sum(clone.stats().executions_per_shard) == backend.shard_count
        clone.close()
        backend.execute(query)  # template still live
        backend.close()

    def test_explain_reports_routing(self):
        backend, *_ = build_backend()
        i, q = Variable("i"), Variable("q")
        bound = ConjunctiveQuery(
            "point", (i,), (RelationalAtom("orders", (Constant("c3"), i, q)),)
        )
        plan = backend.explain(bound)
        assert "single-shard" in plan and "orders.customer" in plan
        c = Variable("c")
        scan = ConjunctiveQuery(
            "scan", (c,), (RelationalAtom("orders", (c, i, q)),)
        )
        assert "scatter" in backend.explain(scan)
        backend.close()


# ----------------------------------------------------------------------
# Range partitioning end to end
# ----------------------------------------------------------------------
class TestRangePartitioning:
    def test_range_partitioned_table_routes_and_agrees(self):
        backend = ShardedBackend(
            shards=3,
            partition_keys={"events": "day"},
            partitioners={"events": RangePartitioner((10, 20))},
        )
        backend.create_table("events", 2, ("day", "kind"))
        rows = [(day, f"k{day % 3}") for day in range(30)]
        backend.insert_many("events", rows)
        assert backend.fragment_cardinalities("events") == (10, 10, 10)
        k = Variable("k")
        query = ConjunctiveQuery(
            "day5", (k,), (RelationalAtom("events", (Constant(5), k)),)
        )
        decision = backend.router.route(query)
        assert decision.mode == MODE_SINGLE and decision.shards == (0,)
        assert backend.execute(query) == [("k2",)]
        backend.close()


# ----------------------------------------------------------------------
# ScatterGatherExecutor and merge semantics
# ----------------------------------------------------------------------
class TestScatterGather:
    def test_merge_semantics(self):
        per_shard = [(0, [(1,), (2,)]), (1, [(2,), (3,)])]
        assert merge_rows(per_shard, distinct=True) == [(1,), (2,), (3,)]
        assert merge_rows(per_shard, distinct=False) == [(1,), (2,), (2,), (3,)]

    def test_single_task_runs_inline(self):
        import threading

        executor = ScatterGatherExecutor(max_workers=2)
        main = threading.get_ident()
        assert executor.run([(0, threading.get_ident)]) == [(0, main)]
        # multiple tasks fan out to worker threads
        results = executor.run([(0, threading.get_ident), (1, threading.get_ident)])
        assert {shard for shard, _ in results} == {0, 1}
        executor.shutdown()

    def test_errors_propagate(self):
        executor = ScatterGatherExecutor(max_workers=2)

        def boom():
            raise EvaluationError("shard failure")

        with pytest.raises(EvaluationError):
            executor.run([(0, boom), (1, lambda: [])])
        executor.shutdown()
        with pytest.raises(ValueError):
            ScatterGatherExecutor(max_workers=0)


# ----------------------------------------------------------------------
# The sharded backend under a full MARS workload (executor level)
# ----------------------------------------------------------------------
class TestShardedExecutor:
    def test_medical_reformulations_agree(self):
        from repro.core import MarsSystem

        configuration = medical.build_configuration()
        system = MarsSystem(configuration)
        memory_executor = MarsExecutor(configuration, backend="memory")
        sharded_executor = MarsExecutor(configuration, backend="sharded")
        assert isinstance(sharded_executor.backend, ShardedBackend)
        # the workload's partition hints reached the backend
        assert sharded_executor.backend.partition_spec("patientDiag") is not None
        for query in (medical.client_query(), medical.drug_usage_query()):
            result = system.reformulate(query)
            assert result.found
            assert multiset(
                sharded_executor.execute_reformulation(result.best)
            ) == multiset(memory_executor.execute_reformulation(result.best))
        sharded_executor.close()
        memory_executor.close()


# ----------------------------------------------------------------------
# MemoryBackend.explain cardinality estimates (satellite)
# ----------------------------------------------------------------------
class TestMemoryExplainEstimates:
    def test_estimates_per_join_step(self):
        backend = MemoryBackend()
        backend.create_table("r", 2, ("a", "b"))
        backend.insert_many("r", [(i, i % 3) for i in range(12)])
        backend.create_table("s", 2, ("b", "c"))
        backend.insert_many("s", [(i % 3, i) for i in range(6)])
        x, y, z = Variable("x"), Variable("y"), Variable("z")
        query = ConjunctiveQuery(
            "q",
            (x, z),
            (RelationalAtom("r", (x, y)), RelationalAtom("s", (y, z))),
        )
        plan = backend.explain(query)
        # step 1 scans r (12 rows); step 2 probes s on b (3 distinct values):
        # 12 * 6 / 3 = 24 estimated rows
        assert "est. 12.0 rows" in plan
        assert "est. 24.0 rows" in plan
        assert "estimated result: 24.0 rows" in plan
        backend.close()
