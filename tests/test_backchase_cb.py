"""Unit tests for the backchase, cost estimators and the full C&B pipeline."""

import math

import pytest

from repro.engine import (
    BackchaseConfig,
    BackchaseEngine,
    CBConfig,
    CBEngine,
    ClosureSpec,
    ContainmentChecker,
    DynamicProgrammingCostEstimator,
    SimpleCostEstimator,
    SubqueryLegality,
    best_of,
    chase_query,
    prune_parallel_descendant_atoms,
)
from repro.logical import (
    ConjunctiveQuery,
    RelationalAtom,
    const,
    tgd,
    var,
    view_inclusion_dependencies,
)
from repro.storage import TableStatistics

x, y, z, u = var("x"), var("y"), var("z"), var("u")


def R(*terms):
    return RelationalAtom("R", terms)


def S(*terms):
    return RelationalAtom("S", terms)


class TestCostEstimators:
    def test_simple_estimator_monotone(self):
        estimator = SimpleCostEstimator(TableStatistics(cardinalities={"R": 10, "S": 20}))
        small = ConjunctiveQuery("Q", [x], [R(x, y)])
        large = ConjunctiveQuery("Q", [x], [R(x, y), S(y, z)])
        assert estimator.estimate(small) < estimator.estimate(large)

    def test_simple_estimator_uses_weights(self):
        stats = TableStatistics(cardinalities={"R": 10}, access_weights={"R": 5.0})
        weighted = SimpleCostEstimator(stats)
        unweighted = SimpleCostEstimator(TableStatistics(cardinalities={"R": 10}))
        query = ConjunctiveQuery("Q", [x], [R(x, y)])
        assert weighted.estimate(query) > unweighted.estimate(query)

    def test_dp_estimator_monotone_in_atoms(self):
        estimator = DynamicProgrammingCostEstimator(
            TableStatistics(cardinalities={"R": 100, "S": 100})
        )
        small = ConjunctiveQuery("Q", [x], [R(x, y)])
        large = ConjunctiveQuery("Q", [x], [R(x, y), S(y, z)])
        assert estimator.estimate(small) < estimator.estimate(large)

    def test_dp_estimator_prefers_selective_join_orders(self):
        # Just a sanity check: the estimate is finite and positive.
        estimator = DynamicProgrammingCostEstimator(
            TableStatistics(cardinalities={"R": 1000, "S": 10})
        )
        query = ConjunctiveQuery("Q", [x], [R(x, y), S(y, z), R(z, u)])
        cost = estimator.estimate(query)
        assert 0 < cost < math.inf

    def test_best_of(self):
        estimator = SimpleCostEstimator(TableStatistics(cardinalities={"R": 1, "S": 100}))
        cheap = ConjunctiveQuery("A", [x], [R(x, y)])
        pricey = ConjunctiveQuery("B", [x], [S(x, y)])
        best, cost = best_of(estimator, [pricey, cheap])
        assert best is cheap
        assert cost == estimator.estimate(cheap)

    def test_best_of_empty(self):
        best, cost = best_of(SimpleCostEstimator(), [])
        assert best is None and cost == math.inf


class TestBackchase:
    def _setup(self):
        cV, bV = view_inclusion_dependencies("V", [x, z], [R(x, y), S(y, z)])
        ind = tgd("ind", [R(x, y)], [S(y, z)])
        query = ConjunctiveQuery("Q", [x], [R(x, y)])
        dependencies = [ind, cV, bV]
        plan = chase_query(query, dependencies).universal_plan
        return query, plan, dependencies

    def test_initial_reformulation(self):
        query, plan, dependencies = self._setup()
        engine = BackchaseEngine()
        initial = engine.initial_reformulation(query, plan, dependencies, {"V"})
        assert initial is not None
        assert initial.relation_names() == frozenset({"V"})

    def test_initial_reformulation_none_when_impossible(self):
        query, plan, dependencies = self._setup()
        engine = BackchaseEngine()
        assert engine.initial_reformulation(query, plan, dependencies, {"W"}) is None

    def test_minimal_reformulation_found(self):
        query, plan, dependencies = self._setup()
        engine = BackchaseEngine()
        result = engine.backchase(query, plan, dependencies, target_relations={"V"})
        assert result.best is not None
        assert result.best.relation_names() == frozenset({"V"})
        assert len(result.best.relational_body) == 1

    def test_backchase_without_target_restriction_minimizes(self):
        query, plan, dependencies = self._setup()
        engine = BackchaseEngine(
            estimator=SimpleCostEstimator(TableStatistics(cardinalities={"V": 1, "R": 100, "S": 100}))
        )
        result = engine.backchase(query, plan, dependencies, target_relations=None)
        assert result.best is not None
        assert len(result.best.relational_body) == 1

    def test_all_minimal_reformulations_without_cost_pruning(self):
        query, plan, dependencies = self._setup()
        engine = BackchaseEngine(config=BackchaseConfig(prune_by_cost=False))
        result = engine.backchase(query, plan, dependencies, target_relations=None)
        bodies = {frozenset(m.relation_names()) for m in result.minimal_reformulations}
        # Both the original R-scan and the view rewrite are minimal.
        assert frozenset({"R"}) in bodies
        assert frozenset({"V"}) in bodies

    def test_stop_at_first(self):
        query, plan, dependencies = self._setup()
        engine = BackchaseEngine(config=BackchaseConfig(stop_at_first=True))
        result = engine.backchase(query, plan, dependencies, target_relations={"V"})
        assert len(result.minimal_reformulations) == 1


class TestPlanPruning:
    def test_parallel_desc_atoms_removed(self):
        spec = ClosureSpec()
        atoms = [
            RelationalAtom("root", (var("r"),)),
            RelationalAtom("child", (var("r"), var("a"))),
            RelationalAtom("child", (var("a"), var("b"))),
            RelationalAtom("desc", (var("r"), var("b"))),
            RelationalAtom("desc", (var("a"), var("a"))),
            RelationalAtom("desc", (var("r"), var("c"))),
        ]
        plan = ConjunctiveQuery("U", [var("r")], atoms)
        pruned, removed = prune_parallel_descendant_atoms(plan, [spec])
        names = [a for a in pruned.relational_body if a.relation == "desc"]
        # desc(r,b) is parallel to child chains, desc(a,a) is reflexive: both go;
        # desc(r,c) has no parallel chain and stays.
        assert removed == 2
        assert len(names) == 1
        assert names[0].terms[1] == var("c")

    def test_legality_requires_entry_point(self):
        spec = ClosureSpec()
        atoms = (
            RelationalAtom("root", (var("r"),)),
            RelationalAtom("child", (var("r"), var("a"))),
            RelationalAtom("child", (var("a"), var("b"))),
            RelationalAtom("V", (var("b"),)),
        )
        legality = SubqueryLegality(atoms, specs=[spec])
        root_atom, first, second, view = atoms
        assert legality.is_entry(root_atom)
        assert legality.is_entry(view)
        assert not legality.is_entry(second)
        # Criterion 2: cannot jump into the middle of the navigation.
        assert not legality.can_extend([root_atom], second)
        assert legality.can_extend([root_atom], first)
        assert legality.can_extend([root_atom, first], second)
        # A set with a gap is illegal as a whole.
        assert not legality.is_legal([root_atom, second])
        assert legality.is_legal([root_atom, first, second])

    def test_legality_disabled_allows_everything(self):
        atoms = (RelationalAtom("child", (x, y)),)
        legality = SubqueryLegality(atoms, specs=(), enabled=False)
        assert legality.is_entry(atoms[0])
        assert legality.is_legal(atoms)


class TestCBEngine:
    def test_paper_example_end_to_end(self):
        cV, bV = view_inclusion_dependencies("V", [x, z], [R(x, y), S(y, z)])
        ind = tgd("ind", [R(x, y)], [S(y, z)])
        query = ConjunctiveQuery("Q", [x], [R(x, y)])
        engine = CBEngine()
        result = engine.reformulate(query, [ind, cV, bV], target_relations={"V"})
        assert result.best is not None
        assert result.best.relation_names() == frozenset({"V"})
        assert result.initial_reformulation is not None
        assert result.time_to_best >= result.time_to_initial >= 0.0

    def test_minimize_disabled_returns_initial(self):
        cV, bV = view_inclusion_dependencies("V", [x, z], [R(x, y), S(y, z)])
        ind = tgd("ind", [R(x, y)], [S(y, z)])
        query = ConjunctiveQuery("Q", [x], [R(x, y)])
        engine = CBEngine(config=CBConfig(minimize=False))
        result = engine.reformulate(query, [ind, cV, bV], target_relations={"V"})
        assert result.best is not None
        assert result.subqueries_inspected == 0

    def test_no_reformulation_when_views_insufficient(self):
        # The view does not expose R's first column, so Q has no rewrite over V.
        cV, bV = view_inclusion_dependencies("V", [z], [R(x, y), S(y, z)])
        query = ConjunctiveQuery("Q", [x], [R(x, y)])
        engine = CBEngine()
        result = engine.reformulate(query, [cV, bV], target_relations={"V"})
        assert result.best is None
        assert result.minimal_reformulations == []
