"""The replication + live-update subsystem: write path, replicas, rebalance.

Acceptance-critical coverage:

* the differential suite under interleaved reads and writes — a
  ``replicated`` backend (K=2 and K=3, over plain SQLite and over sharded
  children) must agree with a plain memory oracle after every change set;
* kill-a-replica failover while publishes are in flight;
* the rebalance-while-publishing linearizability check: every read taken
  during an online shard split must observe a *prefix* of the
  single-writer update stream, and the post-rebalance state must equal
  the oracle.
"""

import threading

import pytest

from repro.core import MarsExecutor
from repro.errors import EvaluationError, StorageError
from repro.logical.atoms import RelationalAtom
from repro.logical.queries import ConjunctiveQuery
from repro.logical.terms import Constant, Variable
from repro.replica import (
    ChangeSet,
    LeastLoadedSelector,
    MutationLog,
    Rebalancer,
    ReplicatedBackend,
    RoundRobinSelector,
    TableChange,
    create_selector,
)
from repro.serve import ConnectionPool, PublishingService
from repro.shard import ShardedBackend
from repro.storage.backends import (
    MemoryBackend,
    SQLiteBackend,
    available_backends,
    create_backend,
)
from repro.workloads import xmark
from repro.workloads.datagen import UpdateStreamGenerator

UPDATABLE_TABLES = ("itemName", "itemCategory", "personDirectory", "auctionPrice")


def multiset(rows):
    return sorted(map(repr, rows))


def small_xmark():
    return xmark.build_configuration(
        xmark.XMarkParameters(items_per_region=4, people=8, closed_auctions=12)
    )


def simple_query(table="r"):
    x, y = Variable("x"), Variable("y")
    return ConjunctiveQuery("q", (x, y), (RelationalAtom(table, (x, y)),))


# ----------------------------------------------------------------------
# ChangeSet and MutationLog
# ----------------------------------------------------------------------
class TestChangeSetAndLog:
    def test_build_merges_per_relation(self):
        changeset = ChangeSet.build(
            inserts={"r": [(1, "a")], "s": [(2,)]},
            deletes={"r": [(3, "b")]},
        )
        by_name = {change.relation: change for change in changeset.changes}
        assert by_name["r"].inserts == ((1, "a"),)
        assert by_name["r"].deletes == ((3, "b"),)
        assert by_name["s"].inserts == ((2,),)
        assert changeset.touched() == 3
        assert changeset.touched("r") == 2
        assert not changeset.is_empty()
        assert ChangeSet.build().is_empty()

    def test_restricted_to(self):
        changeset = ChangeSet.build(inserts={"r": [(1,)], "s": [(2,)]})
        restricted = changeset.restricted_to(["s"])
        assert restricted.relations() == ("s",)

    def test_log_lsns_are_monotonic_and_dense(self):
        log = MutationLog()
        assert log.lsn == 0
        first = log.append(ChangeSet.build(inserts={"r": [(1,)]}))
        second = log.append(ChangeSet.build(inserts={"r": [(2,)]}))
        assert (first, second) == (1, 2)
        assert [entry.lsn for entry in log.entries_since(0)] == [1, 2]
        assert [entry.lsn for entry in log.entries_since(1)] == [2]
        assert log.entries_since(2) == ()

    def test_log_compaction_guards_stale_readers(self):
        log = MutationLog()
        for i in range(5):
            log.append(ChangeSet.build(inserts={"r": [(i,)]}))
        assert log.compact(3) == 3
        assert len(log) == 2
        assert [entry.lsn for entry in log.entries_since(3)] == [4, 5]
        with pytest.raises(StorageError):
            log.entries_since(1)
        # compacting backwards or past the head is a no-op / clamped
        assert log.compact(2) == 0
        assert log.compact(99) == 2


# ----------------------------------------------------------------------
# The apply() write path on every engine
# ----------------------------------------------------------------------
def writable_backend(kind):
    if kind == "sharded":
        backend = ShardedBackend(
            shards=3, children="memory", partition_keys={"r": "a"}
        )
    elif kind == "replicated":
        backend = ReplicatedBackend(replicas=2, child="sqlite")
    else:
        backend = create_backend(kind)
    backend.create_table("r", 2, ("a", "b"))
    backend.insert_many("r", [(1, "x"), (1, "x"), (2, "y"), (3, "z")])
    return backend


@pytest.mark.parametrize("kind", ("memory", "sqlite", "sharded", "replicated"))
class TestApplyWritePath:
    def test_apply_inserts_and_deletes(self, kind):
        with writable_backend(kind) as backend:
            backend.apply(
                ChangeSet.build(
                    inserts={"r": [(4, "w")]}, deletes={"r": [(2, "y")]}
                )
            )
            assert multiset(backend.rows("r")) == multiset(
                [(1, "x"), (1, "x"), (3, "z"), (4, "w")]
            )

    def test_delete_is_bag_semantics(self, kind):
        """One requested delete removes exactly one duplicate occurrence."""
        with writable_backend(kind) as backend:
            removed = backend.delete_many("r", [(1, "x")])
            assert removed == 1
            assert multiset(backend.rows("r")) == multiset(
                [(1, "x"), (2, "y"), (3, "z")]
            )

    def test_deleting_missing_rows_is_a_noop(self, kind):
        with writable_backend(kind) as backend:
            assert backend.delete_many("r", [(99, "nope")]) == 0
            assert backend.cardinality("r") == 4

    def test_apply_unknown_table_raises(self, kind):
        with writable_backend(kind) as backend:
            with pytest.raises(EvaluationError):
                backend.apply(ChangeSet.build(inserts={"missing": [(1,)]}))


class TestSQLiteTransactionalApply:
    def test_failed_apply_rolls_back_entirely(self):
        backend = SQLiteBackend()
        backend.create_table("r", 2, ("a", "b"))
        backend.insert_many("r", [(1, "x"), (2, "y")])
        bad = ChangeSet(
            changes=(
                TableChange("r", inserts=((9, "ok"),), deletes=((1, "x"),)),
                TableChange("r", inserts=((1, 2, 3),)),  # wrong arity
            )
        )
        with pytest.raises(EvaluationError):
            backend.apply(bad)
        # the valid first change must not have leaked through
        assert multiset(backend.rows("r")) == multiset([(1, "x"), (2, "y")])
        backend.close()

    def test_null_values_are_deletable(self):
        backend = SQLiteBackend()
        backend.create_table("r", 2, ("a", "b"))
        backend.insert_many("r", [(1, None), (2, "y")])
        assert backend.delete_many("r", [(1, None)]) == 1
        assert multiset(backend.rows("r")) == multiset([(2, "y")])
        backend.close()


class TestShardedChangeRouting:
    def test_routed_changes_land_on_owning_shards(self):
        backend = ShardedBackend(
            shards=3, children="memory", partition_keys={"r": "a"}
        )
        backend.create_table("r", 2, ("a", "b"))
        backend.create_table("dim", 1, ("d",))  # broadcast
        rows = [(i, f"v{i}") for i in range(12)]
        backend.insert_many("r", rows)
        backend.insert_many("dim", [("only",)])
        spec = backend.partition_spec("r")
        routed = backend.route_changeset(
            ChangeSet.build(
                inserts={"r": [(100, "new")], "dim": [("second",)]},
                deletes={"r": [(0, "v0")]},
            )
        )
        # the dim broadcast reaches every shard; r rows only their owner
        assert set(routed) == {0, 1, 2}
        owner = spec.partitioner.shard_of(100, 3)
        for shard, sub in routed.items():
            names = sub.relations()
            assert "dim" in names
            if shard == owner:
                assert ("r", (100, "new")) in [
                    (change.relation, row)
                    for change in sub.changes
                    for row in change.inserts
                ]
        backend.apply(
            ChangeSet.build(inserts={"r": [(100, "new")]})
        )
        fragments = backend.fragment_cardinalities("r")
        assert sum(fragments) == 13
        backend.close()


# ----------------------------------------------------------------------
# Replica selectors
# ----------------------------------------------------------------------
class TestSelectors:
    def test_round_robin_rotates_the_start(self):
        selector = RoundRobinSelector()
        starts = [selector.order(3, (0, 0, 0))[0] for _ in range(6)]
        assert starts == [0, 1, 2, 0, 1, 2]
        assert sorted(selector.order(3, (0, 0, 0))) == [0, 1, 2]

    def test_least_loaded_prefers_idle_replicas(self):
        selector = LeastLoadedSelector()
        assert selector.order(3, (5, 0, 2))[0] == 1
        assert selector.order(3, (5, 0, 2))[-1] == 0
        # ties rotate so idle replicas alternate
        starts = {selector.order(2, (1, 1))[0] for _ in range(4)}
        assert starts == {0, 1}

    def test_create_selector_registry(self):
        assert isinstance(create_selector("round_robin"), RoundRobinSelector)
        assert isinstance(create_selector("least_loaded"), LeastLoadedSelector)
        assert isinstance(create_selector(None), RoundRobinSelector)
        with pytest.raises(StorageError):
            create_selector("nope")


# ----------------------------------------------------------------------
# ReplicatedBackend
# ----------------------------------------------------------------------
class TestReplicatedBackend:
    def test_registered_and_default_count_from_env(self, monkeypatch):
        assert "replicated" in available_backends()
        monkeypatch.setenv("MARS_REPLICAS", "3")
        backend = create_backend("replicated")
        assert backend.replica_count == 3
        backend.close()

    def test_reads_spread_over_replicas(self):
        with writable_backend("replicated") as backend:
            for _ in range(6):
                backend.execute(simple_query())
            stats = backend.stats()
            assert sum(stats.reads_per_replica) == 6
            assert all(count > 0 for count in stats.reads_per_replica)

    def test_writes_reach_every_replica(self):
        with writable_backend("replicated") as backend:
            backend.apply(ChangeSet.build(inserts={"r": [(9, "nine")]}))
            for replica in backend.replicas:
                assert (9, "nine") in tuple(replica.rows("r"))

    def test_failover_when_a_replica_dies(self):
        with writable_backend("replicated") as backend:
            expected = multiset(backend.execute(simple_query()))
            backend.replicas[0].close()
            for _ in range(4):
                assert multiset(backend.execute(simple_query())) == expected
            stats = backend.stats()
            assert stats.live_replicas == 1
            # writes keep working on the survivors
            backend.apply(ChangeSet.build(inserts={"r": [(7, "seven")]}))
            assert (7, "seven") in {tuple(r) for r in backend.rows("r")}

    def test_all_replicas_dead_raises(self):
        with writable_backend("replicated") as backend:
            for replica in backend.replicas:
                replica.close()
            with pytest.raises(StorageError):
                backend.execute(simple_query())
            with pytest.raises(StorageError):
                backend.apply(ChangeSet.build(inserts={"r": [(1, "x")]}))

    def test_clone_skips_dead_replicas(self):
        backend = ReplicatedBackend(replicas=3, child="sqlite")
        backend.create_table("r", 2, ("a", "b"))
        backend.insert_many("r", [(1, "x")])
        backend.replicas[1].close()
        clone = backend.clone()
        assert clone.replica_count == 2
        assert multiset(clone.execute(simple_query())) == multiset([(1, "x")])
        clone.close()
        backend.close()

    def test_nesting_replicated_in_replicated_is_rejected(self):
        with pytest.raises(StorageError):
            ReplicatedBackend(replicas=2, child="replicated")

    def test_explain_names_the_replication(self):
        with writable_backend("replicated") as backend:
            text = backend.explain(simple_query())
            assert "replicated over 2 replicas" in text

    def test_query_errors_do_not_fail_over(self):
        """EvaluationError is deterministic: no point asking another copy."""
        with writable_backend("replicated") as backend:
            bad = ConjunctiveQuery(
                "bad",
                (Variable("x"),),
                (RelationalAtom("missing", (Variable("x"),)),),
            )
            with pytest.raises(EvaluationError):
                backend.execute(bad)
            assert backend.stats().failovers == 0

    def test_divergent_writer_is_fenced_not_left_serving(self):
        """A replica that rejects a write the others accepted is fenced.

        Memory stores any Python value; SQLite cannot bind a tuple.  After
        the mixed-acceptance write the SQLite replica has *missed* it and
        must be closed, never serving a stale read.
        """
        memory = MemoryBackend()
        sqlite = SQLiteBackend(check_same_thread=False)
        backend = ReplicatedBackend(children=[memory, sqlite])
        backend.create_table("t", 1, ("x",))
        backend.insert_many("t", [((1, 2),)])  # memory accepts, sqlite cannot
        stats = backend.stats()
        assert stats.fenced == 1
        assert stats.live_replicas == 1
        assert sqlite.closed
        # every read now comes from the replica that holds the write
        x = Variable("x")
        query = ConjunctiveQuery("q", (x,), (RelationalAtom("t", (x,)),))
        for _ in range(3):
            assert backend.execute(query) == [((1, 2),)]
        backend.close()

    def test_bad_write_on_first_replica_propagates_cleanly(self):
        """Nothing applied anywhere -> a typed error, no fencing."""
        with writable_backend("replicated") as backend:
            with pytest.raises(EvaluationError):
                backend.insert_many("r", [(1,)])  # wrong arity everywhere
            stats = backend.stats()
            assert stats.fenced == 0
            assert stats.live_replicas == 2

    def test_mixed_snapshot_children_are_detected(self, tmp_path):
        shared = SQLiteBackend(str(tmp_path / "mix.db"), check_same_thread=False)
        backend = ReplicatedBackend(children=[MemoryBackend(), shared])
        backend.create_table("r", 1, ("x",))
        assert backend.has_mixed_snapshot_children
        with pytest.raises(StorageError):
            ConnectionPool(backend, size=1, mutation_log=MutationLog())
        backend.close()

    def test_configuration_builds_replicated_over_sharded_thread_portable(self):
        """The service path (check_same_thread kwarg) must not leak stores."""
        configuration = small_xmark()
        configuration.shard_count = 2
        backend = configuration.create_backend(
            "replicated", replicas=2, child="sharded", check_same_thread=False
        )
        assert backend.replica_count == 2
        assert all(
            isinstance(replica, ShardedBackend) for replica in backend.replicas
        )
        backend.close()


# ----------------------------------------------------------------------
# Pool catch-up and the force-close leak fix
# ----------------------------------------------------------------------
class TestPoolMutationCatchup:
    def _pool(self, size=2):
        template = MemoryBackend()
        template.create_table("r", 2, ("a", "b"))
        template.insert_many("r", [(1, "x")])
        log = MutationLog()
        pool = ConnectionPool(template, size=size, mutation_log=log)
        return template, log, pool

    def test_checkout_replays_the_tail(self):
        template, log, pool = self._pool()
        changeset = ChangeSet.build(inserts={"r": [(2, "y")]})
        template.apply(changeset)
        log.append(changeset)
        with pool.connection() as backend:
            assert multiset(backend.rows("r")) == multiset([(1, "x"), (2, "y")])
        stats = pool.stats()
        assert stats.catchups == 1
        assert stats.entries_replayed == 1
        pool.close()
        template.close()

    def test_min_lsn_barrier_is_satisfied_after_sync(self):
        template, log, pool = self._pool(size=1)
        changeset = ChangeSet.build(inserts={"r": [(3, "z")]})
        template.apply(changeset)
        lsn = log.append(changeset)
        backend = pool.acquire(min_lsn=lsn)
        assert pool.connection_lsn(backend) == lsn
        pool.release(backend)
        pool.close()
        template.close()

    def test_log_compacts_once_every_clone_caught_up(self):
        template, log, pool = self._pool(size=2)
        changeset = ChangeSet.build(inserts={"r": [(2, "y")]})
        template.apply(changeset)
        log.append(changeset)
        first = pool.acquire()
        pool.release(first)
        assert len(log) == 1  # the idle clone still needs the entry
        second = pool.acquire()
        third = pool.acquire()  # now both clones have synced at checkout
        pool.release(second)
        pool.release(third)
        assert len(log) == 0
        pool.close()
        template.close()

    def test_construction_stamps_each_clone_before_it_is_taken(self):
        """Writes landing *between* clone() calls must still be replayed.

        Regression: the constructor used to stamp every clone with the
        log head observed *after* the clone loop, so a write racing the
        loop was credited to clones taken before it existed — they never
        replayed it and served stale rows while claiming the head LSN.
        """
        log = MutationLog()
        template = MemoryBackend()
        template.create_table("r", 2, ("a", "b"))
        template.insert_many("r", [(1, "x")])
        original_clone = template.clone
        writes = []

        def clone_then_write():
            clone = original_clone()
            # A writer lands a change after this clone was taken but
            # while the pool is still constructing its siblings.
            changeset = ChangeSet.build(
                inserts={"r": [(100 + len(writes), "raced")]}
            )
            template.apply(changeset)
            log.append(changeset)
            writes.append(changeset)
            return clone

        template.clone = clone_then_write
        pool = ConnectionPool(template, size=3, mutation_log=log)
        template.clone = original_clone
        assert len(writes) == 3
        expected = multiset(template.rows("r"))
        backends = [pool.acquire(min_lsn=log.lsn) for _ in range(3)]
        for backend in backends:
            assert multiset(backend.rows("r")) == expected
        for backend in backends:
            pool.release(backend)
        pool.close()
        template.close()

    def test_concurrent_writer_during_pool_construction(self):
        """No acknowledged write may be lost by a pool built under load."""
        log = MutationLog()
        template = MemoryBackend()
        template.create_table("r", 2, ("a", "b"))
        template.insert_many("r", [(0, "seed")])
        stop = threading.Event()

        def writer():
            i = 0
            while not stop.is_set():
                changeset = ChangeSet.build(inserts={"r": [(1000 + i, "c")]})
                template.apply(changeset)
                log.append(changeset)
                i += 1

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            pools = [
                ConnectionPool(template, size=2, mutation_log=log)
                for _ in range(5)
            ]
        finally:
            stop.set()
            thread.join()
        # Distinct keys, compared as sets: the pre-clone stamp is
        # deliberately conservative, so a write in flight during clone()
        # may be replayed onto a clone that already contains it — a
        # bounded duplicate, never a lost update.
        expected = {tuple(row) for row in template.rows("r")}
        for pool in pools:
            backend = pool.acquire(min_lsn=log.lsn)
            assert {tuple(row) for row in backend.rows("r")} == expected
            pool.release(backend)
            pool.close()
        template.close()

    def test_discarded_clone_replacement_is_stamped_conservatively(self):
        """A replacement clone's LSN is read before clone(), not after."""
        template = SQLiteBackend(check_same_thread=False)
        template.create_table("r", 2, ("a", "b"))
        template.insert_many("r", [(1, "x")])
        log = MutationLog()
        pool = ConnectionPool(template, size=1, mutation_log=log)
        backend = pool.acquire()
        # a log entry SQLite cannot apply poisons the checkin replay
        log.append(ChangeSet.build(inserts={"r": [((1, 2), "bad")]}))
        original_clone = template.clone

        def clone_then_write():
            clone = original_clone()
            changeset = ChangeSet.build(inserts={"r": [(7, "late")]})
            template.apply(changeset)
            log.append(changeset)
            return clone

        template.clone = clone_then_write
        # The failed replay discards the clone; a replacement is cloned
        # from the template — during which the "late" write lands.
        with pytest.raises(Exception):
            pool.release(backend)
        template.clone = original_clone
        # The replacement was stamped with the pre-clone LSN, so the late
        # write is replayed at this checkout instead of silently skipped.
        replacement = pool.acquire(min_lsn=log.lsn)
        assert multiset(replacement.rows("r")) == multiset(
            template.rows("r")
        )
        pool.release(replacement)
        pool.close()
        template.close()

    def test_file_backed_clones_skip_replay(self, tmp_path):
        template = SQLiteBackend(str(tmp_path / "data.db"))
        template.create_table("r", 2, ("a", "b"))
        template.insert_many("r", [(1, "x")])
        log = MutationLog()
        pool = ConnectionPool(template, size=1, mutation_log=log)
        changeset = ChangeSet.build(inserts={"r": [(2, "y")]})
        template.apply(changeset)
        log.append(changeset)
        with pool.connection() as backend:
            # shared file: the committed write is simply visible
            assert multiset(backend.rows("r")) == multiset([(1, "x"), (2, "y")])
        assert pool.stats().catchups == 0
        pool.close()
        template.close()


# ----------------------------------------------------------------------
# Differential oracle under interleaved queries and change sets
# ----------------------------------------------------------------------
def replicated_spec(configuration, replicas, child):
    if child == "sharded":
        return configuration.create_backend(
            "replicated", replicas=replicas, child="sharded"
        )
    return configuration.create_backend(
        "replicated", replicas=replicas, child=child
    )


@pytest.mark.parametrize("replicas", (2, 3))
@pytest.mark.parametrize("child", ("sqlite", "sharded"))
@pytest.mark.parametrize("seed", range(3))
class TestDifferentialUnderUpdates:
    def test_replicated_agrees_with_oracle_under_interleaving(
        self, query_generator, replicas, child, seed
    ):
        configuration = small_xmark()
        oracle = MarsExecutor(configuration, backend="memory")
        replicated = MarsExecutor(
            configuration,
            backend=replicated_spec(configuration, replicas, child),
        )
        try:
            generator = query_generator(oracle.backend, seed + 7000)
            updates = UpdateStreamGenerator.from_backend(
                oracle.backend, UPDATABLE_TABLES, seed=seed + 7000
            )
            for step in range(6):
                changeset = updates.next_changeset()
                oracle.backend.apply(changeset)
                replicated.backend.apply(changeset)
                for table in changeset.relations():
                    assert multiset(replicated.backend.rows(table)) == multiset(
                        updates.expected_rows(table)
                    ), f"state divergence on {table} at step {step}"
                for index in range(2):
                    query = generator.conjunctive(f"d{seed}_{step}_{index}")
                    assert multiset(replicated.backend.execute(query)) == multiset(
                        oracle.backend.execute(query)
                    ), f"set divergence seed={seed} step={step} query={query}"
                union = generator.union(f"du{seed}_{step}")
                assert multiset(
                    replicated.backend.execute_union(union)
                ) == multiset(oracle.backend.execute_union(union))
        finally:
            replicated.backend.close()
            oracle.close()


# ----------------------------------------------------------------------
# Service-level live updates
# ----------------------------------------------------------------------
class TestServiceLiveUpdates:
    def test_publish_sees_own_update_without_rebuild(self, mars_backend):
        configuration = small_xmark()
        with PublishingService(configuration, pool_size=2) as service:
            query = xmark.query_item_names()
            before = service.publish(query)
            victim = tuple(before[0])
            lsn = service.update(
                ChangeSet.build(
                    inserts={"itemName": [("item_live_1", "fresh_gadget")]},
                    deletes={"itemName": [victim]},
                )
            )
            assert lsn >= 1
            after = service.publish(query)
            assert ("item_live_1", "fresh_gadget") in {tuple(r) for r in after}
            assert victim not in {tuple(r) for r in after}
            stats = service.stats()
            assert stats.updates_applied == 1
            assert stats.last_write_lsn == lsn

    def test_empty_update_is_a_noop(self):
        configuration = small_xmark()
        with PublishingService(configuration, pool_size=1) as service:
            assert service.update(ChangeSet.build()) == 0
            assert service.stats().updates_applied == 0

    def test_drift_trigger_recollects_statistics_and_flushes_plans(self):
        configuration = small_xmark()
        with PublishingService(
            configuration, pool_size=1, drift_threshold=0.05
        ) as service:
            query = xmark.query_item_names()
            service.publish(query)
            assert len(service.plan_cache) >= 1
            rows = [(f"item_bulk_{i}", f"gadget_{i}") for i in range(40)]
            service.update(ChangeSet.build(inserts={"itemName": rows}))
            stats = service.stats()
            assert stats.statistics_refreshes >= 1
            # attach_statistics flushed every cached plan
            assert stats.cache.invalidations >= 1
            # and the service still serves (recompiles the plan)
            assert len(service.publish(query)) == len(rows) + 12

    def test_drift_can_be_disabled(self):
        configuration = small_xmark()
        with PublishingService(
            configuration, pool_size=1, drift_threshold=None
        ) as service:
            rows = [(f"item_bulk_{i}", f"g{i}") for i in range(60)]
            service.update(ChangeSet.build(inserts={"itemName": rows}))
            assert service.stats().statistics_refreshes == 0

    def test_sharded_update_routes_and_serves(self):
        configuration = small_xmark()
        configuration.backend = "sharded"
        configuration.shard_count = 3
        with PublishingService(configuration, pool_size=2) as service:
            query = xmark.query_item_names()
            before = {tuple(r) for r in service.publish(query)}
            service.update(
                ChangeSet.build(inserts={"itemName": [("item_sh_1", "routed")]})
            )
            after = {tuple(r) for r in service.publish(query)}
            assert after == before | {("item_sh_1", "routed")}
            # the new row lives on exactly one shard
            counts = service.executor.backend.fragment_cardinalities("itemName")
            assert sum(counts) == len(after)

    def test_killed_replica_fails_over_mid_publish(self):
        configuration = small_xmark()
        template = configuration.create_backend(
            "replicated", replicas=2, child="sqlite"
        )
        service = PublishingService(
            configuration, backend=template, pool_size=2
        )
        try:
            query = xmark.query_item_names()
            expected = multiset(service.publish(query))
            errors = []
            results = []
            barrier = threading.Barrier(4)

            def publisher():
                barrier.wait()
                try:
                    for _ in range(15):
                        results.append(multiset(service.publish(query)))
                except Exception as error:  # noqa: BLE001
                    errors.append(error)

            threads = [threading.Thread(target=publisher) for _ in range(3)]
            for thread in threads:
                thread.start()
            barrier.wait()
            # kill replica 0 everywhere: the template and every pooled clone
            for clone in list(service.pool._all):
                victim = clone.replicas[0]
                if not victim.closed:
                    victim.close()
            template.replicas[0].close()
            for thread in threads:
                thread.join()
            assert not errors, errors[:1]
            assert all(result == expected for result in results)
            survivors = sum(
                clone.stats().reads_per_replica[1]
                for clone in service.pool._all
            )
            assert survivors > 0
        finally:
            service.close(force=True)
            if not template.closed:
                template.close()


# ----------------------------------------------------------------------
# Rebalancing
# ----------------------------------------------------------------------
def sharded_fixture(shards=2):
    backend = ShardedBackend(
        shards=shards,
        children="memory",
        partition_keys={"orders": "customer"},
    )
    backend.create_table("orders", 3, ("customer", "item", "qty"))
    backend.create_table("cities", 2, ("city", "country"))
    orders = [(f"c{i % 17}", f"item{i % 5}", i % 7) for i in range(80)]
    cities = [(f"city{i}", "xy") for i in range(4)]
    backend.insert_many("orders", orders)
    backend.insert_many("cities", cities)
    return backend, orders, cities


def orders_query():
    c, i, q = Variable("c"), Variable("i"), Variable("q")
    return ConjunctiveQuery("all_orders", (c, i, q), (RelationalAtom("orders", (c, i, q)),))


class TestRebalancer:
    @pytest.mark.parametrize("new_shards", (1, 3, 5))
    def test_offline_split_and_merge_preserve_data(self, new_shards):
        backend, orders, cities = sharded_fixture(shards=2)
        expected = multiset(backend.execute(orders_query()))
        report = Rebalancer(backend, shards=new_shards).run()
        assert report.new_shard_count == new_shards
        assert backend.shard_count == new_shards
        assert backend.layout_version == 1
        assert multiset(backend.execute(orders_query())) == expected
        # every partitioned row sits on the shard its partitioner names
        spec = backend.partition_spec("orders")
        for shard, child in enumerate(backend.children):
            for row in child.rows("orders"):
                assert (
                    spec.partitioner.shard_of(row[spec.position], new_shards)
                    == shard
                )
            # broadcast tables are complete on every shard
            assert child.cardinality("cities") == len(cities)
        backend.close()

    def test_replay_skips_changes_already_in_the_snapshot(self):
        backend, orders, cities = sharded_fixture(shards=2)
        log = MutationLog()
        rebalancer = Rebalancer(backend, shards=3)
        rebalancer.stage()
        # orders is copied at LSN 0; then a write lands on the live layout
        rebalancer.copy_table("orders", snapshot_lsn=log.lsn)
        mid = ChangeSet.build(inserts={"orders": [("c_mid", "itemX", 1)]})
        backend.apply(mid)
        log.append(mid)
        # cities is copied after that write (snapshot already reflects it)
        rebalancer.copy_table("cities", snapshot_lsn=log.lsn)
        assert rebalancer.replay(log) == 1
        old_children = rebalancer.cutover()
        for child in old_children:
            child.close()
        rows = {tuple(row) for row in backend.rows("orders")}
        assert ("c_mid", "itemX", 1) in rows
        assert len(rows) == len({tuple(o) for o in orders}) + 1
        # the broadcast table was not double-applied anywhere
        for child in backend.children:
            assert child.cardinality("cities") == len(cities)
        backend.close()

    def test_cutover_without_copy_is_rejected(self):
        backend, _orders, _cities = sharded_fixture()
        rebalancer = Rebalancer(backend, shards=3)
        rebalancer.stage()
        with pytest.raises(StorageError):
            rebalancer.cutover()
        rebalancer.abort()
        backend.close()

    def test_rebalancer_requires_sharded(self):
        with pytest.raises(StorageError):
            Rebalancer(MemoryBackend(), shards=2)


class TestServiceRebalance:
    def test_rebalance_requires_sharded_deployment(self):
        configuration = small_xmark()
        configuration.backend = "memory"  # explicitly unsharded
        with PublishingService(configuration, pool_size=1) as service:
            with pytest.raises(StorageError):
                service.rebalance(shards=3)

    def test_rebalance_while_publishing_is_linearizable(self):
        """Reads during an online split observe a prefix of the write stream.

        One writer inserts sequence-numbered items; concurrent readers
        publish and must always see ``{0..k}`` for some ``k`` (snapshot =
        log prefix), never a gap; the final state equals the oracle.
        """
        configuration = small_xmark()
        configuration.backend = "sharded"
        configuration.shard_count = 2
        service = PublishingService(configuration, pool_size=2)
        try:
            query = xmark.query_item_names()
            base = {tuple(r) for r in service.publish(query)}
            stop = threading.Event()
            errors = []
            written = []

            def writer():
                index = 0
                while not stop.is_set() and index < 400:
                    try:
                        service.update(
                            ChangeSet.build(
                                inserts={
                                    "itemName": [(f"item_seq_{index}", f"n{index}")]
                                }
                            )
                        )
                        written.append(index)
                        index += 1
                    except Exception as error:  # noqa: BLE001
                        errors.append(error)
                        return

            def reader():
                while not stop.is_set():
                    try:
                        rows = {tuple(r) for r in service.publish(query)}
                    except Exception as error:  # noqa: BLE001
                        errors.append(error)
                        return
                    seen = sorted(
                        int(name.split("_")[-1])
                        for name, _value in rows
                        if name.startswith("item_seq_")
                    )
                    if seen != list(range(len(seen))):
                        errors.append(
                            AssertionError(f"non-prefix read: {seen}")
                        )
                        return
                    missing = base - rows
                    if missing:
                        errors.append(
                            AssertionError(f"base rows vanished: {missing}")
                        )
                        return

            threads = [threading.Thread(target=writer)] + [
                threading.Thread(target=reader) for _ in range(2)
            ]
            for thread in threads:
                thread.start()
            report = service.rebalance(shards=3)
            stop.set()
            for thread in threads:
                thread.join()
            assert not errors, errors[:1]
            assert report.new_shard_count == 3
            assert len(service.shard_pools) == 3
            assert service.stats().rebalances == 1
            # post-rebalance state equals the oracle
            final = {tuple(r) for r in service.publish(query)}
            expected = base | {
                (f"item_seq_{i}", f"n{i}") for i in written
            }
            assert final == expected
            # and further writes land on the new layout
            service.update(
                ChangeSet.build(inserts={"itemName": [("item_post", "x")]})
            )
            assert ("item_post", "x") in {
                tuple(r) for r in service.publish(query)
            }
        finally:
            service.close(force=True)
