"""Crash recovery and self-healing: the durable log and the repair loop.

Acceptance-critical coverage:

* kill-and-reopen: a :class:`DurableMutationLog` reopened from its
  directory serves every acknowledged append and keeps assigning LSNs
  where it left off;
* torn writes: truncating the last segment mid-record recovers the
  longest intact prefix (the torn record was never acknowledged) while
  corruption before the tail stays fatal;
* checkpoint-gated compaction: nothing is compacted before a checkpoint
  exists, and after checkpoint + compaction a restart still reconstructs
  the full acknowledged state (snapshot restore + tail replay);
* the service-level restart guarantee: a :class:`PublishingService`
  backed by a durable log is stopped, restarted from its log directory,
  and serves reads reflecting every acknowledged ``update()`` LSN;
* self-healing: killing one of K replicas under a live publish/update
  workload converges back to K live replicas with differentially
  identical contents, visible in the event log.
"""

import os
import threading

import pytest

from repro.errors import StorageError
from repro.replica import (
    ChangeSet,
    DurableMutationLog,
    MutationLog,
    RepairLoop,
    ReplicaRepairer,
    ReplicatedBackend,
)
from repro.serve import ConnectionPool, PublishingService
from repro.storage.backends import MemoryBackend
from repro.workloads import xmark

SEGMENT_SUFFIX = ".seg"


def multiset(rows):
    return sorted(map(repr, rows))


def small_xmark():
    return xmark.build_configuration(
        xmark.XMarkParameters(items_per_region=4, people=8, closed_auctions=12)
    )


def changeset(i):
    return ChangeSet.build(inserts={"r": [(i, f"row-{i}")]})


def segment_files(directory):
    return sorted(
        entry for entry in os.listdir(directory) if entry.endswith(SEGMENT_SUFFIX)
    )


def replay_backend(log, start=0):
    """A memory backend holding the log's state from *start* (plus snapshot)."""
    backend = MemoryBackend()
    backend.create_table("r", 2, ("a", "b"))
    snapshot = log.load_checkpoint()
    if snapshot is not None:
        from repro.replica import restore_snapshot

        start, tables = snapshot[0], snapshot[1]
        restore_snapshot(backend, tables)
    for entry in log.entries_since(start):
        backend.apply(entry.changeset)
    return backend


# ----------------------------------------------------------------------
# DurableMutationLog: append, reopen, recover
# ----------------------------------------------------------------------
class TestDurableLogRecovery:
    def test_reopen_recovers_every_acknowledged_append(self, tmp_path):
        log = DurableMutationLog(tmp_path, fsync="off")
        lsns = [log.append(changeset(i)) for i in range(20)]
        assert lsns == list(range(1, 21))
        log.close()

        reopened = DurableMutationLog(tmp_path, fsync="off")
        assert reopened.lsn == 20
        assert [entry.lsn for entry in reopened.entries_since(0)] == lsns
        assert [
            entry.changeset for entry in reopened.entries_since(0)
        ] == [changeset(i) for i in range(20)]
        # LSNs continue where the previous incarnation stopped.
        assert reopened.append(changeset(99)) == 21
        reopened.close()

    def test_recovery_spans_sealed_segments(self, tmp_path):
        log = DurableMutationLog(tmp_path, fsync="off", segment_max_bytes=128)
        for i in range(25):
            log.append(changeset(i))
        assert log.segment_count > 1
        log.close()
        assert len(segment_files(tmp_path)) > 1

        reopened = DurableMutationLog(tmp_path, fsync="off", segment_max_bytes=128)
        assert reopened.lsn == 25
        assert len(reopened.entries_since(0)) == 25
        reopened.close()

    def test_recovery_survives_missing_index_sidecar(self, tmp_path):
        log = DurableMutationLog(tmp_path, fsync="off", segment_max_bytes=128)
        for i in range(10):
            log.append(changeset(i))
        log.close()
        for entry in os.listdir(tmp_path):
            if entry.endswith(".idx"):
                os.unlink(tmp_path / entry)

        reopened = DurableMutationLog(tmp_path, fsync="off")
        assert [e.lsn for e in reopened.entries_since(0)] == list(range(1, 11))
        reopened.close()

    def test_fsync_always_is_the_validated_default(self, tmp_path):
        log = DurableMutationLog(tmp_path)
        assert log.fsync == "always"
        log.append(changeset(1))
        log.close()
        with pytest.raises(StorageError, match="fsync policy"):
            DurableMutationLog(tmp_path, fsync="sometimes")

    def test_closed_log_refuses_appends_but_recovers(self, tmp_path):
        log = DurableMutationLog(tmp_path, fsync="off")
        log.append(changeset(1))
        log.close()
        log.close()  # idempotent
        with pytest.raises(StorageError, match="closed"):
            log.append(changeset(2))
        reopened = DurableMutationLog(tmp_path, fsync="off")
        assert reopened.lsn == 1
        reopened.close()


# ----------------------------------------------------------------------
# Torn writes
# ----------------------------------------------------------------------
class TestTornWrites:
    def _truncate_tail(self, tmp_path, drop_bytes):
        last = segment_files(tmp_path)[-1]
        path = tmp_path / last
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.truncate(size - drop_bytes)

    def test_torn_tail_record_recovers_the_prefix(self, tmp_path):
        log = DurableMutationLog(tmp_path, fsync="off")
        for i in range(10):
            log.append(changeset(i))
        log.close()
        # Chop into the middle of the last record: the classic footprint
        # of a crash mid-append.
        self._truncate_tail(tmp_path, drop_bytes=7)

        recovered = DurableMutationLog(tmp_path, fsync="off")
        assert recovered.lsn == 9  # entry 10 was torn, 1..9 intact
        assert [e.lsn for e in recovered.entries_since(0)] == list(range(1, 10))
        assert recovered.truncated_records == 1
        # The log keeps assigning LSNs after the recovered prefix.
        assert recovered.append(changeset(42)) == 10
        assert recovered.entries_since(9)[0].changeset == changeset(42)
        recovered.close()

    def test_garbage_appended_to_tail_is_truncated(self, tmp_path):
        log = DurableMutationLog(tmp_path, fsync="off")
        for i in range(5):
            log.append(changeset(i))
        log.close()
        last = segment_files(tmp_path)[-1]
        with open(tmp_path / last, "ab") as handle:
            handle.write(b"\x00\x01partial garbage")

        recovered = DurableMutationLog(tmp_path, fsync="off")
        assert recovered.lsn == 5
        assert recovered.truncated_records == 1
        recovered.close()

    def test_corruption_before_the_tail_is_fatal(self, tmp_path):
        log = DurableMutationLog(tmp_path, fsync="off", segment_max_bytes=128)
        for i in range(25):
            log.append(changeset(i))
        assert log.segment_count > 2
        log.close()
        # Flip payload bytes in the middle of the FIRST (sealed) segment
        # and drop its sidecar so recovery has to scan it.
        first = segment_files(tmp_path)[0]
        with open(tmp_path / first, "r+b") as handle:
            handle.seek(20)
            handle.write(b"\xff\xff\xff\xff")
        sidecar = first[: -len(SEGMENT_SUFFIX)] + ".idx"
        os.unlink(tmp_path / sidecar)

        with pytest.raises(StorageError, match="corrupt before the tail"):
            DurableMutationLog(tmp_path, fsync="off")


# ----------------------------------------------------------------------
# Checkpoints and compaction
# ----------------------------------------------------------------------
class TestCheckpointCompaction:
    def test_compaction_is_a_noop_without_a_checkpoint(self, tmp_path):
        log = DurableMutationLog(tmp_path, fsync="off", segment_max_bytes=128)
        for i in range(25):
            log.append(changeset(i))
        sealed_before = len(segment_files(tmp_path))
        assert log.compact(log.lsn) == 0
        assert log.floor == 0
        assert len(segment_files(tmp_path)) == sealed_before
        log.close()

    def test_checkpoint_then_compact_then_restart(self, tmp_path):
        log = DurableMutationLog(tmp_path, fsync="off", segment_max_bytes=128)
        for i in range(25):
            log.append(changeset(i))
        state = replay_backend(log)
        checkpoint_lsn = log.write_checkpoint(state)
        assert checkpoint_lsn == 25
        dropped = log.compact(log.lsn)
        assert dropped > 0
        assert log.floor > 0
        # Acknowledged entries past the checkpoint keep accumulating.
        for i in range(25, 30):
            log.append(changeset(i))
        log.close()

        reopened = DurableMutationLog(tmp_path, fsync="off", segment_max_bytes=128)
        assert reopened.lsn == 30
        recovered = replay_backend(reopened)
        expected = MemoryBackend()
        expected.create_table("r", 2, ("a", "b"))
        for i in range(30):
            expected.apply(changeset(i))
        assert multiset(recovered.rows("r")) == multiset(expected.rows("r"))
        reopened.close()

    def test_reader_below_the_floor_is_rejected(self, tmp_path):
        log = DurableMutationLog(tmp_path, fsync="off", segment_max_bytes=128)
        for i in range(25):
            log.append(changeset(i))
        log.write_checkpoint(replay_backend(log))
        log.compact(log.lsn)
        with pytest.raises(StorageError, match="compacted"):
            log.entries_since(0)
        log.close()

    def test_missing_entries_below_checkpoint_are_detected(self, tmp_path):
        log = DurableMutationLog(tmp_path, fsync="off", segment_max_bytes=128)
        for i in range(25):
            log.append(changeset(i))
        log.close()
        # Delete the first sealed segment wholesale: acknowledged history
        # is gone and no checkpoint covers it.
        first = segment_files(tmp_path)[0]
        os.unlink(tmp_path / first)
        with pytest.raises(StorageError, match="gap|covers only"):
            DurableMutationLog(tmp_path, fsync="off")


# ----------------------------------------------------------------------
# The pool under compaction: stale clones rebuild instead of failing
# ----------------------------------------------------------------------
class TestStaleCloneRebuild:
    def test_checkout_rebuilds_a_clone_below_the_floor(self):
        template = MemoryBackend()
        template.create_table("r", 2, ("a", "b"))
        template.insert_many("r", [(1, "x")])
        log = MutationLog()
        pool = ConnectionPool(template, size=2, mutation_log=log)
        # Advance the template and compact past the idle clones' LSN 0:
        # the in-memory log compacts unconditionally, simulating a
        # checkpoint outrunning a clone.
        change = ChangeSet.build(inserts={"r": [(2, "y")]})
        template.apply(change)
        log.append(change)
        log.compact(log.lsn)
        assert log.floor == 1
        # Before the fix this raised StorageError forever; now the stale
        # clone is rebuilt from the (current) template.  Hold both
        # connections at once so each of the two idle clones gets synced.
        with pool.connection() as first, pool.connection() as second:
            assert multiset(first.rows("r")) == multiset([(1, "x"), (2, "y")])
            assert multiset(second.rows("r")) == multiset([(1, "x"), (2, "y")])
        assert pool.stats().stale_rebuilds == 2
        pool.close()
        template.close()

    def test_rebuilt_clone_satisfies_the_lsn_barrier(self):
        template = MemoryBackend()
        template.create_table("r", 2, ("a", "b"))
        log = MutationLog()
        pool = ConnectionPool(template, size=1, mutation_log=log)
        change = ChangeSet.build(inserts={"r": [(1, "x")]})
        template.apply(change)
        lsn = log.append(change)
        log.compact(lsn)
        backend = pool.acquire(min_lsn=lsn)
        assert pool.connection_lsn(backend) >= lsn
        pool.release(backend)
        assert pool.stats().stale_rebuilds == 1
        pool.close()
        template.close()


# ----------------------------------------------------------------------
# Service-level restart: the acceptance guarantee
# ----------------------------------------------------------------------
class TestServiceRestart:
    def _service(self, log_dir, **kwargs):
        kwargs.setdefault("backend", "replicated")
        kwargs.setdefault("pool_size", 2)
        kwargs.setdefault("log_fsync", "off")
        return PublishingService(small_xmark(), log_dir=str(log_dir), **kwargs)

    def test_restart_serves_every_acknowledged_update(self, tmp_path):
        query = xmark.query_item_names()
        service = self._service(tmp_path / "log")
        try:
            acknowledged = []
            for i in range(5):
                lsn = service.update(
                    ChangeSet.build(inserts={"itemName": [(f"it-{i}", f"n{i}")]})
                )
                acknowledged.append(lsn)
            assert acknowledged == [1, 2, 3, 4, 5]
            expected = multiset(service.publish(query))
        finally:
            service.close()

        restarted = self._service(tmp_path / "log")
        try:
            assert restarted.stats().last_write_lsn == 5
            assert multiset(restarted.publish(query)) == expected
            recovered = restarted.events.events("log.recovered")
            assert recovered and recovered[0].details["entries"] == 5
            # The write path continues at the next LSN.
            assert restarted.update(
                ChangeSet.build(inserts={"itemName": [("it-9", "n9")]})
            ) == 6
        finally:
            restarted.close()

    def test_restart_after_checkpoint_and_compaction(self, tmp_path):
        query = xmark.query_item_names()
        service = self._service(tmp_path / "log", log_segment_bytes=256)
        try:
            for i in range(8):
                service.update(
                    ChangeSet.build(inserts={"itemName": [(f"ck-{i}", f"n{i}")]})
                )
            checkpoint_lsn = service.checkpoint()
            assert checkpoint_lsn == 8
            # Writes after the checkpoint land in the tail the restart
            # replays on top of the snapshot.
            service.update(
                ChangeSet.build(inserts={"itemName": [("ck-post", "np")]})
            )
            expected = multiset(service.publish(query))
            assert service.events.count("log.checkpoint") == 1
        finally:
            service.close()

        restarted = self._service(tmp_path / "log", log_segment_bytes=256)
        try:
            assert multiset(restarted.publish(query)) == expected
            assert restarted.stats().last_write_lsn == 9
        finally:
            restarted.close()

    def test_sharded_deployment_restarts_per_shard(self, tmp_path):
        query = xmark.query_item_names()
        configuration = small_xmark()
        configuration.shard_count = 3
        service = PublishingService(
            configuration,
            backend="sharded",
            pool_size=2,
            log_dir=str(tmp_path / "log"),
            log_fsync="off",
        )
        try:
            service.update(
                ChangeSet.build(inserts={"itemName": [("sh-1", "n1"), ("sh-2", "n2")]})
            )
            expected = multiset(service.publish(query))
        finally:
            service.close()

        configuration = small_xmark()
        configuration.shard_count = 3
        restarted = PublishingService(
            configuration,
            backend="sharded",
            pool_size=2,
            log_dir=str(tmp_path / "log"),
            log_fsync="off",
        )
        try:
            assert multiset(restarted.publish(query)) == expected
        finally:
            restarted.close()

    def test_durability_metrics_and_stats_are_exported(self, tmp_path):
        service = self._service(tmp_path / "log")
        try:
            service.update(
                ChangeSet.build(inserts={"itemName": [("m-1", "n1")]})
            )
            stats = service.stats()
            assert stats.log_segments >= 1
            assert stats.log_size_bytes > 0
            assert stats.events_dropped == 0
            snapshot = stats.snapshot()
            assert snapshot["log_segments"] == stats.log_segments
            assert snapshot["pool"]["stale_rebuilds"] == 0
            text = service.metrics()
            assert "mars_log_segments" in text
            assert "mars_log_size_bytes" in text
            assert "mars_replica_repairs_total 0" in text
            assert "mars_events_dropped_total 0" in text
        finally:
            service.close()

    def test_mismatched_layout_is_rejected(self, tmp_path):
        configuration = small_xmark()
        configuration.shard_count = 3
        service = PublishingService(
            configuration,
            backend="sharded",
            log_dir=str(tmp_path / "log"),
            log_fsync="off",
        )
        service.close()
        with pytest.raises(StorageError, match="different deployment layout"):
            PublishingService(
                small_xmark(),
                backend="replicated",
                log_dir=str(tmp_path / "log"),
                log_fsync="off",
            )

    def test_rebalance_is_refused_on_durable_logs(self, tmp_path):
        configuration = small_xmark()
        configuration.shard_count = 2
        service = PublishingService(
            configuration,
            backend="sharded",
            log_dir=str(tmp_path / "log"),
            log_fsync="off",
        )
        try:
            with pytest.raises(StorageError, match="durable log"):
                service.rebalance(shards=3)
        finally:
            service.close()


# ----------------------------------------------------------------------
# Self-healing: repair back to K replicas
# ----------------------------------------------------------------------
class TestReplicaRepair:
    def test_repairer_restores_k_with_identical_contents(self):
        backend = ReplicatedBackend(replicas=3, child="memory")
        backend.create_table("r", 2, ("a", "b"))
        backend.insert_many("r", [(1, "x"), (2, "y")])
        log = MutationLog()
        # Kill one replica, then keep writing: the survivors advance.
        backend.replicas[1].close()
        change = ChangeSet.build(inserts={"r": [(3, "z")]})
        backend.apply(change)
        log.append(change)
        repairer = ReplicaRepairer(backend)
        assert repairer.dead_replicas() == (1,)
        report = repairer.repair_all(log=log)
        assert report.repaired == (1,)
        stats = backend.stats()
        assert stats.live_replicas == 3
        assert stats.repaired == 1
        reference = multiset(backend.replicas[0].rows("r"))
        for replica in backend.replicas:
            assert multiset(replica.rows("r")) == reference
        backend.close()

    def test_adopting_over_a_live_replica_is_refused(self):
        backend = ReplicatedBackend(replicas=2, child="memory")
        backend.create_table("r", 1)
        with pytest.raises(StorageError, match="still live"):
            backend.adopt_replica(0, MemoryBackend())
        backend.close()

    def test_repair_without_live_source_raises(self):
        backend = ReplicatedBackend(replicas=2, child="memory")
        backend.create_table("r", 1)
        for replica in backend.replicas:
            replica.close()
        repairer = ReplicaRepairer(backend)
        with pytest.raises(StorageError, match="no live replica"):
            repairer.repair(0, log=MutationLog())
        backend.close()

    def test_service_repairs_killed_replica_under_live_workload(self, tmp_path):
        query = xmark.query_item_names()
        service = PublishingService(
            small_xmark(),
            backend="replicated",
            pool_size=2,
            log_dir=str(tmp_path / "log"),
            log_fsync="off",
        )
        try:
            template = service.executor.backend
            assert template.stats().live_replicas == template.replica_count
            baseline = {tuple(r) for r in service.publish(query)}

            stop = threading.Event()
            errors = []

            def workload():
                i = 0
                while not stop.is_set():
                    try:
                        service.update(
                            ChangeSet.build(
                                inserts={"itemName": [(f"live-{i}", "w")]}
                            )
                        )
                        service.publish(query)
                    except Exception as error:  # pragma: no cover
                        errors.append(error)
                        return
                    i += 1

            thread = threading.Thread(target=workload)
            thread.start()
            try:
                # Kill a replica mid-workload; a write will fence it if the
                # direct close has not already taken it out.
                template.replicas[0].close()
                reports = service.repair_replicas()
            finally:
                stop.set()
                thread.join()
            assert not errors
            assert sum(len(r.repaired) for r in reports) == 1
            stats = template.stats()
            assert stats.live_replicas == template.replica_count
            # Differential check: every replica holds the same rows, and
            # they include every acknowledged write.
            reference = multiset(template.replicas[0].rows("itemName"))
            for replica in template.replicas:
                assert multiset(replica.rows("itemName")) == reference
            after = {tuple(r) for r in service.publish(query)}
            assert baseline <= after
            # The recovery is visible in the event log, LSN-stamped.
            repaired = service.events.events("replica.repaired")
            assert repaired and repaired[-1].lsn is not None
            assert service.stats().replica_repairs == 1
        finally:
            service.close()

    def test_auto_repair_loop_heals_without_an_operator(self, tmp_path):
        service = PublishingService(
            small_xmark(),
            backend="replicated",
            pool_size=2,
            log_dir=str(tmp_path / "log"),
            log_fsync="off",
            auto_repair_interval=0.05,
        )
        try:
            template = service.executor.backend
            template.replicas[0].close()
            deadline = threading.Event()
            for _ in range(100):
                if template.stats().live_replicas == template.replica_count:
                    break
                deadline.wait(0.05)
            stats = template.stats()
            assert stats.live_replicas == template.replica_count
            assert stats.repaired == 1
        finally:
            service.close()
        assert service._repair_loop is not None
        assert not service._repair_loop.running

    def test_repair_loop_survives_a_failing_check(self):
        calls = []

        def check():
            calls.append(1)
            raise RuntimeError("transient")

        loop = RepairLoop(check, interval=0.01)
        loop.start()
        deadline = threading.Event()
        for _ in range(100):
            if loop.errors >= 2:
                break
            deadline.wait(0.01)
        loop.stop()
        assert loop.errors >= 2
        assert len(calls) >= 2
