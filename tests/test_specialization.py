"""Unit tests for schema specialization (paper section 5)."""

import pytest

from repro.compile import GrexCompiler, GrexSchema
from repro.logical import RelationalAtom, Variable
from repro.specialize import (
    SpecializationField,
    SpecializationMapping,
    Specializer,
    derive_specializations,
    derive_specializations_from_instance,
    expand_specialized_atoms,
    materialize_specialization,
)
from repro.xbind import PathAtom, XBindQuery
from repro.xmlmodel import DocumentType, Occurrence, XMLDocument, XMLNode


def author_document() -> XMLDocument:
    """The paper's Figure 6 structure: author with name/{first,last}, address/{...}."""
    root = XMLNode("authors")
    for first, last, city in [("Alin", "Deutsch", "san diego"), ("Val", "Tannen", "philly")]:
        author = root.add("author")
        name = author.add("name")
        name.add("first", first)
        name.add("last", last)
        address = author.add("address")
        address.add("street", "main st")
        address.add("city", city)
        address.add("state", "xx")
        address.add("zip", "00000")
    return XMLDocument("authors.xml", root)


def author_mapping() -> SpecializationMapping:
    return SpecializationMapping(
        "Author",
        "authors.xml",
        "author",
        [
            SpecializationField("first", ("name", "first")),
            SpecializationField("last", ("name", "last")),
            SpecializationField("street", ("address", "street")),
            SpecializationField("city", ("address", "city")),
            SpecializationField("state", ("address", "state")),
            SpecializationField("zip", ("address", "zip")),
        ],
    )


class TestMappings:
    def test_attributes_and_arity(self):
        mapping = author_mapping()
        assert mapping.arity == 8
        assert mapping.attributes[:2] == ("id", "pid")
        assert mapping.field_index("city") == 3

    def test_duplicate_fields_rejected(self):
        with pytest.raises(Exception):
            SpecializationMapping(
                "M", "d.xml", "e", [SpecializationField("a", ("x",)), SpecializationField("a", ("y",))]
            )


class TestInlining:
    def test_derive_from_instance_finds_author_pattern(self):
        mappings = derive_specializations_from_instance(author_document())
        by_tag = {m.element_tag: m for m in mappings}
        assert "author" in by_tag
        author = by_tag["author"]
        field_paths = {field.path for field in author.fields}
        assert ("name", "last") in field_paths
        assert ("address", "city") in field_paths

    def test_minimum_fields_threshold(self):
        document_type = DocumentType("r")
        document_type.declare("r", {"leaf": Occurrence.ONE})
        document_type.declare("leaf", has_text=True)
        assert derive_specializations(document_type, "d.xml", minimum_fields=2) == []
        assert len(derive_specializations(document_type, "d.xml", minimum_fields=1)) == 1

    def test_repeated_children_are_not_inlined(self):
        document_type = DocumentType("r")
        document_type.declare("r", {"item": Occurrence.MANY, "a": Occurrence.ONE, "b": Occurrence.ONE})
        document_type.declare("item", has_text=True)
        document_type.declare("a", has_text=True)
        document_type.declare("b", has_text=True)
        (mapping,) = derive_specializations(document_type, "d.xml")
        assert {f.path for f in mapping.fields} == {("a",), ("b",)}


class TestSpecializer:
    def _compiled_paper_query(self):
        """The paper's section 5 query Xb over the authors document."""
        schema = GrexSchema("authors.xml")
        compiler = GrexCompiler({"authors.xml": schema})
        author, last, city = Variable("id"), Variable("l"), Variable("c")
        query = XBindQuery(
            "Xb",
            (last, city),
            (
                PathAtom("//author", author),
                PathAtom("./name/last/text()", last, source=author),
                PathAtom("./address/city/text()", city, source=author),
            ),
        )
        return compiler.compile_xbind(query), schema

    def test_query_specialization_shrinks_atom_count(self):
        compiled, _ = self._compiled_paper_query()
        specializer = Specializer([author_mapping()])
        specialized = specializer.specialize_query(compiled)
        assert len(specialized.body) < len(compiled.body)
        assert any(a.relation == "Author" for a in specialized.relational_body)
        # the navigation that was folded into the Author atom is gone
        assert not any(
            a.relation.startswith("child__") for a in specialized.relational_body
        )

    def test_specialization_keeps_head(self):
        compiled, _ = self._compiled_paper_query()
        specialized = Specializer([author_mapping()]).specialize_query(compiled)
        assert specialized.head == compiled.head

    def test_dependency_specialization(self):
        """Constraint (12) of the paper shrinks to the Author-based (13)."""
        compiled, _ = self._compiled_paper_query()
        from repro.logical import tgd

        view_atom = RelationalAtom("V", (Variable("l"), Variable("c")))
        constraint = tgd("cV", list(compiled.body), [view_atom])
        specializer = Specializer([author_mapping()])
        specialized = specializer.specialize_dependency(constraint)
        assert len(specialized.premise) < len(constraint.premise)
        assert any(a.relation == "Author" for a in specialized.premise)

    def test_unmatched_patterns_left_untouched(self):
        schema = GrexSchema("other.xml")
        compiler = GrexCompiler({"other.xml": schema})
        p, c = Variable("p"), Variable("c")
        query = compiler.compile_xbind(
            XBindQuery(
                "X",
                (c,),
                (
                    PathAtom("//publisher", p),
                    PathAtom("./address/city/text()", c, source=p),
                ),
            )
        )
        specialized = Specializer([author_mapping()]).specialize_query(query)
        assert specialized.body == query.body

    def test_expand_specialized_atoms_roundtrip(self):
        compiled, schema = self._compiled_paper_query()
        mapping = author_mapping()
        specialized = Specializer([mapping]).specialize_query(compiled)
        expanded = expand_specialized_atoms(specialized, [mapping])
        assert not any(a.relation == "Author" for a in expanded.relational_body)
        relations = {a.relation.split("__")[0] for a in expanded.relational_body}
        assert {"child", "tag", "text"} <= relations


class TestMaterialization:
    def test_materialize_rows(self):
        document = author_document()
        rows = materialize_specialization(author_mapping(), document)
        assert len(rows) == 2
        last_names = {row[3] for row in rows}
        assert last_names == {"Deutsch", "Tannen"}
        # ids are node identities of author elements, pids of their parent
        assert all(row[0].startswith("authors.xml#") for row in rows)

    def test_incomplete_elements_are_skipped(self):
        document = author_document()
        # remove the address of the first author: that author is not regular
        first_author = document.find_all("author")[0]
        first_author.children = [c for c in first_author.children if c.tag != "address"]
        rows = materialize_specialization(author_mapping(), document)
        assert len(rows) == 1
