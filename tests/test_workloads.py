"""Unit tests for the workload generators themselves."""

import pytest

from repro.workloads import SyntheticDataGenerator, medical, star, xmark
from repro.workloads.star import StarParameters
from repro.workloads.xmark import XMarkParameters


class TestDataGenerator:
    def test_determinism(self):
        a, b = SyntheticDataGenerator(42), SyntheticDataGenerator(42)
        assert [a.integer(0, 100) for _ in range(5)] == [b.integer(0, 100) for _ in range(5)]
        assert a.token("t") == b.token("t")

    def test_words_and_sample(self):
        generator = SyntheticDataGenerator(1)
        assert len(generator.words(4).split()) == 4
        assert len(generator.sample([1, 2, 3], 5)) == 3


class TestStarWorkload:
    def test_document_shape(self):
        parameters = StarParameters(corners=3, hub_count=5, corner_size=4)
        document = star.build_star_document(parameters)
        assert len(document.find_all("R")) == 5
        assert len(document.find_all("S1")) == 4
        assert len(document.find_all("S3")) == 4
        # every hub has a key and one A per corner
        hub = document.find_all("R")[0]
        assert len(hub.child_elements("K")) == 1
        assert len(hub.child_elements("A2")) == 1

    def test_configuration_contents(self):
        parameters = StarParameters(corners=4)
        configuration = star.build_configuration(parameters)
        names = set(configuration.relational_schema.relation_names)
        assert "R_store" in names
        assert "S4_store" in names
        assert "V3" in names and "V4" not in names  # NV = NC - 1
        assert len(configuration.xics) == 1 + 4  # key + one FK per corner

    def test_views_only_configuration(self):
        parameters = StarParameters(corners=3, include_base_storage=False)
        configuration = star.build_configuration(parameters)
        names = set(configuration.relational_schema.relation_names)
        assert "R_store" not in names
        assert {"V1", "V2"} <= names

    def test_client_query_shape(self):
        parameters = StarParameters(corners=5)
        query = star.client_query(parameters)
        assert len(query.head) == 6  # K plus one B per corner
        assert len(query.path_atoms) == 2 + 4 * 5

    def test_foreign_keys_hold_in_generated_instance(self):
        parameters = StarParameters(corners=3, hub_count=10, corner_size=5)
        document = star.build_star_document(parameters)
        corner_values = {
            i: {s.child_elements("A")[0].text for s in document.find_all(f"S{i}")}
            for i in range(1, 4)
        }
        for hub in document.find_all("R"):
            for i in range(1, 4):
                value = hub.child_elements(f"A{i}")[0].text
                assert value in corner_values[i]


class TestXMarkWorkload:
    def test_document_shape(self):
        parameters = XMarkParameters(items_per_region=3, people=4, closed_auctions=5)
        document = xmark.build_auction_document(parameters)
        assert len(document.find_all("item")) == 3 * len(xmark.REGIONS)
        assert len(document.find_all("person")) == 4
        assert len(document.find_all("closed_auction")) == 5
        # auction references point at existing items and people
        item_ids = {n.attributes["id"] for n in document.find_all("item")}
        for auction in document.find_all("closed_auction"):
            assert auction.child_elements("itemref")[0].text in item_ids

    def test_configuration_declares_views_and_constraints(self):
        configuration = xmark.build_configuration(with_instance=False)
        names = set(configuration.relational_schema.relation_names)
        assert {"itemName", "itemCategory", "personDirectory", "auctionPrice"} <= names
        xic_names = {x.name for x in configuration.xics}
        assert "key_item_id" in xic_names and "exists_person_id" in xic_names

    def test_query_suite_is_well_formed(self):
        for query in xmark.query_suite():
            assert query.is_safe()
            assert query.path_atoms


class TestMedicalWorkload:
    def test_catalog_document(self):
        document = medical.build_catalog_document()
        assert len(document.find_all("drug")) == len(medical.DEFAULT_CATALOG)

    def test_configuration_contents(self):
        configuration = medical.build_configuration()
        assert "patientDiag" in configuration.relational_schema
        assert "drugPrice" in configuration.relational_schema
        assert "case.xml" in configuration.public_documents
        assert "catalog.xml" in configuration.proprietary_documents

    def test_cache_variant(self):
        configuration = medical.build_configuration(include_cache=True)
        assert "cache.xml" in configuration.proprietary_documents
        assert "cache.xml" not in configuration.public_documents

    def test_client_queries_safe(self):
        assert medical.client_query().is_safe()
        assert medical.drug_usage_query().is_safe()
