"""The persistent plan store: durability, equality, invalidation, damage.

Runs on whatever backend ``MARS_BACKEND`` selects, so CI's engine matrix
(memory / sqlite / sharded / replicated) exercises every combination of
canonical round-trip and live execution:

* decoded canonical queries compute exactly the rows the originals do,
  on randomized conjunctive queries over the backend's actual data;
* a restarted service pointed at the same plan directory serves warm
  queries with **zero** C&B engine entries and identical rows;
* a view/constraint edit makes every old artifact unreachable (and
  pruned) — a stale plan is never served;
* torn bytes, wrong identities and undecodable bodies are quarantined
  and degrade to a recompile, never to an error or a wrong plan.
"""

import json
import os

import pytest

from repro.core.system import MarsSystem
from repro.errors import StorageError
from repro.plan import (
    ARTIFACT_FORMAT,
    PlanStore,
    canonical_query,
    plan_identity,
    query_from_canonical,
    reformulation_from_canonical,
    stable_dumps,
    stable_loads,
)
from repro.serve import PublishingService
from repro.workloads import medical


@pytest.fixture
def store(tmp_path):
    return PlanStore(tmp_path / "plans")


def _rows(backend, query):
    return sorted(backend.execute(query, distinct=True))


class TestCanonicalRoundTripExecution:
    def test_random_queries_execute_identically(self, query_generator):
        executor = MarsSystem(medical.build_configuration()).executor()
        try:
            backend = executor.backend
            generator = query_generator(backend, seed=2024, max_atoms=3)
            for index in range(25):
                query = generator.conjunctive(f"rt{index}")
                document = stable_loads(stable_dumps(canonical_query(query)))
                rebuilt = query_from_canonical(document)
                assert _rows(backend, rebuilt) == _rows(backend, query), (
                    f"round-trip changed the answer of {query}"
                )
        finally:
            executor.close()

    def test_negative_result_round_trips(self):
        document = {
            "format": ARTIFACT_FORMAT,
            "query": {"name": "Nope", "head": [["v", 0]],
                      "body": [["rel", "r", [["v", 0]]]]},
            "compiled": {"name": "Nope", "head": [["v", 0]],
                         "body": [["rel", "r", [["v", 0]]]]},
            "universal_plan": {"name": "Nope", "head": [["v", 0]],
                               "body": [["rel", "r", [["v", 0]]]]},
            "initial": None,
            "minimal": [],
            "best": None,
            "chase_steps": 7,
            "subqueries_inspected": 0,
        }
        rebuilt = reformulation_from_canonical(document)
        assert rebuilt.best is None
        assert not rebuilt.found
        assert rebuilt.chase_steps == 7


class TestWarmRestart:
    def test_restart_serves_with_zero_engine_entries(self, tmp_path):
        plan_dir = tmp_path / "plans"
        query = medical.client_query()
        with PublishingService(
            medical.build_configuration(), plan_dir=str(plan_dir)
        ) as cold:
            cold_rows = sorted(cold.publish(query))
            assert cold.system.engine_invocations == 1
            assert cold.stats().plan_store.writes == 1
        with PublishingService(
            medical.build_configuration(), plan_dir=str(plan_dir)
        ) as warm:
            warm_rows = sorted(warm.publish(medical.client_query()))
            again = sorted(warm.publish(medical.client_query()))
            stats = warm.stats()
            assert warm.system.engine_invocations == 0
            assert stats.reformulations_computed == 0
            assert stats.plans_loaded == 1
            assert stats.plan_store.hits == 1
            kinds = [event.kind for event in warm.events.tail(100, None)]
            assert "plan_store.loaded" in kinds
        assert warm_rows == cold_rows == again

    def test_loaded_plan_is_ranked_and_rendered(self, tmp_path):
        plan_dir = tmp_path / "plans"
        query = medical.client_query()
        with PublishingService(
            medical.build_configuration(), plan_dir=str(plan_dir)
        ) as cold:
            cold.publish(query)
            fresh = cold.reformulate(query)
        with PublishingService(
            medical.build_configuration(), plan_dir=str(plan_dir)
        ) as warm:
            loaded = warm.reformulate(medical.client_query())
            assert loaded.cost_estimate is not None
            assert loaded.sql == fresh.sql
            assert loaded.best_cost == pytest.approx(fresh.best_cost)
            assert [name for name, _ in loaded.candidate_costs] == [
                name for name, _ in fresh.candidate_costs
            ]

    def test_mars_plan_dir_environment_wires_a_store(self, tmp_path, monkeypatch):
        monkeypatch.setenv("MARS_PLAN_DIR", str(tmp_path / "env-plans"))
        with PublishingService(medical.build_configuration()) as service:
            service.publish(medical.client_query())
            assert service.plan_store is not None
            assert len(service.plan_store) == 1
        assert (tmp_path / "env-plans").is_dir()


class TestInvalidation:
    def test_configuration_edit_never_serves_the_old_plan(self, tmp_path):
        configuration = medical.build_configuration()
        store = PlanStore(tmp_path / "plans")
        system = MarsSystem(configuration, plan_store=store)
        system.reformulate(medical.client_query())
        old_identities = store.identities()
        assert len(old_identities) == 1
        # A constraint edit bumps the version and changes the compiled
        # dependency set: every old identity stops being addressable.
        configuration.add_key("drugPrice", ["drug"])
        system.reformulate(medical.client_query())
        assert system.engine_invocations == 2
        new_identities = store.identities()
        assert new_identities != old_identities
        # The stale artifact was pruned during recompilation.
        assert len(new_identities) == 1
        assert store.stats().invalidations >= 1

    def test_minimize_mode_is_part_of_the_identity(self, tmp_path):
        store = PlanStore(tmp_path / "plans")
        system = MarsSystem(medical.build_configuration(), plan_store=store)
        system.reformulate(medical.client_query(), minimize=True)
        system.reformulate(medical.client_query(), minimize=False)
        assert system.engine_invocations == 2
        assert len(store) == 2

    def test_format_version_mismatch_is_stale_not_corrupt(self, store):
        identity = "ab" * 32
        artifact = {"format": ARTIFACT_FORMAT + 1, "identity": identity}
        path = store.directory / f"{identity}.json"
        path.write_text(stable_dumps(artifact), encoding="ascii")
        assert store.load(identity) is None
        assert not path.exists()
        stats = store.stats()
        assert stats.invalidations == 1
        assert stats.corrupt == 0


class TestDamage:
    def test_torn_bytes_are_quarantined(self, tmp_path):
        plan_dir = tmp_path / "plans"
        query = medical.client_query()
        with PublishingService(
            medical.build_configuration(), plan_dir=str(plan_dir)
        ) as cold:
            cold_rows = sorted(cold.publish(query))
            [identity] = cold.plan_store.identities()
        artifact_path = plan_dir / f"{identity}.json"
        artifact_path.write_text('{"truncated', encoding="ascii")
        with PublishingService(
            medical.build_configuration(), plan_dir=str(plan_dir)
        ) as warm:
            rows = sorted(warm.publish(medical.client_query()))
            stats = warm.stats()
            # Damage degrades to a recompile, never a wrong answer.
            assert rows == cold_rows
            assert warm.system.engine_invocations == 1
            assert stats.plan_store.corrupt == 1
            assert stats.plan_store.writes == 1
            kinds = [event.kind for event in warm.events.tail(100, None)]
            assert "plan_store.corrupt" in kinds
        assert artifact_path.with_suffix(".corrupt").exists()
        # The recompile overwrote the artifact; a third incarnation hits.
        with PublishingService(
            medical.build_configuration(), plan_dir=str(plan_dir)
        ) as third:
            assert sorted(third.publish(medical.client_query())) == cold_rows
            assert third.system.engine_invocations == 0

    def test_wrong_embedded_identity_is_quarantined(self, store):
        identity = "cd" * 32
        other = "ef" * 32
        assert store.save(identity, {"format": ARTIFACT_FORMAT})
        os.replace(
            store.directory / f"{identity}.json",
            store.directory / f"{other}.json",
        )
        assert store.load(other) is None
        assert store.stats().corrupt == 1

    def test_undecodable_body_is_quarantined_by_the_system(self, tmp_path):
        configuration = medical.build_configuration()
        store = PlanStore(tmp_path / "plans")
        system = MarsSystem(configuration, plan_store=store)
        query = medical.client_query()
        system.reformulate(query)
        [identity] = store.identities()
        artifact = stable_loads(
            (store.directory / f"{identity}.json").read_text(encoding="ascii")
        )
        artifact["minimal"] = [{"bogus": True}]
        artifact["best"] = {"bogus": True}
        store.save(identity, artifact)
        fresh_system = MarsSystem(configuration, plan_store=store)
        reformulation = fresh_system.reformulate(medical.client_query())
        assert fresh_system.engine_invocations == 1
        assert reformulation.found
        assert store.stats().corrupt == 1

    def test_malformed_identity_is_rejected(self, store):
        with pytest.raises(StorageError):
            store.load("../escape")
        with pytest.raises(StorageError):
            store.save("UPPER", {})


class TestStoreHygiene:
    def test_writes_leave_no_tmp_stragglers(self, tmp_path):
        plan_dir = tmp_path / "plans"
        with PublishingService(
            medical.build_configuration(), plan_dir=str(plan_dir)
        ) as service:
            service.publish(medical.client_query())
            service.publish(medical.drug_usage_query())
        leftovers = [p.name for p in plan_dir.iterdir()
                     if not p.name.endswith(".json")]
        assert leftovers == []
        assert len(list(plan_dir.glob("*.json"))) == 2

    def test_artifacts_are_stable_json(self, tmp_path):
        plan_dir = tmp_path / "plans"
        with PublishingService(
            medical.build_configuration(), plan_dir=str(plan_dir)
        ) as service:
            service.publish(medical.client_query())
        [path] = plan_dir.glob("*.json")
        text = path.read_text(encoding="ascii")
        artifact = json.loads(text)
        # Byte-stable: re-serializing through stable JSON is the identity.
        assert stable_dumps(artifact) == text
        assert artifact["identity"] == path.stem
        assert artifact["format"] == ARTIFACT_FORMAT
        assert artifact["configuration"]
        assert artifact["query_digest"]
        # Derived artifacts are absent by construction.
        for forbidden in ("sql", "cost", "best_cost", "time_to_best"):
            assert forbidden not in artifact

    def test_identity_addresses_are_shared_across_stores(self, tmp_path):
        # Two independent systems (same configuration content) write the
        # same identity — last writer wins with byte-identical content.
        store_a = PlanStore(tmp_path / "plans")
        store_b = PlanStore(tmp_path / "plans")
        system_a = MarsSystem(medical.build_configuration(), plan_store=store_a)
        system_b = MarsSystem(medical.build_configuration(), plan_store=store_b)
        system_a.reformulate(medical.client_query())
        [identity] = store_a.identities()
        text_before = (tmp_path / "plans" / f"{identity}.json").read_text()
        assert system_b.engine_invocations == 0
        system_b.reformulate(medical.client_query())
        assert system_b.engine_invocations == 0  # served from A's artifact
        assert store_b.stats().hits == 1
        assert (tmp_path / "plans" / f"{identity}.json").read_text() == text_before
