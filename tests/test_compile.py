"""Unit tests for GReX, TIX, the XBind/XIC compilers and view compilation."""

import pytest

from repro.compile import (
    GREX_ARITIES,
    ElementRule,
    GrexCompiler,
    GrexSchema,
    IdentityView,
    RelationalView,
    XMLView,
    compile_xic,
    tix_dependencies,
    xic_exists_child,
    xic_key,
)
from repro.errors import CompilationError
from repro.logical import Constant, EqualityAtom, RelationalAtom, Variable
from repro.storage import InMemoryDatabase
from repro.xbind import PathAtom, XBindQuery
from repro.xmlmodel import XMLDocument, XMLNode


@pytest.fixture
def schema():
    return GrexSchema("books.xml")


@pytest.fixture
def compiler(schema):
    return GrexCompiler({"books.xml": schema})


class TestGrexSchema:
    def test_relation_names_are_suffixed(self, schema):
        assert schema.relation("child") == "child__books_xml"
        assert len(schema.relation_names()) == len(GREX_ARITIES)

    def test_unknown_relation_rejected(self, schema):
        with pytest.raises(KeyError):
            schema.relation("bogus")

    def test_closure_spec_matches_names(self, schema):
        spec = schema.closure_spec()
        assert spec.child == schema.relation("child")
        assert spec.desc == schema.relation("desc")

    def test_materialize_document(self, schema):
        root = XMLNode("library")
        root.add("book", "b1")
        document = XMLDocument("books.xml", root)
        database = InMemoryDatabase()
        schema.materialize(document, database)
        assert database.cardinality(schema.relation("el")) == 2
        assert database.cardinality(schema.relation("root")) == 1
        # re-materializing replaces rather than duplicates
        schema.materialize(document, database)
        assert database.cardinality(schema.relation("el")) == 2


class TestTix:
    def test_axiom_count_and_names(self, schema):
        axioms = tix_dependencies(schema)
        names = {d.name for d in axioms}
        assert any(name.startswith("tix_base") for name in names)
        assert any(name.startswith("tix_trans") for name in names)
        assert any(name.startswith("tix_tag_key") for name in names)
        assert all(not d.is_disjunctive for d in axioms)

    def test_disjunctive_line_axiom_optional(self, schema):
        axioms = tix_dependencies(schema, include_disjunctive=True)
        assert any(d.is_disjunctive for d in axioms)


class TestXBindCompilation:
    def test_descendant_text_path(self, compiler, schema):
        a = Variable("a")
        query = XBindQuery("Xbo", (a,), (PathAtom("//author/text()", a),))
        compiled = compiler.compile_xbind(query)
        relations = {atom.relation for atom in compiled.relational_body}
        assert schema.relation("root") in relations
        assert schema.relation("desc") in relations
        assert schema.relation("text") in relations
        # the tag constant is present
        assert any(
            Constant("author") in atom.terms for atom in compiled.relational_body
        )

    def test_relative_child_path(self, compiler, schema):
        b, t = Variable("b"), Variable("t")
        query = XBindQuery(
            "Xbi",
            (b, t),
            (PathAtom("//book", b), PathAtom("./title/text()", t, source=b)),
        )
        compiled = compiler.compile_xbind(query)
        child_atoms = [
            a for a in compiled.relational_body if a.relation == schema.relation("child")
        ]
        assert any(atom.terms[0] == b for atom in child_atoms)

    def test_attribute_and_wildcard(self, compiler, schema):
        n, i = Variable("n"), Variable("i")
        query = XBindQuery(
            "Xa",
            (i,),
            (PathAtom("//*", n), PathAtom("./@id", i, source=n)),
        )
        compiled = compiler.compile_xbind(query)
        relations = {atom.relation for atom in compiled.relational_body}
        assert schema.relation("attr") in relations
        # wildcard step has no tag atom for the wildcard element
        tag_atoms = [a for a in compiled.relational_body if a.relation == schema.relation("tag")]
        assert all(atom.terms[0] != n for atom in tag_atoms)

    def test_stress_path_compiles_to_twenty_atoms(self, compiler):
        """The section 3 stress test: //a/b/.../j = 1 desc + 9 child + 10 tag."""
        target = Variable("t")
        query = XBindQuery("Stress", (target,), (PathAtom("//a/b/c/d/e/f/g/h/i/j", target),))
        compiled = compiler.compile_xbind(query)
        by_base = {}
        for atom in compiled.relational_body:
            base = atom.relation.split("__")[0]
            by_base[base] = by_base.get(base, 0) + 1
        assert by_base["desc"] == 1
        assert by_base["child"] == 9
        assert by_base["tag"] == 10

    def test_equalities_pass_through(self, compiler):
        a, b = Variable("a"), Variable("b")
        query = XBindQuery(
            "Xe",
            (a,),
            (PathAtom("//x/text()", a), PathAtom("//y/text()", b), EqualityAtom(a, b)),
        )
        compiled = compiler.compile_xbind(query)
        assert any(isinstance(atom, EqualityAtom) for atom in compiled.body)

    def test_unresolvable_document_raises(self):
        compiler = GrexCompiler(
            {"a.xml": GrexSchema("a.xml"), "b.xml": GrexSchema("b.xml")}
        )
        query = XBindQuery("X", (Variable("v"),), (PathAtom("//x", Variable("v")),))
        with pytest.raises(CompilationError):
            compiler.compile_xbind(query)

    def test_document_resolution_propagates_from_source(self):
        compiler = GrexCompiler(
            {"a.xml": GrexSchema("a.xml"), "b.xml": GrexSchema("b.xml")}
        )
        e, t = Variable("e"), Variable("t")
        query = XBindQuery(
            "X",
            (t,),
            (
                PathAtom("//x", e, document="b.xml"),
                PathAtom("./y/text()", t, source=e),
            ),
        )
        compiled = compiler.compile_xbind(query)
        assert all("__b_xml" in atom.relation for atom in compiled.relational_body)


class TestXICCompilation:
    def test_key_xic_compiles_to_egd(self, compiler):
        xic = xic_key("person_key", "//person", "./ssn/text()")
        ded = compile_xic(xic, compiler)
        assert ded.is_egd
        assert len(ded.premise) > 2

    def test_exists_child_xic_compiles_to_tgd(self, compiler, schema):
        xic = xic_exists_child("person_ssn", "//person", "./ssn")
        ded = compile_xic(xic, compiler)
        assert not ded.is_egd
        conclusion_relations = {
            a.relation for a in ded.disjuncts[0].relational_atoms()
        }
        assert schema.relation("child") in conclusion_relations
        assert schema.relation("tag") in conclusion_relations
        # conclusion introduces an existential variable for the ssn element
        assert ded.existential_variables()


class TestRelationalViewCompilation:
    def test_two_inclusion_dependencies(self, compiler):
        d, p = Variable("d"), Variable("p")
        e = Variable("e")
        view = RelationalView(
            "drugPrice",
            XBindQuery(
                "DrugPriceMap",
                (d, p),
                (
                    PathAtom("//drug", e),
                    PathAtom("./name/text()", d, source=e),
                    PathAtom("./price/text()", p, source=e),
                ),
            ),
        )
        dependencies = view.compile(compiler)
        assert len(dependencies) == 2
        forward, backward = dependencies
        assert forward.name == "c_drugPrice"
        assert backward.name == "b_drugPrice"
        assert any(a.relation == "drugPrice" for a in forward.disjuncts[0].relational_atoms())
        assert backward.premise[0].relation == "drugPrice"


class TestXMLViewCompilation:
    def _view(self):
        diag, drug = Variable("diag"), Variable("drug")
        body = (
            RelationalAtom("patientDiag", (Variable("n"), diag)),
            RelationalAtom("patientDrug", (Variable("n"), drug, Variable("u"))),
        )
        return XMLView(
            "CaseMap",
            "case.xml",
            [
                ElementRule("cases", "cases", (), ()),
                ElementRule("case", "case", (diag, drug), body, parent="cases"),
                ElementRule(
                    "diag", "diag", (diag, drug), body, parent="case", text_var=diag
                ),
            ],
        )

    def test_rule_validation(self):
        with pytest.raises(CompilationError):
            XMLView("V", "out.xml", [])  # no root rule
        with pytest.raises(CompilationError):
            XMLView(
                "V",
                "out.xml",
                [
                    ElementRule("a", "a", (), ()),
                    ElementRule("b", "b", (), (), parent="missing"),
                ],
            )

    def test_compilation_produces_skolem_constraints(self):
        view = self._view()
        target = GrexSchema("case.xml")
        compiler = GrexCompiler({"case.xml": target})
        dependencies = view.compile(compiler, target)
        names = {d.name for d in dependencies}
        assert "G_CaseMap_case_domain" in names
        assert "G_CaseMap_case_functional" in names
        assert "G_CaseMap_case_injective" in names
        assert "G_CaseMap_case_structure" in names
        assert "G_CaseMap_diag_text" in names
        # reverse constraints exist for reformulation back onto the sources
        assert any(name.endswith("_reverse") for name in names)
        assert any(name.endswith("_reverse_tag") for name in names)

    def test_materialization_builds_document(self):
        from repro.xbind import MixedStorage

        view = self._view()
        database = InMemoryDatabase()
        database.create_table("patientDiag", 2)
        database.create_table("patientDrug", 3)
        database.insert_many("patientDiag", [("ana", "flu"), ("bob", "cold")])
        database.insert_many("patientDrug", [("ana", "tamiflu", "oral"), ("bob", "syrup", "oral")])
        storage = MixedStorage(database=database)
        document = view.materialize(storage)
        assert document.root.tag == "cases"
        assert len(document.find_all("case")) == 2
        assert sorted(n.text for n in document.find_all("diag")) == ["cold", "flu"]


class TestIdentityView:
    def test_identity_compilation_links_documents(self):
        source = GrexSchema("stored.xml")
        target = GrexSchema("published.xml")
        view = IdentityView("IdMap", "stored.xml", "published.xml")
        dependencies = view.compile(source, target)
        assert len(dependencies) == 2 * len(GREX_ARITIES)
        names = {d.name for d in dependencies}
        assert "IdMap_child_fwd" in names and "IdMap_child_bwd" in names
