"""Randomized differential testing: every backend as every other's oracle.

``tests/test_backends.py`` checks cross-backend equivalence on the
hand-picked reformulations of the paper workloads; here the same oracle is
generalized: seeded random conjunctive queries (joins, selections on real
data values, inequality filters, unions) over the *actual* proprietary
tables of the medical and star configurations must return identical row
sets — and identical row multisets under bag semantics — on both engines.
Any divergence is a bug in the SQL rendering, the SQLite loading, or the
hash-join evaluator; the seed in the test id reproduces it exactly.

The ``sharded`` backend joins the matrix at 2 and 4 shards with mixed
memory/sqlite children: the same random queries must survive routing
(single-shard pruning, co-partitioned scatter, gather fallback) and the
set/bag merge, and partition-key-bound queries must additionally be
*pruned* — proven through the per-shard execution counters.
"""

import pytest

from repro.core import MarsExecutor
from repro.workloads import medical, star
from repro.workloads.star import StarParameters

SEEDS = range(20)
SHARD_SEEDS = range(10)
#: shard count -> child engines, deliberately mixing the two real backends.
SHARD_LAYOUTS = {
    2: ("memory", "sqlite"),
    4: ("memory", "sqlite", "sqlite", "memory"),
}


def multiset(rows):
    return sorted(map(repr, rows))


def build_workload(name):
    if name == "medical":
        return medical.build_configuration()
    parameters = StarParameters(corners=3, hub_count=15, corner_size=8)
    return star.build_configuration(parameters, with_instance=True)


@pytest.fixture(scope="module", params=("medical", "star"))
def executor_pair(request):
    """One memory and one sqlite executor over the same built instance."""
    configuration = build_workload(request.param)
    memory_executor = MarsExecutor(configuration, backend="memory")
    sqlite_executor = MarsExecutor(configuration, backend="sqlite")
    yield memory_executor, sqlite_executor
    sqlite_executor.close()
    memory_executor.close()


@pytest.mark.parametrize("seed", SEEDS)
def test_random_conjunctive_queries_agree(executor_pair, query_generator, seed):
    memory_executor, sqlite_executor = executor_pair
    generator = query_generator(memory_executor.backend, seed)
    for index in range(5):
        query = generator.conjunctive(f"rand_s{seed}_q{index}")
        memory_rows = memory_executor.backend.execute(query)
        sqlite_rows = sqlite_executor.backend.execute(query)
        assert multiset(memory_rows) == multiset(sqlite_rows), (
            f"set-semantics divergence on seed={seed} query={query}"
        )


@pytest.mark.parametrize("seed", SEEDS)
def test_random_bag_semantics_agree(executor_pair, query_generator, seed):
    """distinct=False: the engines must agree on multiplicities too."""
    memory_executor, sqlite_executor = executor_pair
    generator = query_generator(memory_executor.backend, seed + 1000)
    for index in range(3):
        query = generator.conjunctive(f"bag_s{seed}_q{index}")
        memory_rows = memory_executor.backend.execute(query, distinct=False)
        sqlite_rows = sqlite_executor.backend.execute(query, distinct=False)
        assert multiset(memory_rows) == multiset(sqlite_rows), (
            f"bag-semantics divergence on seed={seed} query={query}"
        )


@pytest.mark.parametrize("seed", SEEDS)
def test_random_unions_agree(executor_pair, query_generator, seed):
    """Whole unions through the batch path (one SQL statement on sqlite)."""
    memory_executor, sqlite_executor = executor_pair
    generator = query_generator(memory_executor.backend, seed + 2000)
    union = generator.union(f"u_s{seed}")
    memory_rows = memory_executor.backend.execute_union(union)
    sqlite_rows = sqlite_executor.backend.execute_union(union)
    assert multiset(memory_rows) == multiset(sqlite_rows), (
        f"union divergence on seed={seed} union={union}"
    )
    # and through the executor routing, which picks the batch entry point
    assert multiset(memory_executor.execute_reformulation(union)) == multiset(
        sqlite_executor.execute_reformulation(union)
    )


def test_generator_is_deterministic(executor_pair, query_generator):
    memory_executor, _ = executor_pair
    first = query_generator(memory_executor.backend, 42).conjunctive("q")
    second = query_generator(memory_executor.backend, 42).conjunctive("q")
    assert str(first) == str(second)


# ----------------------------------------------------------------------
# Sharded backends (2 and 4 shards, mixed children) against memory
# ----------------------------------------------------------------------
@pytest.fixture(scope="module", params=("medical", "star"))
def sharded_oracles(request):
    """A memory executor plus sharded executors at each layout."""
    configuration = build_workload(request.param)
    memory_executor = MarsExecutor(configuration, backend="memory")
    sharded = {}
    for shards, children in SHARD_LAYOUTS.items():
        backend = configuration.create_backend(
            "sharded", shards=shards, children=children
        )
        sharded[shards] = MarsExecutor(configuration, backend=backend)
    yield memory_executor, sharded
    for executor in sharded.values():
        executor.backend.close()
    memory_executor.close()


@pytest.mark.parametrize("shards", sorted(SHARD_LAYOUTS))
@pytest.mark.parametrize("seed", SHARD_SEEDS)
def test_sharded_random_queries_agree(sharded_oracles, query_generator, shards, seed):
    memory_executor, sharded = sharded_oracles
    generator = query_generator(memory_executor.backend, seed + 3000)
    backend = sharded[shards].backend
    for index in range(4):
        query = generator.conjunctive(f"sh{shards}_s{seed}_q{index}")
        assert multiset(backend.execute(query)) == multiset(
            memory_executor.backend.execute(query)
        ), f"set divergence on shards={shards} seed={seed} query={query}"
    query = generator.conjunctive(f"shbag{shards}_s{seed}")
    assert multiset(backend.execute(query, distinct=False)) == multiset(
        memory_executor.backend.execute(query, distinct=False)
    ), f"bag divergence on shards={shards} seed={seed} query={query}"


@pytest.mark.parametrize("shards", sorted(SHARD_LAYOUTS))
@pytest.mark.parametrize("seed", SHARD_SEEDS)
def test_sharded_unions_agree(sharded_oracles, query_generator, shards, seed):
    memory_executor, sharded = sharded_oracles
    generator = query_generator(memory_executor.backend, seed + 4000)
    union = generator.union(f"shu{shards}_s{seed}")
    backend = sharded[shards].backend
    assert multiset(backend.execute_union(union)) == multiset(
        memory_executor.backend.execute_union(union)
    ), f"union divergence on shards={shards} seed={seed} union={union}"


@pytest.mark.parametrize("shards", sorted(SHARD_LAYOUTS))
@pytest.mark.parametrize("seed", SHARD_SEEDS)
def test_sharded_key_bound_queries_prune_and_agree(
    sharded_oracles, query_generator, shards, seed
):
    """Partition-key-bound queries agree AND execute on exactly one shard."""
    memory_executor, sharded = sharded_oracles
    backend = sharded[shards].backend
    partitioned = [
        name for name in backend.table_names if backend.partition_spec(name)
    ]
    assert partitioned, "workload declares no partitioned tables"
    generator = query_generator(memory_executor.backend, seed + 5000)
    rng = generator.rng
    for index in range(3):
        table = rng.choice(sorted(partitioned))
        if memory_executor.backend.cardinality(table) == 0:
            continue
        spec = backend.partition_spec(table)
        query = generator.key_bound_conjunctive(
            f"kb{shards}_s{seed}_q{index}", table, spec.position
        )
        before = backend.stats()
        rows = backend.execute(query)
        after = backend.stats()
        assert multiset(rows) == multiset(
            memory_executor.backend.execute(query)
        ), f"pruned divergence on shards={shards} seed={seed} query={query}"
        assert after.router.single_shard - before.router.single_shard == 1
        executed = sum(after.executions_per_shard) - sum(
            before.executions_per_shard
        )
        assert executed == 1, (
            f"key-bound query fanned out on shards={shards} seed={seed}: {query}"
        )
