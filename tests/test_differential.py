"""Randomized differential testing: memory vs. sqlite as mutual oracles.

``tests/test_backends.py`` checks cross-backend equivalence on the
hand-picked reformulations of the paper workloads; here the same oracle is
generalized: seeded random conjunctive queries (joins, selections on real
data values, inequality filters, unions) over the *actual* proprietary
tables of the medical and star configurations must return identical row
sets — and identical row multisets under bag semantics — on both engines.
Any divergence is a bug in the SQL rendering, the SQLite loading, or the
hash-join evaluator; the seed in the test id reproduces it exactly.
"""

import pytest

from repro.core import MarsExecutor
from repro.workloads import medical, star
from repro.workloads.star import StarParameters

SEEDS = range(20)


def multiset(rows):
    return sorted(map(repr, rows))


def build_workload(name):
    if name == "medical":
        return medical.build_configuration()
    parameters = StarParameters(corners=3, hub_count=15, corner_size=8)
    return star.build_configuration(parameters, with_instance=True)


@pytest.fixture(scope="module", params=("medical", "star"))
def executor_pair(request):
    """One memory and one sqlite executor over the same built instance."""
    configuration = build_workload(request.param)
    memory_executor = MarsExecutor(configuration, backend="memory")
    sqlite_executor = MarsExecutor(configuration, backend="sqlite")
    yield memory_executor, sqlite_executor
    sqlite_executor.close()
    memory_executor.close()


@pytest.mark.parametrize("seed", SEEDS)
def test_random_conjunctive_queries_agree(executor_pair, query_generator, seed):
    memory_executor, sqlite_executor = executor_pair
    generator = query_generator(memory_executor.backend, seed)
    for index in range(5):
        query = generator.conjunctive(f"rand_s{seed}_q{index}")
        memory_rows = memory_executor.backend.execute(query)
        sqlite_rows = sqlite_executor.backend.execute(query)
        assert multiset(memory_rows) == multiset(sqlite_rows), (
            f"set-semantics divergence on seed={seed} query={query}"
        )


@pytest.mark.parametrize("seed", SEEDS)
def test_random_bag_semantics_agree(executor_pair, query_generator, seed):
    """distinct=False: the engines must agree on multiplicities too."""
    memory_executor, sqlite_executor = executor_pair
    generator = query_generator(memory_executor.backend, seed + 1000)
    for index in range(3):
        query = generator.conjunctive(f"bag_s{seed}_q{index}")
        memory_rows = memory_executor.backend.execute(query, distinct=False)
        sqlite_rows = sqlite_executor.backend.execute(query, distinct=False)
        assert multiset(memory_rows) == multiset(sqlite_rows), (
            f"bag-semantics divergence on seed={seed} query={query}"
        )


@pytest.mark.parametrize("seed", SEEDS)
def test_random_unions_agree(executor_pair, query_generator, seed):
    """Whole unions through the batch path (one SQL statement on sqlite)."""
    memory_executor, sqlite_executor = executor_pair
    generator = query_generator(memory_executor.backend, seed + 2000)
    union = generator.union(f"u_s{seed}")
    memory_rows = memory_executor.backend.execute_union(union)
    sqlite_rows = sqlite_executor.backend.execute_union(union)
    assert multiset(memory_rows) == multiset(sqlite_rows), (
        f"union divergence on seed={seed} union={union}"
    )
    # and through the executor routing, which picks the batch entry point
    assert multiset(memory_executor.execute_reformulation(union)) == multiset(
        sqlite_executor.execute_reformulation(union)
    )


def test_generator_is_deterministic(executor_pair, query_generator):
    memory_executor, _ = executor_pair
    first = query_generator(memory_executor.backend, 42).conjunctive("q")
    second = query_generator(memory_executor.backend, 42).conjunctive("q")
    assert str(first) == str(second)
