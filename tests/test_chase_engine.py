"""Unit tests for homomorphism search, the chase and containment."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine import (
    ChaseConfig,
    ChaseEngine,
    ContainmentChecker,
    JoinTreeHomomorphismFinder,
    NaiveHomomorphismFinder,
    SymbolicInstance,
    chase_query,
    descendant_closure,
    ClosureSpec,
)
from repro.errors import ChaseError
from repro.logical import (
    ConjunctiveQuery,
    DED,
    Disjunct,
    EqualityAtom,
    InequalityAtom,
    RelationalAtom,
    const,
    egd,
    tgd,
    var,
    view_inclusion_dependencies,
)


def R(*terms):
    return RelationalAtom("R", terms)


def S(*terms):
    return RelationalAtom("S", terms)


def T(*terms):
    return RelationalAtom("T", terms)


x, y, z, u, v, w = (var(n) for n in "xyzuvw")


class TestHomomorphismFinders:
    """Both finders must agree; the join-tree one is the paper's new engine."""

    finders = [NaiveHomomorphismFinder(), JoinTreeHomomorphismFinder()]

    @pytest.mark.parametrize("finder", finders, ids=["naive", "joinTree"])
    def test_example_3_1(self, finder):
        # Paper Example 3.1: the only homomorphism is x->b, y->c, z->d, u->e, v->f.
        a, b, c, d, e, f, g = (const(n) for n in "abcdefg")
        target = [R(a, b), R(b, c), R(c, d), S(d, e), S(e, f), S(f, g)]
        pattern = [R(x, y), R(y, z), S(z, u), S(u, v)]
        results = finder.find_all(pattern, target)
        assert len(results) == 1
        mapping = results[0]
        assert mapping[x] == b and mapping[v] == f

    @pytest.mark.parametrize("finder", finders, ids=["naive", "joinTree"])
    def test_no_homomorphism(self, finder):
        target = [R(const("a"), const("b"))]
        pattern = [R(x, y), S(y, z)]
        assert finder.find_all(pattern, target) == []

    @pytest.mark.parametrize("finder", finders, ids=["naive", "joinTree"])
    def test_constant_in_pattern_must_match(self, finder):
        target = [R(const("a"), const("b")), R(const("c"), const("d"))]
        pattern = [R(const("a"), x)]
        results = finder.find_all(pattern, target)
        assert len(results) == 1
        assert results[0][x] == const("b")

    @pytest.mark.parametrize("finder", finders, ids=["naive", "joinTree"])
    def test_seed_restricts_results(self, finder):
        target = [R(const("a"), const("b")), R(const("c"), const("d"))]
        pattern = [R(x, y)]
        results = finder.find_all(pattern, target, seed={x: const("c")})
        assert len(results) == 1
        assert results[0][y] == const("d")

    @pytest.mark.parametrize("finder", finders, ids=["naive", "joinTree"])
    def test_repeated_variable_in_pattern(self, finder):
        target = [R(const("a"), const("a")), R(const("a"), const("b"))]
        pattern = [R(x, x)]
        results = finder.find_all(pattern, target)
        assert len(results) == 1

    @pytest.mark.parametrize("finder", finders, ids=["naive", "joinTree"])
    def test_equality_filter_in_pattern(self, finder):
        target = [R(const("a"), const("a")), R(const("a"), const("b"))]
        pattern = [R(x, y), EqualityAtom(x, y)]
        results = finder.find_all(pattern, target)
        assert len(results) == 1

    @given(
        st.lists(
            st.tuples(st.integers(0, 3), st.integers(0, 3)), min_size=1, max_size=8
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_property_finders_agree(self, edges):
        target = [R(const(a), const(b)) for a, b in edges]
        pattern = [R(x, y), R(y, z)]
        naive = NaiveHomomorphismFinder().find_all(pattern, target)
        join_tree = JoinTreeHomomorphismFinder().find_all(pattern, target)

        def canonical(results):
            # Compare as sets: duplicate target atoms may yield the same
            # homomorphism several times in the naive finder.
            return {
                tuple(sorted((k.name, str(val)) for k, val in m.items()))
                for m in results
            }

        assert canonical(naive) == canonical(join_tree)


class TestSymbolicInstance:
    def test_add_and_contains(self):
        instance = SymbolicInstance([R(x, y)])
        assert instance.contains_atom(R(x, y))
        assert not instance.add_atom(R(x, y))
        assert instance.add_atom(R(y, z))
        assert instance.cardinality("R") == 2

    def test_index_is_maintained_on_insert(self):
        instance = SymbolicInstance([R(x, y)])
        index = instance.index("R", (0,))
        assert (x,) in index
        instance.add_atom(R(x, z))
        assert len(instance.index("R", (0,))[(x,)]) == 2


class TestChase:
    def test_paper_section_2_3_example(self):
        """Chasing Q with (ind) and (cV) yields the universal plan with V."""
        cV, bV = view_inclusion_dependencies("V", [x, z], [R(x, y), S(y, z)])
        ind = tgd("ind", [R(x, y)], [S(y, z)])
        query = ConjunctiveQuery("Q", [x], [R(x, y)])
        result = chase_query(query, [ind, cV, bV])
        plan = result.universal_plan
        relations = plan.relation_names()
        assert relations == frozenset({"R", "S", "V"})

    def test_chase_is_idempotent_on_satisfied_constraints(self):
        dependency = tgd("d", [R(x, y)], [S(x, y)])
        query = ConjunctiveQuery("Q", [x], [R(x, y), S(x, y)])
        result = chase_query(query, [dependency])
        assert result.statistics.steps_applied == 0
        assert len(result.universal_plan.body) == 2

    def test_egd_merges_variables(self):
        key = egd("key", [R(x, y), R(x, z)], y, z)
        query = ConjunctiveQuery("Q", [x], [R(x, y), R(x, z), S(y, w), S(z, u)])
        result = chase_query(query, [key])
        plan = result.universal_plan
        # y and z are merged, so the two R atoms collapse into one; the S atoms
        # now share their first argument.
        assert len([a for a in plan.relational_body if a.relation == "R"]) == 1
        s_atoms = [a for a in plan.relational_body if a.relation == "S"]
        assert len(s_atoms) == 2
        assert s_atoms[0].terms[0] == s_atoms[1].terms[0]

    def test_egd_prefers_head_variables(self):
        key = egd("key", [R(x, y), R(x, z)], y, z)
        query = ConjunctiveQuery("Q", [y], [R(x, y), R(x, z)])
        plan = chase_query(query, [key]).universal_plan
        assert var("y") in plan.body_variables()

    def test_egd_on_constants_drops_inconsistent_branch(self):
        key = egd("key", [R(x, y), R(x, z)], y, z)
        query = ConjunctiveQuery("Q", [x], [R(x, const(1)), R(x, const(2))])
        result = chase_query(query, [key])
        assert result.branches == []

    def test_disjunctive_dependency_branches(self):
        dependency = DED(
            "choice",
            [R(x, y)],
            [Disjunct([S(x, y)]), Disjunct([T(x, y)])],
        )
        query = ConjunctiveQuery("Q", [x], [R(x, y)])
        result = chase_query(query, [dependency])
        assert len(result.branches) == 2
        relations = {frozenset(b.relation_names()) for b in result.branches}
        assert relations == {frozenset({"R", "S"}), frozenset({"R", "T"})}

    def test_step_budget_enforced(self):
        # A constraint that generates an infinite chase: R(x,y) -> exists z R(y,z).
        runaway = tgd("runaway", [R(x, y)], [R(y, z)])
        query = ConjunctiveQuery("Q", [x], [R(x, y)])
        config = ChaseConfig(max_steps=20, raise_on_budget=True)
        with pytest.raises(ChaseError):
            ChaseEngine(config).chase(query, [runaway])

    def test_naive_and_join_tree_strategies_agree(self):
        cV, bV = view_inclusion_dependencies("V", [x, z], [R(x, y), S(y, z)])
        ind = tgd("ind", [R(x, y)], [S(y, z)])
        query = ConjunctiveQuery("Q", [x], [R(x, y)])
        fast = ChaseEngine(ChaseConfig(strategy="joinTree")).chase(query, [ind, cV, bV])
        slow = ChaseEngine(ChaseConfig(strategy="naive")).chase(query, [ind, cV, bV])
        assert fast.universal_plan.relation_names() == slow.universal_plan.relation_names()
        assert len(fast.universal_plan.body) == len(slow.universal_plan.body)

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ChaseError):
            ChaseEngine(ChaseConfig(strategy="bogus"))


class TestDescendantClosure:
    def test_chain_closure_counts(self):
        spec = ClosureSpec()
        atoms = [RelationalAtom("root", (var("x0"),))]
        for i in range(4):
            atoms.append(RelationalAtom("child", (var(f"x{i}"), var(f"x{i+1}"))))
        query = ConjunctiveQuery("Q", [var("x0")], atoms)
        closed, added = descendant_closure(query, [spec])
        desc_atoms = [a for a in closed.relational_body if a.relation == "desc"]
        # 5 nodes: reflexive (5) + all ordered pairs on the chain (10) = 15.
        assert len(desc_atoms) == 15
        assert added > 0

    def test_closure_is_idempotent(self):
        spec = ClosureSpec()
        atoms = [RelationalAtom("child", (x, y)), RelationalAtom("child", (y, z))]
        query = ConjunctiveQuery("Q", [x], atoms)
        closed, _ = descendant_closure(query, [spec])
        again, added = descendant_closure(closed, [spec])
        assert added == 0
        assert len(again.body) == len(closed.body)


class TestContainment:
    def test_plain_containment(self):
        checker = ContainmentChecker()
        q1 = ConjunctiveQuery("Q1", [x], [R(x, y), S(y, z)])
        q2 = ConjunctiveQuery("Q2", [x], [R(x, y)])
        assert checker.is_contained_in(q1, q2)
        assert not checker.is_contained_in(q2, q1)

    def test_containment_under_dependency(self):
        checker = ContainmentChecker()
        ind = tgd("ind", [R(x, y)], [S(y, z)])
        q1 = ConjunctiveQuery("Q1", [x], [R(x, y)])
        q2 = ConjunctiveQuery("Q2", [x], [R(x, y), S(y, z)])
        assert not checker.is_contained_in(q1, q2)
        assert checker.is_contained_in(q1, q2, [ind])

    def test_equivalence_with_view(self):
        checker = ContainmentChecker()
        cV, bV = view_inclusion_dependencies("V", [x, z], [R(x, y), S(y, z)])
        original = ConjunctiveQuery("Q", [x, z], [R(x, y), S(y, z)])
        rewritten = ConjunctiveQuery("Q", [x, z], [RelationalAtom("V", (x, z))])
        assert checker.is_equivalent(original, rewritten, [cV, bV])

    def test_is_minimal(self):
        checker = ContainmentChecker()
        redundant = ConjunctiveQuery("Q", [x], [R(x, y), R(x, z)])
        minimal = ConjunctiveQuery("Q", [x], [R(x, y)])
        assert not checker.is_minimal(redundant)
        assert checker.is_minimal(minimal)

    def test_relevant_dependencies_filter(self):
        d1 = tgd("uses_r", [R(x, y)], [S(x, y)])
        d2 = tgd("uses_t", [T(x, y)], [S(x, y)])
        d3 = tgd("uses_s", [S(x, y)], [T(x, y)])
        query = ConjunctiveQuery("Q", [x], [R(x, y)])
        relevant = ContainmentChecker.relevant_dependencies(query, [d1, d2, d3])
        # uses_r fires from R; it derives S, enabling uses_s, which derives T,
        # enabling uses_t: all three end up relevant.
        assert {d.name for d in relevant} == {"uses_r", "uses_s", "uses_t"}

    def test_relevant_dependencies_excludes_unreachable(self):
        d1 = tgd("uses_r", [R(x, y)], [S(x, y)])
        unreachable = tgd("needs_w", [RelationalAtom("W", (x,))], [T(x, x)])
        query = ConjunctiveQuery("Q", [x], [R(x, y)])
        relevant = ContainmentChecker.relevant_dependencies(query, [d1, unreachable])
        assert {d.name for d in relevant} == {"uses_r"}
