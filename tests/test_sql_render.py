"""SQL rendering: display text, parameterized form, and edge cases.

The edge cases matter because the backchase can minimize a query down to
something degenerate (constant-only head, empty relational body); the SQL
shipped to a real engine must stay well-formed in every case.
"""

import sqlite3

import pytest

from repro.logical.atoms import EqualityAtom, InequalityAtom, RelationalAtom
from repro.logical.queries import ConjunctiveQuery, UnionQuery
from repro.logical.schema import RelationalSchema
from repro.logical.terms import Constant, Variable
from repro.storage.sql import (
    SQLQuery,
    render_sql,
    render_sql_query,
    render_union_sql,
    render_union_sql_query,
)


def sqlite_run(statement: SQLQuery):
    connection = sqlite3.connect(":memory:")
    try:
        return connection.execute(statement.sql, statement.params).fetchall()
    finally:
        connection.close()


def schema_with_r():
    schema = RelationalSchema("s")
    schema.add_relation("r", ("a", "b"))
    return schema


class TestRenderSQL:
    def test_plain_join_query(self):
        x, y, z = Variable("x"), Variable("y"), Variable("z")
        query = ConjunctiveQuery(
            "q",
            (x, z),
            (RelationalAtom("r", (x, y)), RelationalAtom("s", (y, z))),
        )
        sql = render_sql(query)
        assert "SELECT DISTINCT t0.c0 AS h0, t1.c1 AS h1" in sql
        assert "FROM r t0, s t1" in sql
        assert "t0.c1 = t1.c0" in sql

    def test_schema_attribute_names(self):
        x, y = Variable("x"), Variable("y")
        query = ConjunctiveQuery("q", (y,), (RelationalAtom("r", (x, y)),))
        sql = render_sql(query, schema_with_r())
        assert "t0.b AS h0" in sql

    def test_constant_only_head_with_body(self):
        x = Variable("x")
        query = ConjunctiveQuery(
            "q", (Constant("yes"),), (RelationalAtom("r", (x, x)),)
        )
        sql = render_sql(query)
        assert sql.startswith("SELECT DISTINCT 'yes' AS h0")
        assert "FROM r t0" in sql

    def test_zero_relational_atoms_renders_without_from(self):
        query = ConjunctiveQuery("q", (Constant(1), Constant("two")), ())
        sql = render_sql(query)
        assert sql == "SELECT DISTINCT 1 AS h0, 'two' AS h1"
        assert "FROM" not in sql

    def test_zero_atoms_with_constant_filter(self):
        query = ConjunctiveQuery(
            "q",
            (Constant(1),),
            (InequalityAtom(Constant(1), Constant(2)),),
        )
        sql = render_sql(query)
        assert "FROM" not in sql
        assert "WHERE 1 <> 2" in sql

    def test_empty_head_still_selects(self):
        x = Variable("x")
        query = ConjunctiveQuery("q", (), (RelationalAtom("r", (x, x)),))
        sql = render_sql(query)
        assert sql.startswith("SELECT DISTINCT 1")

    def test_string_literal_escaping(self):
        x = Variable("x")
        query = ConjunctiveQuery(
            "q", (x,), (RelationalAtom("r", (x, Constant("o'hara"))),)
        )
        assert "'o''hara'" in render_sql(query)

    def test_union_rendering(self):
        x = Variable("x")
        left = ConjunctiveQuery("l", (x,), (RelationalAtom("r", (x, x)),))
        right = ConjunctiveQuery("r", (x,), (RelationalAtom("s", (x, x)),))
        sql = render_union_sql(UnionQuery("u", (left, right)))
        assert sql.count("SELECT DISTINCT") == 2
        assert "\nUNION\n" in sql


class TestRenderSQLQuery:
    def test_parameters_replace_constants(self):
        x = Variable("x")
        query = ConjunctiveQuery(
            "q",
            (x, Constant("head")),
            (RelationalAtom("r", (x, Constant(7))),),
        )
        statement = render_sql_query(query)
        assert statement.sql.count("?") == 2
        # SELECT-list parameters precede WHERE parameters
        assert statement.params == ("head", 7)

    def test_identifiers_are_quoted(self):
        x = Variable("x")
        query = ConjunctiveQuery("q", (x,), (RelationalAtom("r", (x, x)),))
        statement = render_sql_query(query, schema_with_r())
        assert '"r" "t0"' in statement.sql
        assert '"t0"."a"' in statement.sql

    def test_executes_on_sqlite(self):
        connection = sqlite3.connect(":memory:")
        connection.execute('CREATE TABLE "r" ("a", "b")')
        connection.executemany(
            'INSERT INTO "r" VALUES (?, ?)', [(1, 1), (2, 3), (4, 4)]
        )
        x = Variable("x")
        query = ConjunctiveQuery("q", (x,), (RelationalAtom("r", (x, x)),))
        statement = render_sql_query(query, schema_with_r())
        rows = connection.execute(statement.sql, statement.params).fetchall()
        assert sorted(rows) == [(1,), (4,)]
        connection.close()

    def test_zero_atom_query_executes(self):
        query = ConjunctiveQuery("q", (Constant("a"), Constant(2)), ())
        assert sqlite_run(render_sql_query(query)) == [("a", 2)]

    def test_zero_atom_filter_executes(self):
        satisfied = ConjunctiveQuery(
            "q", (Constant(1),), (EqualityAtom(Constant(2), Constant(2)),)
        )
        assert sqlite_run(render_sql_query(satisfied)) == [(1,)]
        falsified = ConjunctiveQuery(
            "q", (Constant(1),), (InequalityAtom(Constant(2), Constant(2)),)
        )
        assert sqlite_run(render_sql_query(falsified)) == []

    def test_unbound_head_variable_becomes_null(self):
        ghost = Variable("ghost")
        query = ConjunctiveQuery("q", (ghost,), ())
        statement = render_sql_query(query)
        assert "NULL" in statement.sql
        assert sqlite_run(statement) == [(None,)]

    def test_distinct_flag(self):
        x = Variable("x")
        query = ConjunctiveQuery("q", (x,), (RelationalAtom("r", (x, x)),))
        bag = render_sql_query(query, distinct=False)
        assert "DISTINCT" not in bag.sql

    def test_union_query_parameters_concatenate(self):
        x = Variable("x")
        left = ConjunctiveQuery(
            "l", (x,), (RelationalAtom("r", (x, Constant("a"))),)
        )
        right = ConjunctiveQuery(
            "rq", (x,), (RelationalAtom("r", (x, Constant("b"))),)
        )
        statement = render_union_sql_query(UnionQuery("u", (left, right)))
        assert statement.params == ("a", "b")
        assert "\nUNION\n" in statement.sql
        bag = render_union_sql_query(
            UnionQuery("u", (left, right)), distinct=False
        )
        assert "UNION ALL" in bag.sql


class TestRenderUnionSQLQuery:
    """UNION output: parameter order, duplicate semantics, FROM-less branches."""

    def union_over_r(self):
        x = Variable("x")
        left = ConjunctiveQuery(
            "l",
            (Constant("L"), x),
            (RelationalAtom("r", (x, Constant(1))),),
        )
        right = ConjunctiveQuery(
            "rq",
            (Constant("R"), x),
            (RelationalAtom("r", (x, Constant(2))),),
        )
        return UnionQuery("u", (left, right))

    def prepared_connection(self):
        connection = sqlite3.connect(":memory:")
        connection.execute('CREATE TABLE "r" ("a", "b")')
        connection.executemany(
            'INSERT INTO "r" VALUES (?, ?)',
            [("p", 1), ("p", 1), ("q", 1), ("q", 2)],
        )
        return connection

    def test_parameter_ordering_per_disjunct(self):
        """SELECT-list params precede WHERE params inside each disjunct, and
        disjuncts contribute their params in order."""
        statement = render_union_sql_query(self.union_over_r(), schema_with_r())
        assert statement.params == ("L", 1, "R", 2)
        assert statement.sql.count("?") == 4

    def test_union_eliminates_duplicates_across_and_within_disjuncts(self):
        connection = self.prepared_connection()
        statement = render_union_sql_query(
            self.union_over_r(), schema_with_r(), distinct=True
        )
        rows = connection.execute(statement.sql, statement.params).fetchall()
        # ("p",1) appears twice in the data and "q" matches both disjuncts;
        # UNION set semantics collapse within and across the branches.
        assert sorted(rows) == [("L", "p"), ("L", "q"), ("R", "q")]
        connection.close()

    def test_union_all_keeps_bag_semantics(self):
        connection = self.prepared_connection()
        statement = render_union_sql_query(
            self.union_over_r(), schema_with_r(), distinct=False
        )
        rows = connection.execute(statement.sql, statement.params).fetchall()
        assert sorted(rows) == [("L", "p"), ("L", "p"), ("L", "q"), ("R", "q")]
        connection.close()

    def test_inner_distinct_skipped_under_union(self):
        """UNION already de-duplicates; the disjunct SELECTs stay plain."""
        statement = render_union_sql_query(
            self.union_over_r(), schema_with_r(), distinct=True
        )
        assert "DISTINCT" not in statement.sql
        assert statement.sql.count("\nUNION\n") == 1

    def test_single_disjunct_union_renders_plain_select(self):
        x = Variable("x")
        only = ConjunctiveQuery("q", (x,), (RelationalAtom("r", (x, x)),))
        statement = render_union_sql_query(UnionQuery("u", (only,)))
        assert "UNION" not in statement.sql
        assert statement.sql.startswith("SELECT DISTINCT")
        bag = render_union_sql_query(UnionQuery("u", (only,)), distinct=False)
        assert "DISTINCT" not in bag.sql

    def test_from_less_disjunct_inside_union(self):
        """A constant-only branch (no relational atoms) unions with a real one."""
        x = Variable("x")
        scan = ConjunctiveQuery("scan", (x,), (RelationalAtom("r", (x, Constant(2))),))
        constant = ConjunctiveQuery("const", (Constant("fixed"),), ())
        statement = render_union_sql_query(
            UnionQuery("u", (scan, constant)), schema_with_r()
        )
        connection = self.prepared_connection()
        rows = connection.execute(statement.sql, statement.params).fetchall()
        assert sorted(rows) == [("fixed",), ("q",)]
        connection.close()

    def test_union_executes_on_loaded_sqlite_backend(self):
        """End to end through SQLiteBackend.execute_union: one statement."""
        from repro.storage.backends import SQLiteBackend

        backend = SQLiteBackend()
        backend.create_table("r", 2, ("a", "b"))
        backend.insert_many("r", [("p", 1), ("q", 2)])
        union = self.union_over_r()
        compiled = backend.compile_query(union)
        assert compiled.sql.count("\nUNION\n") == 1
        rows = backend.execute_union(union)
        assert sorted(rows) == [("L", "p"), ("R", "q")]
        backend.close()
