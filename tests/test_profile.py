"""Per-operator query profiles: tree invariants across the backend matrix.

The structured EXPLAIN ANALYZE protocol promises a handful of invariants
no matter which engine executed the plan:

* the root node's ``actual_rows`` is exactly the published row count;
* every child operator's elapsed time fits inside its parent's window;
* engine-specific operators appear where they must (shard fragments
  with real per-shard cardinalities on a sharded deployment, a
  replica-read node naming the serving copy on a replicated one);
* the 1-in-N sampler is deterministic per seed, and the bounded buffer
  stays consistent under concurrent recording.

The matrix fixture flips ``MARS_BACKEND`` (plus the shard/replica
counts) exactly the way CI's tier-1 legs do, so every invariant is
checked on ``memory``, ``sqlite``, ``sharded`` and ``replicated``.
"""

import threading

import pytest

from repro.obs.feedback import Q_ERROR_CAP, q_error
from repro.profile import (
    JOIN_STEP,
    MERGE,
    NULL_PROFILE,
    ProfileBuffer,
    ProfileNode,
    QueryProfile,
    REPLICA_READ,
    SCAN,
    SHARD_FRAGMENT,
    current_profile,
)
from repro.serve import PublishingService
from repro.workloads import medical

BACKENDS = ("memory", "sqlite", "sharded", "replicated")


@pytest.fixture(params=BACKENDS)
def profiled_service(request, monkeypatch):
    """A profiling service (sample=1) on each backend of the matrix."""
    monkeypatch.setenv("MARS_BACKEND", request.param)
    monkeypatch.setenv("MARS_SHARDS", "3")
    monkeypatch.setenv("MARS_REPLICAS", "2")
    service = PublishingService(
        medical.build_configuration(), pool_size=2, profile_sample=1
    )
    try:
        yield request.param, service
    finally:
        service.close()


class TestProfileTreeInvariants:
    def test_root_actual_rows_equals_published_rows(self, profiled_service):
        _backend, service = profiled_service
        rows = service.publish(medical.client_query())
        profile = service.last_profile
        assert profile is not None
        assert profile.actual_rows == len(rows)

    def test_child_elapsed_fits_inside_parent(self, profiled_service):
        _backend, service = profiled_service
        service.publish(medical.client_query())
        profile = service.last_profile
        seen = 0

        def check(node):
            nonlocal seen
            for child in node.children:
                seen += 1
                assert child.elapsed_seconds <= node.elapsed_seconds + 1e-6, (
                    f"{child.describe()} ({child.elapsed_seconds}s) outlives "
                    f"{node.describe()} ({node.elapsed_seconds}s)"
                )
                assert child.start >= node.start - 1e-6
                check(child)

        check(profile.root)
        assert seen > 0, "profiled publish produced a childless tree"

    def test_every_finished_node_is_closed(self, profiled_service):
        _backend, service = profiled_service
        service.publish(medical.client_query())
        for node in service.last_profile.operators():
            assert node.end is not None, f"{node.describe()} never finished"

    def test_operator_kinds_match_backend(self, profiled_service):
        backend, service = profiled_service
        rows = service.publish(medical.client_query())
        kinds = {node.kind for node in service.last_profile.operators()}
        if backend == "memory":
            assert kinds & {SCAN, JOIN_STEP}
        if backend == "sqlite":
            assert "statement" in kinds
        if backend == "sharded":
            assert SHARD_FRAGMENT in kinds
            fragments = [
                node
                for node in service.last_profile.operators()
                if node.kind == SHARD_FRAGMENT
            ]
            # Fragment cardinalities are real: per relation they sum to
            # the template's full table, fragment by fragment.
            totals = {}
            for fragment in fragments:
                relation = fragment.attributes.get("relation")
                if relation is not None:
                    totals[relation] = (
                        totals.get(relation, 0) + fragment.actual_rows
                    )
            template = service.executor.backend
            for relation, total in totals.items():
                assert total == template.cardinality(relation)
        if backend == "replicated":
            reads = [
                node
                for node in service.last_profile.operators()
                if node.kind == REPLICA_READ
            ]
            assert reads, "replicated publish recorded no replica-read node"
            served = reads[-1]
            assert served.attributes["replica"] in (0, 1)
            assert served.actual_rows == len(rows)

    def test_explain_analyze_returns_structured_profile(
        self, profiled_service
    ):
        _backend, service = profiled_service
        rows = service.publish(medical.client_query())
        profile = service.explain(medical.client_query(), analyze=True)
        assert isinstance(profile, QueryProfile)
        assert profile.actual_rows == len(rows)
        assert profile.metadata["forced"] is True
        # The structured export round-trips: the dict mirrors the tree.
        exported = profile.to_dict()
        assert exported["profile"]["actual_rows"] == len(rows)
        assert profile.to_json()

    def test_worst_operator_reaches_misestimation_report(
        self, profiled_service
    ):
        _backend, service = profiled_service
        service.publish(medical.client_query())
        report = service.misestimation_report()
        assert report, "profiled publish produced no feedback entry"
        worst = service.last_profile.worst_operator()
        if worst is not None:
            assert report[0].worst_operator == worst.describe()
            assert report[0].worst_operator_q_error == pytest.approx(
                worst.q_error or 1.0
            )


class TestExplainAnalyzeForcedWhenSamplingDisabled:
    def test_analyze_profiles_without_a_buffer(self):
        service = PublishingService(
            medical.build_configuration(), pool_size=2, profile_sample=0
        )
        try:
            assert service.profile_buffer is None
            rows = service.publish(medical.client_query())
            # Sampling disabled: the ordinary publish left no profile.
            assert service.last_profile is None
            profile = service.explain(medical.client_query(), analyze=True)
            assert profile.actual_rows == len(rows)
            assert service.last_profile is profile
        finally:
            service.close()

    def test_negative_sample_rejected(self):
        with pytest.raises(ValueError):
            PublishingService(
                medical.build_configuration(), pool_size=2, profile_sample=-1
            )


class TestSamplerDeterminism:
    def test_same_seed_fires_identically(self):
        first = ProfileBuffer(sample=3, seed=1)
        second = ProfileBuffer(sample=3, seed=1)
        a = [first.should_sample() for _ in range(9)]
        b = [second.should_sample() for _ in range(9)]
        assert a == b
        assert a.count(True) == 3

    def test_seed_shifts_which_publish_fires(self):
        by_seed = {
            seed: [
                ProfileBuffer(sample=3, seed=seed).should_sample()
                for _ in range(1)
            ]
            for seed in range(3)
        }
        # seed 0 fires on the first publish, other residues do not.
        assert by_seed[0] == [True]
        assert by_seed[1] == [False]
        buffer = ProfileBuffer(sample=3, seed=1)
        fired = [buffer.should_sample() for _ in range(7)]
        assert fired == [False, False, True, False, False, True, False]

    def test_sample_one_profiles_everything(self):
        buffer = ProfileBuffer(sample=1)
        assert all(buffer.should_sample() for _ in range(5))

    def test_service_sampling_is_deterministic(self, monkeypatch):
        monkeypatch.setenv("MARS_BACKEND", "memory")

        def recorded_count(publishes: int) -> int:
            service = PublishingService(
                medical.build_configuration(),
                pool_size=2,
                profile_sample=3,
            )
            try:
                for _ in range(publishes):
                    service.publish(medical.client_query())
                return service.profile_buffer.recorded
            finally:
                service.close()

        # 1-in-3 with the default seed: publishes 1, 4, 7 are profiled.
        assert recorded_count(7) == 3
        assert recorded_count(7) == 3


class TestProfileBufferConcurrency:
    def test_eight_thread_stress_stays_consistent(self):
        buffer = ProfileBuffer(maxlen=16, sample=1)
        per_thread = 50
        threads = 8
        errors = []

        def worker(tag: int) -> None:
            try:
                for index in range(per_thread):
                    buffer.should_sample()
                    root = ProfileNode("execute", f"t{tag}q{index}")
                    with root:
                        child = root.child(SCAN, "r", estimated_rows=2.0)
                        child.finish(actual_rows=4)
                    root.finish(actual_rows=4)
                    buffer.record(
                        QueryProfile(root, query=f"t{tag}q{index}")
                    )
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        pool = [
            threading.Thread(target=worker, args=(tag,))
            for tag in range(threads)
        ]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        assert not errors
        assert buffer.offered == threads * per_thread
        assert buffer.recorded == threads * per_thread
        assert len(buffer) == 16  # bounded: only maxlen retained
        exported = buffer.recent()
        assert len(exported) == 16
        for entry in exported:
            assert entry["profile"]["actual_rows"] == 4
            assert entry["worst_q_error"] == 2.0
        assert buffer.worst_q_error() == 2.0

    def test_concurrent_publishes_each_get_their_own_tree(self, monkeypatch):
        monkeypatch.setenv("MARS_BACKEND", "memory")
        service = PublishingService(
            medical.build_configuration(), pool_size=4, profile_sample=1
        )
        errors = []

        def worker() -> None:
            try:
                for _ in range(5):
                    rows = service.publish(medical.client_query())
                    assert rows
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        try:
            pool = [threading.Thread(target=worker) for _ in range(8)]
            for thread in pool:
                thread.start()
            for thread in pool:
                thread.join()
            assert not errors
            assert service.profile_buffer.recorded == 40
            for entry in service.profile_buffer.recent():
                assert entry["profile"]["actual_rows"] is not None
        finally:
            service.close()


class TestAmbientSink:
    def test_no_profile_means_null_profile(self):
        assert current_profile() is NULL_PROFILE
        assert not current_profile()
        # The null node absorbs instrumentation without allocating.
        assert NULL_PROFILE.child(SCAN, "r") is NULL_PROFILE
        NULL_PROFILE.finish(actual_rows=3)
        NULL_PROFILE.annotate(anything=1)
        assert NULL_PROFILE.actual_rows is None
        assert NULL_PROFILE.to_dict() == {}

    def test_nesting_restores_the_outer_node(self):
        outer = ProfileNode("execute", "outer")
        with outer:
            assert current_profile() is outer
            with outer.child(MERGE, "inner") as inner:
                assert current_profile() is inner
            assert current_profile() is outer
        assert current_profile() is NULL_PROFILE

    def test_exception_annotates_and_closes(self):
        node = ProfileNode("execute", "boom")
        with pytest.raises(RuntimeError):
            with node:
                raise RuntimeError("kaput")
        assert node.attributes["error"] == "RuntimeError"
        assert node.end is not None


class TestQErrorGuards:
    def test_zero_actual_rows_never_divides(self):
        # Flooring both sides at one row turns "estimated 10, got 0"
        # into a finite 10x error instead of a division by zero.
        assert q_error(10.0, 0) == 10.0
        assert q_error(0, 10.0) == 10.0
        assert q_error(0, 0) == 1.0
        assert q_error(1e12, 0) == Q_ERROR_CAP  # capped, never inf
        node = ProfileNode("scan", "r", estimated_rows=10.0)
        node.finish(actual_rows=0)
        assert node.q_error == 10.0

    def test_cap_keeps_prometheus_text_finite(self):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        gauge = registry.gauge(
            "mars_profile_worst_q_error_ratio", "worst operator q-error"
        )
        gauge.set(q_error(1e12, 0.0))
        text = registry.render_prometheus()
        assert "inf" not in text.lower()
        assert "nan" not in text.lower()

    def test_symmetric_and_floored(self):
        assert q_error(10, 100) == q_error(100, 10) == 10.0
        assert q_error(0.25, 1) == 1.0  # both sides floored at one row
        assert q_error(float("nan"), 5) == Q_ERROR_CAP
        assert q_error(float("inf"), 5) == Q_ERROR_CAP


class TestExplainDecisionRendering:
    def test_sharded_explain_shows_the_routing_decision(self, monkeypatch):
        monkeypatch.setenv("MARS_BACKEND", "sharded")
        monkeypatch.setenv("MARS_SHARDS", "3")
        service = PublishingService(
            medical.build_configuration(), pool_size=2
        )
        try:
            text = service.explain(medical.client_query())
            assert "decided by" in text  # cost comparison vs fixed rule
            assert (
                "gather at coordinator" in text
                or "single-shard" in text
                or "scatter" in text
            )
        finally:
            service.close()

    def test_replicated_explain_names_the_serving_replica(self, monkeypatch):
        monkeypatch.setenv("MARS_BACKEND", "replicated")
        monkeypatch.setenv("MARS_REPLICAS", "2")
        service = PublishingService(
            medical.build_configuration(), pool_size=2
        )
        try:
            text = service.explain(medical.client_query())
            assert "read served by replica" in text
            assert "failover order" in text
        finally:
            service.close()
