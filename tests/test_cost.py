"""The statistics + cost subsystem: collection, estimation, plan/route choice.

Four claims are pinned down here:

1. every backend can measure a :class:`StatisticsCatalog` of its own data
   (the SQLite backend through ``ANALYZE``/``sqlite_stat1``, the sharded
   backend by merging its children's catalogs);
2. the :class:`CostModel` cardinality estimates track reality within sane
   bounds on the randomized differential workload;
3. ``MarsSystem.reformulate`` picks its plan by modeled cost — including a
   case where the statistics-blind (rule-based) choice and the cost-based
   choice *differ*;
4. the cost-based :class:`ShardRouter` overrides scatter with gather when
   the model says so, surfaces chosen-vs-alternative estimates, and still
   prunes partition-key-bound queries to exactly one shard.
"""

import math

import pytest

from repro.core import MarsExecutor, MarsSystem
from repro.cost import CostModel, CostParameters, StatisticsCatalog, profile_rows
from repro.engine.cost import SimpleCostEstimator
from repro.logical.atoms import RelationalAtom
from repro.logical.queries import ConjunctiveQuery
from repro.logical.terms import Constant, Variable
from repro.serve import PublishingService
from repro.shard import MODE_GATHER, MODE_SCATTER, MODE_SINGLE, ShardedBackend
from repro.storage.backends import MemoryBackend, SQLiteBackend
from repro.workloads import medical, star
from repro.workloads.star import StarParameters

ORDERS = [(f"c{i % 4}", i, i % 6) for i in range(24)]
CITIES = [(i, f"city{i % 3}") for i in range(6)]


def load(backend):
    backend.create_table("orders", 3, ("customer", "order_id", "qty"))
    backend.create_table("cities", 2, ("city_id", "city"))
    backend.insert_many("orders", ORDERS)
    backend.insert_many("cities", CITIES)
    return backend


# ----------------------------------------------------------------------
# Statistics collection on every backend
# ----------------------------------------------------------------------
class TestStatisticsCollection:
    def test_memory_backend_profiles_exactly(self):
        backend = load(MemoryBackend())
        catalog = backend.collect_statistics()
        orders = catalog.table("orders")
        assert orders.row_count == 24.0
        assert orders.distinct_counts == (4.0, 24.0, 6.0)
        assert catalog.table("cities").row_count == 6.0
        backend.close()

    def test_sqlite_backend_matches_memory(self):
        memory = load(MemoryBackend())
        sqlite = load(SQLiteBackend())
        # Force an index so part of the catalog flows through sqlite_stat1's
        # "nrow navg" entries rather than COUNT(DISTINCT) alone.
        i, q = Variable("i"), Variable("q")
        sqlite.ensure_indexes(
            ConjunctiveQuery(
                "probe", (i,), (RelationalAtom("orders", (Constant("c1"), i, q)),)
            )
        )
        expected = memory.collect_statistics()
        collected = sqlite.collect_statistics()
        for name in ("orders", "cities"):
            assert collected.table(name).row_count == expected.table(name).row_count
            assert (
                collected.table(name).distinct_counts
                == expected.table(name).distinct_counts
            )
        memory.close()
        sqlite.close()

    def test_sharded_backend_merges_children(self):
        backend = ShardedBackend(
            shards=3,
            children=("memory", "sqlite", "memory"),
            partition_keys={"orders": "customer"},
        )
        load(backend)
        catalog = backend.collect_statistics()
        orders = catalog.table("orders")
        # Partitioned: fragments sum to the full table; the key column's
        # distinct counts are disjoint across shards and add up exactly.
        assert sum(orders.fragment_rows) == 24.0
        assert orders.row_count == 24.0
        assert orders.distinct_counts[0] == 4.0
        # Broadcast: complete on every shard, one copy's numbers are used.
        cities = catalog.table("cities")
        assert cities.row_count == 6.0
        assert cities.fragment_rows == (6.0, 6.0, 6.0)
        backend.close()


# ----------------------------------------------------------------------
# The cost model itself
# ----------------------------------------------------------------------
class TestCostModel:
    def model(self):
        return CostModel(
            StatisticsCatalog.from_rows({"orders": ORDERS, "cities": CITIES})
        )

    def test_full_scan_estimates_exact_rows(self):
        i, q, c = Variable("i"), Variable("q"), Variable("c")
        query = ConjunctiveQuery("scan", (i,), (RelationalAtom("orders", (c, i, q)),))
        estimate = self.model().estimate(query)
        assert estimate.cardinality == 24.0
        assert estimate.total == 24.0  # scan only, no joins

    def test_constant_selection_divides_by_distinct(self):
        i, q = Variable("i"), Variable("q")
        query = ConjunctiveQuery(
            "point", (i,), (RelationalAtom("orders", (Constant("c1"), i, q)),)
        )
        # 24 rows / 4 distinct customers = 6 estimated rows.
        assert self.model().estimate(query).cardinality == 6.0

    def test_join_selectivity_from_distinct_counts(self):
        i, q, w = Variable("i"), Variable("q"), Variable("w")
        query = ConjunctiveQuery(
            "join",
            (w,),
            (
                RelationalAtom("orders", (w, i, q)),
                RelationalAtom("cities", (i, w)),
            ),
        )
        estimate = self.model().estimate(query)
        # Hand-checked System-R arithmetic: two shared variables, one with
        # 24 distinct values (orders.order_id/cities.city_id) and one with
        # 4 vs 3 (customer/city): 24 * 6 / 24 / 4 = 1.5.
        assert estimate.cardinality == pytest.approx(1.5)
        assert estimate.scan_cost == 30.0
        assert estimate.join_cost == pytest.approx(1.5)

    def test_union_prices_per_disjunct(self):
        from repro.logical.queries import UnionQuery

        i, q = Variable("i"), Variable("q")
        one = ConjunctiveQuery(
            "d1", (i,), (RelationalAtom("orders", (Constant("c1"), i, q)),)
        )
        two = ConjunctiveQuery(
            "d2", (i,), (RelationalAtom("orders", (Constant("c2"), i, q)),)
        )
        union_estimate = self.model().estimate(UnionQuery("u", (one, two)))
        assert union_estimate.cardinality == 12.0
        assert union_estimate.scan_cost == 48.0

    def test_rank_disagrees_with_scan_cost_on_weak_joins(self):
        """Join-order awareness: scan-sum ranking and model ranking differ."""
        catalog = StatisticsCatalog.from_rows(
            {
                # key-joined pair: 60 rows each, join column is a key
                "K1": [(i, i) for i in range(60)],
                "K2": [(i, -i) for i in range(60)],
                # weak-joined pair: 50 rows each, join column has 2 values
                "W1": [(i % 2, i) for i in range(50)],
                "W2": [(i % 2, -i) for i in range(50)],
            }
        )
        x, y, z = Variable("x"), Variable("y"), Variable("z")
        keyed = ConjunctiveQuery(
            "keyed", (y,), (RelationalAtom("K1", (x, y)), RelationalAtom("K2", (x, z)))
        )
        weak = ConjunctiveQuery(
            "weak", (y,), (RelationalAtom("W1", (x, y)), RelationalAtom("W2", (x, z)))
        )
        scan_sum = SimpleCostEstimator(catalog.to_table_statistics())
        assert scan_sum.estimate(weak) < scan_sum.estimate(keyed)
        ranked = CostModel(catalog).rank([keyed, weak])
        assert ranked[0][1] is keyed  # 1250 intermediate rows vs 60

    def test_estimates_track_actuals_on_random_workload(self, query_generator):
        """Sanity bounds: estimated vs actual cardinality on real data."""
        configuration = medical.build_configuration()
        executor = MarsExecutor(configuration, backend="memory")
        model = CostModel(executor.collect_statistics())
        generator = query_generator(executor.backend, seed=20260725)
        checked = 0
        log_errors = []
        for index in range(40):
            query = generator.conjunctive(f"est{index}")
            actual = len(executor.backend.execute(query, distinct=False))
            estimate = model.cardinality(query)
            cross_product = 1.0
            for atom in query.relational_body:
                cross_product *= max(1.0, model.estimate_rows(atom.relation))
            assert estimate >= 1.0
            assert estimate <= cross_product
            if actual:
                log_errors.append(abs(math.log10(estimate / actual)))
                checked += 1
        assert checked >= 10, "generator produced too few non-empty answers"
        # Uniformity assumptions are wrong in places, but the estimates must
        # stay in the right ballpark: median within ~1 order of magnitude.
        log_errors.sort()
        assert log_errors[len(log_errors) // 2] <= 1.0
        executor.close()


# ----------------------------------------------------------------------
# Cost-based plan selection in MarsSystem
# ----------------------------------------------------------------------
class TestCostBasedPlanSelection:
    def star_configuration(self):
        parameters = StarParameters(corners=2)
        configuration = star.build_configuration(parameters)
        # Declared statistics: the redundant view is huge, the shredded
        # base tables are small (the administrator knows the view blew up).
        configuration.statistics.set_cardinality("V1", 500_000.0)
        configuration.statistics.set_cardinality("R_store", 40.0)
        configuration.statistics.set_cardinality("S1_store", 20.0)
        configuration.statistics.set_cardinality("S2_store", 20.0)
        return parameters, configuration

    def test_rule_based_and_cost_based_choices_differ(self):
        parameters, configuration = self.star_configuration()
        query = star.client_query(parameters)

        # Rule-based: a statistics-blind estimator reduces to the syntactic
        # heuristic "fewer atoms is cheaper" and grabs the single-view plan.
        rule_system = MarsSystem(configuration, estimator=SimpleCostEstimator())
        rule_best = rule_system.reformulate(query).best
        assert "V1" in rule_best.relation_names()

        # Cost-based (the default): the declared statistics price the view
        # plan at ~500k and the base-table join at a few hundred.
        cost_system = MarsSystem(configuration)
        reformulation = cost_system.reformulate(query)
        assert "V1" not in reformulation.best.relation_names()
        assert {"R_store", "S1_store", "S2_store"} <= set(
            reformulation.best.relation_names()
        )

    def test_estimate_recorded_in_cached_plan(self):
        from repro.serve import PlanCache

        parameters, configuration = self.star_configuration()
        query = star.client_query(parameters)
        system = MarsSystem(configuration, plan_cache=PlanCache(maxsize=8))
        reformulation = system.reformulate(query)
        assert reformulation.cost_estimate is not None
        assert reformulation.best_cost == reformulation.cost_estimate.total
        # Every ranked candidate is recorded, cheapest first; the huge view
        # plan appears with its repellent price tag.
        assert len(reformulation.candidate_costs) >= 2
        costs = [cost for _name, cost in reformulation.candidate_costs]
        assert costs == sorted(costs)
        assert costs[-1] >= 500_000.0
        # The ranked result is what the cache serves back.
        cached = system.reformulate(query)
        assert cached is reformulation

    def test_attach_statistics_replaces_declared_numbers(self):
        parameters, configuration = self.star_configuration()
        query = star.client_query(parameters)
        system = MarsSystem(configuration)
        assert "V1" not in system.reformulate(query).best.relation_names()
        # Measured statistics contradict the declarations: the view is in
        # fact tiny and the base tables huge.
        catalog = StatisticsCatalog.from_configuration(configuration)
        catalog.add(profile_rows("V1", [(i, i, i) for i in range(5)]))
        for name in ("R_store", "S1_store", "S2_store"):
            catalog.add(profile_rows(name, [(i, i % 7) for i in range(3000)]))
        system.attach_statistics(catalog)
        assert "V1" in system.reformulate(query).best.relation_names()

    def test_injected_estimator_rejects_attach(self):
        from repro.errors import ReformulationError

        _parameters, configuration = self.star_configuration()
        system = MarsSystem(configuration, estimator=SimpleCostEstimator())
        with pytest.raises(ReformulationError):
            system.attach_statistics(StatisticsCatalog())


# ----------------------------------------------------------------------
# Cost-based shard routing
# ----------------------------------------------------------------------
def broadcast_heavy_backend(shards=4):
    """A small partitioned table joined against a big broadcast table."""
    backend = ShardedBackend(
        shards=shards,
        children="memory",
        partition_keys={"P": "k"},
    )
    backend.create_table("P", 2, ("k", "v"))
    backend.create_table("B", 2, ("v", "w"))
    backend.insert_many("P", [(i, i % 4) for i in range(8)])
    backend.insert_many("B", [(i % 4, i) for i in range(2000)])
    return backend


def co_partitioned_query():
    k, v, w = Variable("k"), Variable("v"), Variable("w")
    return ConjunctiveQuery(
        "co", (k, w), (RelationalAtom("P", (k, v)), RelationalAtom("B", (v, w)))
    )


class TestCostBasedRouting:
    def test_model_overrides_scatter_with_gather(self):
        backend = broadcast_heavy_backend()
        query = co_partitioned_query()
        # Fixed rules: co-partitioned (single partitioned table) => scatter.
        assert backend.router.route(query).mode == MODE_SCATTER
        expected = sorted(backend.execute(query))
        backend.refresh_statistics()
        decision = backend.router.route(query)
        # Modeled: scatter re-scans the 2000-row broadcast table on every
        # shard; gather ships 8 partitioned rows and scans it once.
        assert decision.mode == MODE_GATHER
        assert decision.cost_based
        assert decision.alternative_mode == MODE_SCATTER
        assert decision.estimated_cost < decision.alternative_cost
        assert "gather modeled cheaper" in decision.reason
        # Same answers either way — gather is always sound.
        assert sorted(backend.execute(query)) == expected
        stats = backend.stats().router
        assert stats.cost_based >= 1
        assert stats.cost_overrides >= 1
        backend.close()

    def test_model_keeps_scatter_when_it_is_cheaper(self):
        backend = ShardedBackend(
            shards=3, children="memory", partition_keys={"P": "k", "Q": "k"}
        )
        backend.create_table("P", 2, ("k", "v"))
        backend.create_table("Q", 2, ("k", "w"))
        backend.insert_many("P", [(i, i) for i in range(3000)])
        backend.insert_many("Q", [(i, -i) for i in range(3000)])
        backend.refresh_statistics()
        k, v, w = Variable("k"), Variable("v"), Variable("w")
        query = ConjunctiveQuery(
            "co2", (v, w), (RelationalAtom("P", (k, v)), RelationalAtom("Q", (k, w)))
        )
        decision = backend.router.route(query)
        # Both sides shard on the join key: scattering splits the join work
        # three ways, gathering would ship all 6000 rows to one place.
        assert decision.mode == MODE_SCATTER
        assert decision.cost_based
        assert decision.alternative_mode == MODE_GATHER
        assert decision.estimated_cost < decision.alternative_cost
        backend.close()

    def test_key_bound_query_still_routes_to_one_shard(self):
        """Regression: cost-based routing must not undo shard pruning."""
        backend = broadcast_heavy_backend()
        backend.refresh_statistics()
        v = Variable("v")
        query = ConjunctiveQuery(
            "kb", (v,), (RelationalAtom("P", (Constant(3), v)),)
        )
        before = backend.stats()
        rows = backend.execute(query)
        after = backend.stats()
        assert rows  # the constant exists in the data
        # Serving skips the single-shard annotation (hot path); asking for
        # it (as explain does) fills in the estimate.
        assert backend.router.route(query).estimated_cost is None
        decision = backend.router.route(query, annotate=True)
        assert decision.mode == MODE_SINGLE
        assert len(decision.shards) == 1
        assert decision.estimated_cost is not None
        assert after.router.single_shard - before.router.single_shard == 1
        executed = sum(after.executions_per_shard) - sum(before.executions_per_shard)
        assert executed == 1
        backend.close()

    def test_explain_surfaces_chosen_vs_alternative_costs(self):
        backend = broadcast_heavy_backend()
        backend.refresh_statistics()
        explain = backend.explain(co_partitioned_query())
        assert "est. cost" in explain
        assert "(scatter, rejected)" in explain
        backend.close()

    def test_clone_inherits_the_cost_model(self):
        backend = broadcast_heavy_backend()
        backend.refresh_statistics()
        clone = backend.clone()
        try:
            assert clone.router.route(co_partitioned_query()).mode == MODE_GATHER
        finally:
            clone.close()
            backend.close()

    def test_parameters_can_flip_the_choice(self):
        """The comparison really reads the model: pricey fetches favour scatter."""
        backend = broadcast_heavy_backend()
        catalog = backend.refresh_statistics()
        query = co_partitioned_query()
        assert backend.router.route(query).mode == MODE_GATHER
        # Same statistics, but shipping a row now costs a fortune: the
        # broadcast-heavy case that gather just won flips back to scatter.
        pricey = CostModel(catalog, CostParameters(fetch_cost_per_row=1000.0))
        backend.router.set_cost_model(pricey)
        decision = backend.router.route(query)
        assert decision.mode == MODE_SCATTER
        assert decision.cost_based
        backend.close()


# ----------------------------------------------------------------------
# Service-level surfacing
# ----------------------------------------------------------------------
class TestServiceSurfacing:
    def test_sharded_service_reports_cost_counters(self):
        configuration = medical.build_configuration()
        configuration.backend = "sharded"
        configuration.shard_count = 3
        with PublishingService(configuration, pool_size=2) as service:
            rows = service.publish(medical.client_query())
            assert rows
            router = service.stats().router
            assert router is not None
            assert router.queries >= 1
            assert router.cost_based >= 0
            assert router.cost_overrides <= router.cost_based
            # The template router got its model from the executor build.
            assert service.executor.backend.router.cost_model is not None
            # The system plans against the measured catalog.
            assert service.system.catalog is service_catalog(service)

    def test_executor_collect_statistics_remeasures_after_bulk_loads(self):
        """Regression: the sharded build-time catalog must not be served stale."""
        configuration = medical.build_configuration()
        configuration.backend = "sharded"
        configuration.shard_count = 2
        executor = MarsExecutor(configuration)
        table = executor.backend.table_names[0]
        built = executor.collect_statistics().row_count(table)
        rows = [tuple(row) for row in executor.backend.rows(table)]
        executor.backend.insert_many(table, rows)  # double the table
        fresh = executor.collect_statistics()
        assert fresh.row_count(table) == 2 * built
        # The router's model was re-fed in the same pass.
        assert executor.backend.statistics_catalog is fresh
        executor.close()

    def test_service_refresh_can_be_disabled(self):
        configuration = medical.build_configuration()
        with PublishingService(
            configuration, pool_size=1, refresh_statistics=False
        ) as service:
            assert not service.system._statistics_attached
            assert service.publish(medical.client_query())


def service_catalog(service):
    return service.system.catalog
