"""The operational tier: health model, SLOs, audit log, admin endpoint.

Covers, bottom-up:

* the :class:`~repro.obs.health.HealthCheck` registry and its worst-wins
  aggregation (a raising probe is a finding, not a crash);
* the :class:`~repro.obs.slo.SLOTracker` rolling windows and error-budget
  burn arithmetic (with an injected clock);
* the :class:`~repro.obs.audit.AuditLog` rotation, pruning, torn-tail
  tolerance and the audit-before-acknowledge raise contract;
* the :class:`~repro.obs.trace.TraceBuffer` sampling ring and the
  :func:`~repro.obs.trace.phase_breakdown` attribution;
* the :class:`~repro.obs.http.AdminServer` routes against plain lambdas
  (status codes, provider failures surfacing as 500s);
* the wired :class:`~repro.serve.PublishingService`: every endpoint live,
  the replica-kill → degraded → repaired → healthy arc with the scrape
  staying valid Prometheus text throughout, audit replay across a service
  restart, and ``tools/mars_top.py --once`` against a real port.
"""

import json
import subprocess
import sys
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.obs import (
    AuditError,
    AuditLog,
    AdminServer,
    CheckResult,
    DEGRADED,
    HEALTHY,
    HealthCheck,
    SLOTracker,
    Span,
    TraceBuffer,
    Tracer,
    UNHEALTHY,
    phase_breakdown,
    worst_status,
)
from repro.replica import ChangeSet
from repro.serve import PublishingService
from repro.workloads import medical, xmark

TOOLS = Path(__file__).resolve().parent.parent / "tools"


def small_xmark():
    return xmark.build_configuration(
        xmark.XMarkParameters(items_per_region=4, people=8, closed_auctions=12)
    )


def get(base, path):
    """``(status, parsed_body)`` for one GET; JSON bodies are decoded."""
    try:
        with urllib.request.urlopen(base + path, timeout=10.0) as response:
            status, body = response.status, response.read()
            content_type = response.headers.get("Content-Type", "")
    except urllib.error.HTTPError as error:
        status, body = error.code, error.read()
        content_type = error.headers.get("Content-Type", "")
    if "json" in content_type:
        return status, json.loads(body)
    return status, body.decode("utf-8")


# ----------------------------------------------------------------------
# Health model
# ----------------------------------------------------------------------
class TestHealthCheck:
    def test_worst_status_wins(self):
        assert worst_status([]) == HEALTHY
        assert worst_status([HEALTHY, HEALTHY]) == HEALTHY
        assert worst_status([HEALTHY, DEGRADED]) == DEGRADED
        assert worst_status([DEGRADED, UNHEALTHY, HEALTHY]) == UNHEALTHY
        with pytest.raises(ValueError, match="unknown health status"):
            worst_status(["fine"])

    def test_check_result_rejects_unknown_status(self):
        with pytest.raises(ValueError, match="unknown health status"):
            CheckResult("x", "sortof-ok")

    def test_report_aggregates_and_encodes_for_the_gauge(self):
        checks = HealthCheck()
        checks.register("a", lambda: CheckResult("a", HEALTHY))
        checks.register(
            "b", lambda: CheckResult("b", DEGRADED, reason="one replica down")
        )
        report = checks.report()
        assert report.status == DEGRADED
        assert report.value == 0.5
        assert report.reasons() == ("b: one replica down",)
        exported = report.to_dict()
        assert exported["status"] == DEGRADED
        assert [check["name"] for check in exported["checks"]] == ["a", "b"]
        assert json.dumps(exported)

    def test_raising_probe_becomes_an_unhealthy_result(self):
        checks = HealthCheck()
        checks.register("ok", lambda: CheckResult("ok", HEALTHY))

        def broken():
            raise OSError("disk fell off")

        checks.register("disk", broken)
        report = checks.report()
        assert report.status == UNHEALTHY
        assert report.value == 0.0
        disk = next(check for check in report.checks if check.name == "disk")
        assert "OSError" in disk.reason and "disk fell off" in disk.reason

    def test_register_replaces_and_unregister_removes(self):
        checks = HealthCheck()
        checks.register("x", lambda: CheckResult("x", UNHEALTHY))
        checks.register("x", lambda: CheckResult("x", HEALTHY))
        assert checks.report().status == HEALTHY
        checks.unregister("x")
        assert checks.names() == ()
        assert checks.report().status == HEALTHY


# ----------------------------------------------------------------------
# SLO tracking
# ----------------------------------------------------------------------
class TestSLOTracker:
    def test_violations_and_budget_burn(self):
        clock = [0.0]
        tracker = SLOTracker(
            0.1, objective=0.9, window_seconds=60.0, clock=lambda: clock[0]
        )
        for _ in range(19):
            assert tracker.observe("q", 0.05) is False
        assert tracker.observe("q", 0.5) is True
        (report,) = tracker.report()
        assert report.key == "q"
        assert report.requests == 20 and report.violations == 1
        assert report.window_requests == 20
        # 5% violations against a 10% error budget: burning at half rate.
        assert report.budget_burn == pytest.approx(0.5)
        assert not report.breached
        for _ in range(3):
            assert tracker.observe("q", 0.5) is True
        (report,) = tracker.report()
        assert report.budget_burn > 1.0
        assert report.breached
        assert json.dumps(report.to_dict())

    def test_window_trims_old_samples_but_lifetime_counters_do_not(self):
        clock = [0.0]
        tracker = SLOTracker(0.1, window_seconds=10.0, clock=lambda: clock[0])
        tracker.observe("q", 0.5)
        clock[0] = 100.0
        tracker.observe("q", 0.05)
        (report,) = tracker.report()
        assert report.window_requests == 1
        assert report.window_violations == 0
        assert report.requests == 2 and report.violations == 1
        assert report.budget_burn == 0.0

    def test_per_key_objective_override_and_worst_burn_first(self):
        tracker = SLOTracker(1.0, objective=0.5)
        tracker.set_objective("tight", target_p99=0.001)
        tracker.observe("tight", 0.5)  # violates its 1 ms target
        tracker.observe("loose", 0.5)  # well under the 1 s default
        reports = tracker.report()
        assert [report.key for report in reports] == ["tight", "loose"]
        assert reports[0].breached and not reports[1].breached

    def test_parameter_validation(self):
        with pytest.raises(ValueError, match="target"):
            SLOTracker(0.0)
        with pytest.raises(ValueError, match="objective"):
            SLOTracker(1.0, objective=1.0)
        with pytest.raises(ValueError, match="window"):
            SLOTracker(1.0, window_seconds=0.0)


# ----------------------------------------------------------------------
# Audit log
# ----------------------------------------------------------------------
class TestAuditLog:
    def test_rotation_and_pruning_by_size(self, tmp_path):
        log = AuditLog(tmp_path, max_bytes=120, max_files=2)
        for i in range(20):
            log.record({"kind": "publish", "i": i, "pad": "x" * 40})
        stats = log.stats()
        assert stats.rotations > 0
        assert stats.files <= 2
        assert stats.pruned_files > 0
        assert stats.records == 20
        # The newest entries survive pruning, oldest first on replay.
        replayed = [entry["i"] for entry in log.entries()]
        assert replayed == sorted(replayed)
        assert replayed[-1] == 19
        log.close()

    def test_reopen_resumes_the_highest_file(self, tmp_path):
        with AuditLog(tmp_path, max_bytes=80) as log:
            for i in range(5):
                log.record({"i": i, "pad": "y" * 30})
            files_before = log.stats().files
        with AuditLog(tmp_path, max_bytes=80) as log:
            log.record({"i": 5, "pad": "y" * 30})
            replayed = [entry["i"] for entry in log.entries()]
        assert replayed == [0, 1, 2, 3, 4, 5]
        assert files_before >= 1

    def test_torn_tail_is_skipped_on_replay(self, tmp_path):
        with AuditLog(tmp_path) as log:
            log.record({"i": 0})
            log.record({"i": 1})
        (path,) = list(Path(tmp_path).glob("audit-*.jsonl"))
        raw = path.read_bytes()
        path.write_bytes(raw + b'{"i": 2, "torn')  # crash mid-append
        with AuditLog(tmp_path) as log:
            assert [entry["i"] for entry in log.entries()] == [0, 1]

    def test_record_raises_once_closed(self, tmp_path):
        log = AuditLog(tmp_path)
        log.record({"ok": True})
        log.close()
        with pytest.raises(AuditError, match="closed"):
            log.record({"too": "late"})
        log.close()  # idempotent

    def test_rejects_bad_parameters(self, tmp_path):
        with pytest.raises(AuditError, match="fsync"):
            AuditLog(tmp_path, fsync="sometimes")
        with pytest.raises(AuditError, match="max_bytes"):
            AuditLog(tmp_path, max_bytes=0)

    def test_fsync_always_survives_reopen(self, tmp_path):
        with AuditLog(tmp_path, fsync="always") as log:
            log.record({"durable": True})
        with AuditLog(tmp_path) as log:
            assert [entry["durable"] for entry in log.entries()] == [True]


# ----------------------------------------------------------------------
# Trace buffer and phase attribution
# ----------------------------------------------------------------------
class TestTraceBuffer:
    def test_records_completed_traces_newest_first(self):
        tracer = Tracer(enabled=True)
        buffer = TraceBuffer(maxlen=2)
        for i in range(3):
            trace = tracer.trace("publish", index=i)
            with trace.root:
                pass
            assert buffer.record(trace) is True
        assert len(buffer) == 2
        recent = buffer.recent()
        assert [t["index"] for t in recent] == [2, 1]
        assert buffer.completed == 3 and buffer.recorded == 3
        assert json.dumps(recent)

    def test_sampling_keeps_every_nth(self):
        tracer = Tracer(enabled=True)
        buffer = TraceBuffer(maxlen=16, sample=3)
        kept = 0
        for i in range(9):
            trace = tracer.trace("publish", index=i)
            with trace.root:
                pass
            kept += buffer.record(trace)
        assert kept == 3
        assert buffer.completed == 9 and buffer.recorded == 3

    def test_disabled_traces_are_not_recorded(self):
        tracer = Tracer(enabled=False)
        buffer = TraceBuffer()
        assert buffer.record(tracer.trace("publish")) is False
        assert buffer.completed == 0

    def test_phase_breakdown_attributes_child_spans(self):
        root = Span("publish")
        root.add_phase("reformulate", 0.010)
        execute = root.add_phase("execute", 0.030)
        execute.add_phase("merge", 0.005)
        root.add_phase("pool.acquire", 0.002)
        phases = phase_breakdown(root)
        assert phases["reformulate"] == pytest.approx(0.010)
        assert phases["execute"] == pytest.approx(0.030)
        assert phases["merge"] == pytest.approx(0.005)
        assert phases["acquire"] == pytest.approx(0.002)
        # A reformulate span owns its children: the nested cache lookup
        # is not double-counted as a second phase.
        nested = Span("publish")
        reform = nested.add_phase("reformulate", 0.020)
        reform.add_phase("plan_cache.lookup", 0.001)
        assert phase_breakdown(nested) == {"reformulate": pytest.approx(0.020)}


# ----------------------------------------------------------------------
# Admin server against plain providers
# ----------------------------------------------------------------------
class TestAdminServer:
    def _server(self, **overrides):
        providers = dict(
            metrics_text=lambda: "# HELP demo_up_ratio d\n"
            "# TYPE demo_up_ratio gauge\ndemo_up_ratio 1\n",
            stats_snapshot=lambda: {"queries_served": 7},
            health_report=lambda: HealthCheck().report(),
            ready=lambda: True,
            event_tail=lambda kind, n: {"kind": kind, "n": n, "events": []},
            trace_recent=lambda n: {"n": n, "traces": []},
        )
        providers.update(overrides)
        return AdminServer(0, **providers)

    def test_routes_and_status_codes(self):
        with self._server() as server:
            base = server.url
            assert server.port and server.running
            status, text = get(base, "/metrics")
            assert status == 200 and "demo_up_ratio 1" in text
            status, stats = get(base, "/stats")
            assert status == 200 and stats["queries_served"] == 7
            status, health = get(base, "/health")
            assert status == 200 and health["status"] == HEALTHY
            status, ready = get(base, "/ready")
            assert status == 200 and ready["ready"] is True
            status, events = get(base, "/events?kind=replica.fenced&n=5")
            assert status == 200
            assert events["kind"] == "replica.fenced" and events["n"] == 5
            status, traces = get(base, "/traces/recent?n=2")
            assert status == 200 and traces["n"] == 2
            status, missing = get(base, "/nope")
            assert status == 404 and "/metrics" in missing["routes"]
        assert server.port is None and not server.running

    def test_unhealthy_is_503_and_not_ready_is_503(self):
        checks = HealthCheck()
        checks.register("x", lambda: CheckResult("x", UNHEALTHY, reason="down"))
        with self._server(
            health_report=checks.report, ready=lambda: False
        ) as server:
            status, health = get(server.url, "/health")
            assert status == 503 and health["status"] == UNHEALTHY
            assert health["checks"][0]["reason"] == "down"
            status, ready = get(server.url, "/ready")
            assert status == 503 and ready["ready"] is False

    def test_degraded_still_serves_200(self):
        checks = HealthCheck()
        checks.register("x", lambda: CheckResult("x", DEGRADED, reason="meh"))
        with self._server(health_report=checks.report) as server:
            status, health = get(server.url, "/health")
            assert status == 200 and health["status"] == DEGRADED

    def test_broken_provider_is_a_loud_500(self):
        def broken():
            raise RuntimeError("registry on fire")

        with self._server(metrics_text=broken) as server:
            status, body = get(server.url, "/metrics")
            assert status == 500
            assert "RuntimeError" in body and "registry on fire" in body
            # The other routes still serve.
            status, _ = get(server.url, "/stats")
            assert status == 200

    def test_post_is_rejected(self):
        with self._server() as server:
            request = urllib.request.Request(
                server.url + "/metrics", data=b"x", method="POST"
            )
            with pytest.raises(urllib.error.HTTPError) as caught:
                urllib.request.urlopen(request, timeout=10.0)
            assert caught.value.code == 405

    def test_start_stop_idempotent(self):
        server = self._server()
        server.start()
        server.start()
        port = server.port
        assert port is not None
        server.stop()
        server.stop()
        assert server.port is None


# ----------------------------------------------------------------------
# The wired service
# ----------------------------------------------------------------------
class TestServiceAdminEndpoint:
    def test_endpoints_reflect_live_service_state(self, tmp_path):
        with PublishingService(
            medical.build_configuration(),
            pool_size=2,
            admin_port=0,
            audit_dir=str(tmp_path / "audit"),
            slo_target_p99=5.0,
        ) as service:
            base = f"http://127.0.0.1:{service.admin_port}"
            service.publish(medical.client_query())
            status, stats = get(base, "/stats")
            assert status == 200
            assert stats["queries_served"] == 1
            assert stats["audit"]["records"] == 1
            assert stats["slo"][0]["requests"] == 1
            status, health = get(base, "/health")
            assert status == 200 and health["status"] == HEALTHY
            names = {check["name"] for check in health["checks"]}
            assert {"service", "pool"} <= names
            status, text = get(base, "/metrics")
            assert status == 200
            assert "mars_health_status 1" in text
            assert 'mars_slo_requests_total{query="DiagPrice"} 1' in text
            status, events = get(base, "/events?n=10")
            assert status == 200 and "counts" in events
            status, traces = get(base, "/traces/recent")
            assert status == 200 and traces["completed"] >= 1
            assert traces["traces"][0]["trace"]["name"] == "publish"
        # Teardown stopped the endpoint: the port now refuses.
        with pytest.raises(OSError):
            urllib.request.urlopen(base + "/ready", timeout=2.0)
        assert service.admin_port is None

    def test_admin_disabled_by_default(self):
        with PublishingService(
            medical.build_configuration(), pool_size=1
        ) as service:
            assert service.admin is None and service.admin_port is None

    def test_bind_failure_tears_the_service_down(self, tmp_path):
        with PublishingService(
            medical.build_configuration(), pool_size=1, admin_port=0
        ) as holder:
            with pytest.raises(OSError):
                PublishingService(
                    medical.build_configuration(),
                    pool_size=1,
                    admin_port=holder.admin_port,
                )

    def test_mars_top_once_renders_a_snapshot(self, tmp_path):
        with PublishingService(
            medical.build_configuration(),
            pool_size=1,
            admin_port=0,
            slo_target_p99=5.0,
        ) as service:
            service.publish(medical.client_query())
            result = subprocess.run(
                [
                    sys.executable,
                    str(TOOLS / "mars_top.py"),
                    "--once",
                    "--url",
                    f"http://127.0.0.1:{service.admin_port}",
                ],
                capture_output=True,
                text=True,
                timeout=60,
            )
        assert result.returncode == 0, result.stderr
        assert "health [OK] healthy" in result.stdout
        assert "queries served" in result.stdout
        assert "DiagPrice" in result.stdout

    def test_mars_top_unreachable_exits_nonzero(self):
        result = subprocess.run(
            [
                sys.executable,
                str(TOOLS / "mars_top.py"),
                "--once",
                "--url",
                "http://127.0.0.1:9",  # discard port: nothing listens
            ],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert result.returncode == 1
        assert "unreachable" in result.stderr


class TestReplicaHealthArc:
    def test_kill_degrade_repair_recover_and_audit_replays(self, tmp_path):
        """The acceptance arc: a replica dies under live publishes, /health
        degrades with a replica reason, repair restores K, /health returns
        to healthy — the scrape staying lint-valid Prometheus text at every
        step — and after the service is gone the audit log replays every
        acknowledged request's fingerprint and LSN."""
        sys.path.insert(0, str(TOOLS))
        try:
            from check_metrics import lint_scrape
        finally:
            sys.path.remove(str(TOOLS))
        query = xmark.query_item_names()
        audit_dir = str(tmp_path / "audit")
        service = PublishingService(
            small_xmark(),
            backend="replicated",
            pool_size=2,
            admin_port=0,
            audit_dir=audit_dir,
        )
        published_fingerprints = []
        update_lsns = []
        try:
            base = f"http://127.0.0.1:{service.admin_port}"

            def scrape_is_valid():
                status, text = get(base, "/metrics")
                assert status == 200
                failures, _families = lint_scrape(text)
                assert not failures, failures
                return text

            def health_gauge(text):
                line = next(
                    l
                    for l in text.splitlines()
                    if l.startswith("mars_health_status ")
                )
                return float(line.split()[-1])

            template = service.executor.backend
            service.publish(query)
            published_fingerprints.append(query.fingerprint_digest())
            assert health_gauge(scrape_is_valid()) == 1.0
            status, health = get(base, "/health")
            assert status == 200 and health["status"] == HEALTHY

            # Kill one replica; a live publish keeps flowing (failover).
            template.replicas[0].close()
            service.publish(query)
            published_fingerprints.append(query.fingerprint_digest())
            update_lsns.append(
                service.update(
                    ChangeSet.build(inserts={"itemName": [("during", "kill")]})
                )
            )
            status, health = get(base, "/health")
            assert status == 200  # degraded still serves
            assert health["status"] == DEGRADED
            replicas = next(
                check
                for check in health["checks"]
                if check["name"] == "replicas"
            )
            assert replicas["status"] == DEGRADED
            assert "replicas live" in replicas["reason"]
            assert health_gauge(scrape_is_valid()) == 0.5

            # Self-healing: repair back to K live copies.
            reports = service.repair_replicas()
            assert sum(len(report.repaired) for report in reports) == 1
            assert template.stats().live_replicas == template.replica_count
            status, health = get(base, "/health")
            assert status == 200 and health["status"] == HEALTHY
            assert health_gauge(scrape_is_valid()) == 1.0

            service.publish(query)
            published_fingerprints.append(query.fingerprint_digest())
        finally:
            service.close()

        # The audit log replays every acknowledged request after restart.
        with AuditLog(audit_dir) as audit:
            entries = list(audit.entries())
        publishes = [e for e in entries if e["kind"] == "publish"]
        updates = [e for e in entries if e["kind"] == "update"]
        assert [e["fingerprint"] for e in publishes] == published_fingerprints
        assert [e["lsn"] for e in updates] == update_lsns
        for entry in publishes:
            assert entry["phases"]
            assert "lsn" in entry and "seconds" in entry
