"""Observability: tracing, metrics, events and cost feedback.

Covers the acceptance criteria of the telemetry subsystem:

* a single ``publish()`` on the replicated-over-sharded configuration
  yields a JSON span tree covering plan-cache lookup, reformulation,
  routing, per-shard execution and merge;
* ``metrics()`` emits valid Prometheus text including publish-latency
  p50/p95/p99;
* a forced replica fence and an online rebalance each produce *ordered*
  event-log entries (with LSNs);
* the estimate-vs-actual report shows per-fingerprint cardinality error
  on the xmark workload;
* an 8-thread stress run leaves every counter and histogram total equal
  to the oracle count, and disabled tracing stays allocation-free.
"""

import json
import threading

import pytest

from repro.errors import StorageError
from repro.obs import (
    NULL_SPAN,
    NULL_TRACE,
    CostFeedback,
    EventLog,
    MetricsRegistry,
    POOL_CLONE_REPLACED,
    REBALANCE_COPY,
    REBALANCE_CUTOVER,
    REBALANCE_REPLAY,
    REBALANCE_STAGE,
    REPLICA_FAILOVER,
    REPLICA_FENCED,
    SLOW_QUERY,
    STATISTICS_REFRESH,
    Span,
    Tracer,
    current_span,
    q_error,
    timer,
    validate_metric_name,
)
from repro.replica import ChangeSet, ReplicatedBackend
from repro.serve import PublishingService
from repro.storage.backends.memory import MemoryBackend
from repro.storage.backends.sqlite import SQLiteBackend
from repro.workloads import medical, xmark


def small_xmark():
    return xmark.build_configuration(
        xmark.XMarkParameters(items_per_region=4, people=8, closed_auctions=12)
    )


# ----------------------------------------------------------------------
# Timer
# ----------------------------------------------------------------------
class TestTimer:
    def test_elapsed_runs_until_stop_freezes(self):
        clock = timer()
        first = clock.elapsed
        assert first >= 0.0
        frozen = clock.stop()
        assert frozen >= first
        assert clock.stop() == frozen  # idempotent
        assert clock.elapsed == frozen  # reads the frozen value

    def test_context_manager_form(self):
        with timer() as clock:
            assert clock.seconds is None
        assert clock.seconds is not None and clock.seconds >= 0.0


# ----------------------------------------------------------------------
# Spans and tracer
# ----------------------------------------------------------------------
class TestTracing:
    def test_ambient_span_nesting(self):
        assert current_span() is NULL_SPAN
        root = Span("root")
        with root:
            assert current_span() is root
            with current_span().child("inner") as inner:
                assert current_span() is inner
            assert current_span() is root
        assert current_span() is NULL_SPAN
        assert [child.name for child in root.children] == ["inner"]
        assert root.end is not None

    def test_disabled_tracer_is_allocation_free(self):
        tracer = Tracer(enabled=False)
        trace = tracer.trace("publish")
        assert trace is NULL_TRACE
        # the null span absorbs arbitrarily deep instrumentation without
        # allocating: every child IS the singleton
        span = trace.root
        assert span is NULL_SPAN
        assert span.child("a").child("b") is NULL_SPAN
        with span.child("c") as entered:
            assert entered is NULL_SPAN
        assert trace.to_dict() == {}
        assert trace.span_names() == []
        # force=True overrides the switch for explain(trace=True)
        assert tracer.trace("publish", force=True) is not NULL_TRACE

    def test_error_annotation_on_exception(self):
        root = Span("root")
        with pytest.raises(ValueError):
            with root:
                raise ValueError("boom")
        assert root.attributes["error"] == "ValueError"

    def test_add_phase_grafts_recorded_durations(self):
        root = Span("root")
        root.add_phase("chase", 0.25, offset=0.05, rounds=3)
        root.finish()
        entry = root.to_dict()
        child = entry["children"][0]
        assert child["name"] == "chase"
        assert child["offset_ms"] == pytest.approx(50.0, abs=0.001)
        assert child["duration_ms"] == pytest.approx(250.0, abs=0.001)
        assert child["attributes"]["rounds"] == 3

    def test_worker_thread_parents_through_captured_span(self):
        """Thread-locals do not cross threads; captured span objects do."""
        root = Span("root")
        with root:
            parent = current_span()

            def task():
                # the worker's own ambient stack is empty...
                assert current_span() is NULL_SPAN
                # ...but the captured parent attaches children fine
                with parent.child("shard.execute", shard=1):
                    pass

            worker = threading.Thread(target=task)
            worker.start()
            worker.join(timeout=10)
        assert [child.name for child in root.children] == ["shard.execute"]

    def test_trace_json_and_render(self):
        tracer = Tracer(enabled=True)
        trace = tracer.trace("publish", query="Q")
        with trace.root:
            with current_span().child("execute", rows=4):
                pass
        exported = json.loads(trace.to_json())
        assert exported["query"] == "Q"
        assert exported["trace"]["name"] == "publish"
        assert exported["trace"]["children"][0]["name"] == "execute"
        text = trace.render()
        assert "publish" in text and "execute" in text and "ms" in text


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------
class TestMetrics:
    def test_name_validation(self):
        validate_metric_name("mars_publishes_total", "counter")
        with pytest.raises(ValueError):
            validate_metric_name("MarsPublishes_total", "counter")
        with pytest.raises(ValueError):
            validate_metric_name("mars_publishes", "counter")  # no _total
        with pytest.raises(ValueError):
            validate_metric_name("mars_things", "gauge")  # no unit suffix

    def test_registered_once(self):
        registry = MetricsRegistry()
        first = registry.counter("obs_demo_total", "help")
        again = registry.counter("obs_demo_total", "other help")
        assert first is again
        with pytest.raises(ValueError):
            registry.gauge("obs_demo_total")
        with pytest.raises(ValueError):
            registry.counter("obs_demo_total", labels=("shard",))

    def test_counter_only_goes_up(self):
        registry = MetricsRegistry()
        counter = registry.counter("obs_ups_total")
        counter.inc()
        counter.inc(2)
        assert counter.value == 3.0
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_labeled_families(self):
        registry = MetricsRegistry()
        family = registry.counter("obs_shard_ops_total", labels=("shard",))
        family.labels(shard=0).inc()
        family.labels(shard=0).inc()
        family.labels(shard=1).inc()
        text = registry.render_prometheus()
        assert 'obs_shard_ops_total{shard="0"} 2' in text
        assert 'obs_shard_ops_total{shard="1"} 1' in text
        with pytest.raises(ValueError):
            family.labels(replica=0)

    def test_histogram_buckets_and_quantiles(self):
        registry = MetricsRegistry()
        hist = registry.histogram(
            "obs_latency_seconds", buckets=(0.01, 0.1, 1.0)
        )
        for value in (0.005, 0.005, 0.05, 0.5, 5.0):
            hist.observe(value)
        assert hist.count == 5
        assert hist.bucket_counts() == (2, 3, 4, 5)
        assert 0.0 < hist.quantile(0.50) <= 0.1
        assert hist.quantile(0.99) == 1.0  # +Inf reports the largest bound
        with pytest.raises(ValueError):
            hist.quantile(0.0)

    def test_prometheus_text_is_well_formed(self):
        registry = MetricsRegistry()
        registry.counter("obs_served_total", "queries").inc(3)
        hist = registry.histogram("obs_wait_seconds", "waits", buckets=(0.1, 1.0))
        hist.observe(0.05)
        text = registry.render_prometheus()
        lines = text.splitlines()
        assert "# HELP obs_served_total queries" in lines
        assert "# TYPE obs_served_total counter" in lines
        assert "# TYPE obs_wait_seconds histogram" in lines
        assert 'obs_wait_seconds_bucket{le="+Inf"} 1' in lines
        assert "obs_wait_seconds_count 1" in lines
        for line in lines:
            assert line.startswith("#") or " " in line  # name value pairs

    def test_collectors_run_at_export(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("obs_depth_entries")
        state = {"depth": 7}
        registry.add_collector(lambda: gauge.set(state["depth"]))
        snapshot = registry.snapshot()
        assert snapshot["obs_depth_entries"]["values"][0]["value"] == 7.0

    def test_eight_thread_stress_matches_oracle(self):
        """Counter and histogram totals equal the oracle after 8 threads."""
        registry = MetricsRegistry()
        counter = registry.counter("obs_stress_ops_total")
        hist = registry.histogram(
            "obs_stress_latency_seconds", buckets=(0.001, 0.01, 0.1)
        )
        threads_n, per_thread = 8, 400
        started = threading.Barrier(threads_n)
        errors = []

        def worker(index):
            try:
                started.wait(timeout=10)
                for i in range(per_thread):
                    counter.inc()
                    hist.observe(0.0005 * ((i + index) % 4 + 1))
            except Exception as error:  # pragma: no cover
                errors.append(error)

        workers = [
            threading.Thread(target=worker, args=(i,)) for i in range(threads_n)
        ]
        for worker_thread in workers:
            worker_thread.start()
        for worker_thread in workers:
            worker_thread.join(timeout=60)
        assert not errors
        oracle = threads_n * per_thread
        assert counter.value == oracle
        assert hist.count == oracle
        assert hist.bucket_counts()[-1] == oracle


# ----------------------------------------------------------------------
# Event log
# ----------------------------------------------------------------------
class TestEventLog:
    def test_sequences_are_dense_and_ordered(self):
        log = EventLog()
        log.record("a.one", detail=1)
        log.record("b.two")
        log.record("a.one")
        sequences = [event.sequence for event in log.events()]
        assert sequences == [1, 2, 3]
        assert log.count() == 3
        assert log.count("a.one") == 2
        assert log.kinds() == ("a.one", "b.two")

    def test_ring_bound_keeps_lifetime_counts(self):
        log = EventLog(maxlen=2)
        for i in range(5):
            log.record("k", i=i)
        assert len(log) == 2
        assert log.count("k") == 5  # lifetime, not retained
        assert [event.details["i"] for event in log.events()] == [3, 4]

    def test_lsn_source_stamps_events(self):
        state = {"lsn": 41}
        log = EventLog(lsn_source=lambda: state["lsn"])
        event = log.record("k")
        assert event.lsn == 41
        explicit = log.record("k", lsn=99)
        assert explicit.lsn == 99
        entry = json.loads(log.to_json())[0]
        assert entry == {"sequence": 1, "kind": "k", "lsn": 41,
                         "timestamp": entry["timestamp"]}

    def test_failed_recording_is_dropped_and_counted_not_raised(self):
        """Regression: record() used to swallow failures without a trace.

        A raising ``lsn_source`` (typical during service teardown) must
        neither take the caller down nor vanish silently — the drop is
        counted and ``record`` returns ``None``.
        """

        def broken_lsn_source():
            raise RuntimeError("backend already closed")

        log = EventLog(lsn_source=broken_lsn_source)
        assert log.record("k", detail="lost") is None
        assert log.record("k") is None
        assert log.dropped == 2
        assert len(log) == 0
        assert log.count("k") == 0
        # An explicit lsn bypasses the broken source: recording recovers.
        event = log.record("k", lsn=7)
        assert event is not None and event.lsn == 7
        assert log.dropped == 2


# ----------------------------------------------------------------------
# Cost feedback
# ----------------------------------------------------------------------
class TestCostFeedback:
    def test_q_error_is_symmetric_and_floored(self):
        assert q_error(10, 100) == q_error(100, 10) == 10.0
        assert q_error(0, 0) == 1.0  # both floored at one row
        assert q_error(1, 1) == 1.0

    def test_report_sorts_worst_first(self):
        feedback = CostFeedback()
        feedback.record("fp_a", "plan_a", 10.0, 5.0, 100, 0.01)
        feedback.record("fp_b", "plan_b", 10.0, 5.0, 20, 0.01)
        report = feedback.report()
        assert [entry.fingerprint for entry in report] == ["fp_a", "fp_b"]
        assert report[0].cardinality_q_error == 10.0
        assert report[1].cardinality_q_error == 2.0
        assert feedback.worst_q_error() == 10.0

    def test_replanned_fingerprint_resets_its_aggregate(self):
        feedback = CostFeedback()
        feedback.record("fp", "plan_a", 10.0, 5.0, 100, 0.01)
        feedback.record("fp", "plan_a", 10.0, 5.0, 100, 0.01)
        # fresh statistics re-ranked the candidates: new estimate
        feedback.record("fp", "plan_a", 100.0, 5.0, 100, 0.01)
        (entry,) = feedback.report()
        assert entry.samples == 1
        assert entry.cardinality_q_error == 1.0

    def test_thresholds_filter_the_report(self):
        feedback = CostFeedback()
        feedback.record("good", "p", 10.0, 1.0, 10, 0.01)
        feedback.record("bad", "p", 10.0, 1.0, 90, 0.01)
        assert len(feedback.report(q_threshold=2.0)) == 1
        assert len(feedback.report(min_samples=2)) == 0

    def test_bounded_eviction(self):
        feedback = CostFeedback(maxsize=2)
        for name in ("a", "b", "c"):
            feedback.record(name, "p", 1.0, 1.0, 1, 0.0)
        assert len(feedback) == 2
        assert {entry.fingerprint for entry in feedback.report()} == {"b", "c"}


# ----------------------------------------------------------------------
# Service integration: tracing
# ----------------------------------------------------------------------
class TestServiceTracing:
    def test_publish_span_tree_on_plain_service(self):
        with PublishingService(
            medical.build_configuration(), pool_size=2
        ) as service:
            query = medical.client_query()
            service.publish(query)
            names = service.last_trace.span_names()
            # a cold publish shows the cache miss and the C&B phases
            for expected in ("publish", "reformulate", "plan_cache.lookup",
                             "chase", "backchase.initial", "pool.acquire",
                             "execute"):
                assert expected in names, names
            service.publish(query)
            warm = service.last_trace.span_names()
            assert "chase" not in warm  # cache hit: no C&B phases
            assert "plan_cache.lookup" in warm

    def test_replicated_over_sharded_span_tree(self):
        """The acceptance span tree: one publish covers cache lookup,
        reformulation, routing, per-shard execution and merge — through
        the replica layer."""
        configuration = small_xmark()
        configuration.backend = "replicated"
        configuration.replica_count = 2
        configuration.replica_child = "sharded"
        with PublishingService(configuration, pool_size=2) as service:
            service.publish(xmark.query_item_names())
            exported = json.loads(service.last_trace.to_json())
            assert exported["query"] == "ItemNames"
            names = service.last_trace.span_names()
            for expected in ("publish", "plan_cache.lookup", "reformulate",
                             "route", "replica.read", "shard.execute",
                             "merge"):
                assert expected in names, names
            # the route span names the shards it fanned out to
            (route_span,) = [
                span for span in service.last_trace.root.walk()
                if span.name == "route"
            ]
            assert route_span.attributes["shards"]

    def test_tracing_disabled_is_freely_absorbed(self):
        with PublishingService(
            medical.build_configuration(), pool_size=2, tracing=False
        ) as service:
            rows = service.publish(medical.client_query())
            assert rows
            # nothing recorded, nothing allocated: the null singletons
            assert service.last_trace is NULL_TRACE
            assert service.tracer.trace("publish") is NULL_TRACE
            # explain(trace=True) still forces a real trace
            text = service.explain(medical.client_query(), trace=True)
            assert "publish" in text and "ms" in text
            assert service.last_trace is not NULL_TRACE

    def test_update_gets_a_span_tree_too(self):
        with PublishingService(small_xmark(), pool_size=1) as service:
            service.update(
                ChangeSet.build(inserts={"itemName": [("item_t1", "traced")]})
            )
            names = service.last_trace.span_names()
            assert names[0] == "update"
            assert "apply" in names and "log.append" in names
            assert service.last_trace.root.attributes["lsn"] == 1


# ----------------------------------------------------------------------
# Service integration: metrics
# ----------------------------------------------------------------------
class TestServiceMetrics:
    def test_prometheus_exposition_with_latency_quantiles(self):
        with PublishingService(
            medical.build_configuration(), pool_size=2
        ) as service:
            query = medical.client_query()
            for _ in range(5):
                service.publish(query)
            text = service.metrics()
            assert "# TYPE mars_publish_latency_seconds histogram" in text
            assert 'mars_publish_latency_seconds_bucket{le="+Inf"} 5' in text
            assert "mars_publishes_total 5" in text
            assert "mars_plan_cache_hit_ratio" in text
            exported = json.loads(service.metrics("json"))
            latency = exported["mars_publish_latency_seconds"]["values"][0]
            assert latency["count"] == 5
            for quantile in ("p50", "p95", "p99"):
                assert latency[quantile] > 0.0
            with pytest.raises(ValueError):
                service.metrics("xml")

    def test_eight_thread_publish_stress_matches_oracle(self):
        configuration = medical.build_configuration()
        queries = [medical.client_query(), medical.drug_usage_query()]
        threads_n, rounds = 8, 5
        with PublishingService(configuration, pool_size=4) as service:
            for query in queries:
                service.publish(query)  # warm the plan cache
            started = threading.Barrier(threads_n)
            errors = []

            def worker():
                try:
                    started.wait(timeout=10)
                    for _ in range(rounds):
                        for query in queries:
                            service.publish(query)
                except Exception as error:  # pragma: no cover
                    errors.append(error)

            workers = [
                threading.Thread(target=worker) for _ in range(threads_n)
            ]
            for worker_thread in workers:
                worker_thread.start()
            for worker_thread in workers:
                worker_thread.join(timeout=60)
            assert not errors
            oracle = len(queries) * (1 + threads_n * rounds)
            registry = service.registry
            assert registry.get("mars_publishes_total").value == oracle
            assert registry.get("mars_publish_latency_seconds").count == oracle
            assert service.stats().queries_served == oracle
            # the exported gauge agrees with the *Stats snapshot
            exported = json.loads(service.metrics("json"))
            checkouts = exported["mars_pool_checkouts_total"]["values"][0]
            assert checkouts["value"] == service.stats().pool.checkouts

    def test_router_cost_overrides_and_failovers_in_snapshot(self):
        configuration = medical.build_configuration()
        configuration.backend = "sharded"
        configuration.shard_count = 3
        with PublishingService(configuration, pool_size=2) as service:
            service.publish(medical.client_query())
            snapshot = service.stats().snapshot()
            assert "cost_overrides" in snapshot["router"]
            assert snapshot["router"]["queries"] >= 1
            assert snapshot["replica_failovers"] == 0
            assert snapshot["replica_fenced"] == 0
            assert json.dumps(snapshot)  # JSON-able throughout


# ----------------------------------------------------------------------
# Service integration: events
# ----------------------------------------------------------------------
class _FlakyBackend(MemoryBackend):
    """A memory backend whose reads fail while the switch is thrown."""

    def __init__(self, switch):
        super().__init__()
        self._switch = switch

    def execute(self, query, distinct=True):
        if self._switch["fail"]:
            raise StorageError("injected replica failure")
        return super().execute(query, distinct=distinct)


class TestServiceEvents:
    def test_read_failover_records_ordered_events(self):
        switch = {"fail": False}
        backend = ReplicatedBackend(
            children=[_FlakyBackend(switch), MemoryBackend()]
        )
        log = EventLog()
        backend.set_event_log(log)
        backend.create_table("r", 2, ("a", "b"))
        backend.insert_many("r", [(1, "x"), (2, "y")])
        switch["fail"] = True
        from repro.logical.atoms import RelationalAtom
        from repro.logical.queries import ConjunctiveQuery
        from repro.logical.terms import Variable

        x, y = Variable("x"), Variable("y")
        query = ConjunctiveQuery("q", (x, y), (RelationalAtom("r", (x, y)),))
        for _ in range(3):
            assert len(backend.execute(query)) == 2  # failed over
        events = log.events(REPLICA_FAILOVER)
        assert len(events) >= 1
        sequences = [event.sequence for event in events]
        assert sequences == sorted(sequences)
        assert events[0].details["replica"] == 0
        backend.close()

    def test_forced_fence_produces_ordered_lsn_stamped_events(self):
        """A replica that misses a write is fenced; the service event log
        records it in order, stamped with the write LSN."""
        configuration = small_xmark()
        template = ReplicatedBackend(
            children=[MemoryBackend(), SQLiteBackend(check_same_thread=False)]
        )
        with PublishingService(
            configuration, backend=template, pool_size=1
        ) as service:
            assert service.stats().replicas.live_replicas == 2
            # memory stores any Python value; SQLite cannot bind a tuple —
            # the SQLite replica misses the write and must be fenced
            lsn = service.update(
                ChangeSet.build(inserts={"itemName": [(("bad", "key"), "v")]})
            )
            fences = service.events.events(REPLICA_FENCED)
            assert len(fences) >= 1
            assert fences[0].details["engine"] == "sqlite"
            assert fences[0].lsn is not None and fences[0].lsn <= lsn
            sequences = [event.sequence for event in fences]
            assert sequences == sorted(sequences)
            stats = service.stats()
            assert stats.replicas.fenced == 1
            assert stats.replica_fenced >= 1
            assert stats.snapshot()["replicas"]["fenced"] == 1
        template.close()

    def test_rebalance_emits_ordered_stage_events(self):
        configuration = small_xmark()
        configuration.backend = "sharded"
        configuration.shard_count = 2
        with PublishingService(configuration, pool_size=1) as service:
            report = service.rebalance(shards=3)
            assert report.new_shard_count == 3
            order = [
                event for event in service.events.events()
                if event.kind.startswith("rebalance.")
            ]
            kinds = [event.kind for event in order]
            assert kinds[0] == REBALANCE_STAGE
            assert REBALANCE_COPY in kinds and REBALANCE_REPLAY in kinds
            assert kinds[-1] == REBALANCE_CUTOVER
            sequences = [event.sequence for event in order]
            assert sequences == sorted(sequences)
            cutover = order[-1]
            assert cutover.details["new_shards"] == 3
            # the refresh after the cutover is also on the log
            refreshes = service.events.events(STATISTICS_REFRESH)
            assert refreshes and refreshes[-1].details["reason"] == "rebalance"
            assert refreshes[-1].sequence > cutover.sequence

    def test_drift_refresh_event(self):
        with PublishingService(
            small_xmark(), pool_size=1, drift_threshold=0.05
        ) as service:
            rows = [(f"item_bulk_{i}", f"g{i}") for i in range(40)]
            service.update(ChangeSet.build(inserts={"itemName": rows}))
            refreshes = service.events.events(STATISTICS_REFRESH)
            assert refreshes and refreshes[0].details["reason"] == "drift"

    def test_pool_clone_replacement_event(self):
        from repro.replica.changeset import MutationLog
        from repro.serve.pool import ConnectionPool

        template = SQLiteBackend(check_same_thread=False)
        template.create_table("r", 2, ("a", "b"))
        log = MutationLog()
        events = EventLog()
        pool = ConnectionPool(
            template, size=1, mutation_log=log, events=events, label="p"
        )
        connection = pool.acquire()
        # a log entry SQLite cannot apply poisons checkin replay: the
        # clone is discarded and replaced from the template
        log.append(ChangeSet.build(inserts={"r": [((1, 2), "bad")]}))
        with pytest.raises(Exception):
            pool.release(connection)
        recorded = events.events(POOL_CLONE_REPLACED)
        assert len(recorded) == 1
        assert recorded[0].details["replaced"] is True
        assert recorded[0].details["pool"] == "p"
        # the pool still serves: the replacement is checked out fine
        with pool.connection() as replacement:
            assert replacement is not connection
        pool.close()
        template.close()

    def test_slow_query_log_threshold_and_sampling(self):
        with PublishingService(
            medical.build_configuration(),
            pool_size=1,
            slow_query_seconds=0.0,  # every publish qualifies
            slow_query_sample=2,  # ...but only every 2nd is recorded
        ) as service:
            query = medical.client_query()
            for _ in range(6):
                service.publish(query)
            slow = service.slow_queries()
            assert len(slow) == 3  # 1st, 3rd, 5th
            assert all(event.kind == SLOW_QUERY for event in slow)
            assert slow[0].details["query"] == query.name
            assert service.registry.get("mars_slow_queries_total").value == 6
        with PublishingService(
            medical.build_configuration(), pool_size=1,
            slow_query_seconds=None,
        ) as service:
            service.publish(medical.client_query())
            assert service.slow_queries() == ()  # disabled by default


# ----------------------------------------------------------------------
# Service integration: cost feedback
# ----------------------------------------------------------------------
class TestServiceCostFeedback:
    def test_xmark_report_shows_per_fingerprint_cardinality_error(self):
        configuration = small_xmark()
        configuration.backend = "sharded"
        configuration.shard_count = 2
        with PublishingService(configuration, pool_size=2) as service:
            queries = xmark.query_suite()
            for query in queries:
                for _ in range(2):
                    service.publish(query)
            report = service.misestimation_report(min_samples=2)
            assert report  # estimates were recorded and aggregated
            fingerprints = {entry.fingerprint for entry in report}
            assert len(fingerprints) == len(report)  # per-fingerprint
            for entry in report:
                assert entry.samples == 2
                assert entry.cardinality_q_error >= 1.0
                assert entry.estimated_rows >= 0.0
                assert entry.plan_name
            errors = [entry.cardinality_q_error for entry in report]
            assert errors == sorted(errors, reverse=True)
            exported = [entry.to_dict() for entry in report]
            assert json.dumps(exported)

    def test_misestimation_triggers_statistics_refresh(self):
        with PublishingService(small_xmark(), pool_size=1) as service:
            query = xmark.query_item_names()
            for _ in range(3):
                service.publish(query)
            worst = service.cost_feedback.worst_q_error(min_samples=3)
            # a threshold above the observed error does nothing...
            assert not service.refresh_if_misestimated(
                q_threshold=worst + 1.0, min_samples=3
            )
            assert service.stats().statistics_refreshes == 0
            # ...at (or below) it, statistics are re-collected and the
            # feedback aggregates reset
            assert service.refresh_if_misestimated(
                q_threshold=worst, min_samples=3
            )
            stats = service.stats()
            assert stats.statistics_refreshes == 1
            assert len(service.cost_feedback) == 0
            refreshes = service.events.events(STATISTICS_REFRESH)
            assert refreshes[-1].details["reason"] == "misestimation"


# ----------------------------------------------------------------------
# Prometheus exposition edge cases
# ----------------------------------------------------------------------
class TestExpositionEdgeCases:
    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        gauge = registry.gauge(
            "demo_escape_ratio", "label-escaping fixture", labels=("path",)
        )
        nasty = 'a"b\\c\nend'
        gauge.labels(path=nasty).set(1.0)
        text = registry.render_prometheus()
        line = next(
            l for l in text.splitlines() if l.startswith("demo_escape_ratio{")
        )
        # The exposition stays one physical line: backslash, quote and
        # newline all arrive as their escape sequences.
        assert line == 'demo_escape_ratio{path="a\\"b\\\\c\\nend"} 1'
        # And the escaping round-trips: un-escaping recovers the value.
        start = line.index('"') + 1
        end = line.rindex('"')
        unescaped = (
            line[start:end]
            .replace("\\n", "\n")
            .replace('\\"', '"')
            .replace("\\\\", "\\")
        )
        assert unescaped == nasty

    def test_empty_histogram_exports_zero_quantiles(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("demo_idle_seconds", "never observed")
        assert histogram.quantile(0.99) == 0.0
        assert histogram.quantile(0.50) == 0.0
        text = registry.render_prometheus()
        assert "demo_idle_seconds_count 0" in text
        assert "demo_idle_seconds_sum 0" in text
        exported = json.loads(registry.to_json())
        values = exported["demo_idle_seconds"]["values"][0]
        assert values["count"] == 0
        assert values["p50"] == 0.0 and values["p99"] == 0.0

    def test_collector_exceptions_surface_loudly(self):
        registry = MetricsRegistry()
        registry.counter("demo_fine_total", "unaffected metric").inc()

        def broken_collector():
            raise KeyError("stats went away")

        registry.add_collector(broken_collector)
        with pytest.raises(RuntimeError, match="broken_collector"):
            registry.render_prometheus()
        with pytest.raises(RuntimeError, match="stats went away"):
            registry.to_json()


# ----------------------------------------------------------------------
# EventLog tail and lifetime counts
# ----------------------------------------------------------------------
class TestEventLogTail:
    def test_tail_returns_newest_n_oldest_first(self):
        log = EventLog(maxlen=16)
        for i in range(10):
            log.record("tick", index=i)
        tail = log.tail(3)
        assert [event.details["index"] for event in tail] == [7, 8, 9]
        assert log.tail(0) == ()
        assert log.tail(-5) == ()
        # Asking for more than retained returns everything retained.
        assert len(log.tail(99)) == 10

    def test_tail_filters_by_kind_before_counting(self):
        log = EventLog(maxlen=16)
        for i in range(4):
            log.record("a", index=i)
            log.record("b", index=i)
        tail = log.tail(2, kind="a")
        assert [event.kind for event in tail] == ["a", "a"]
        assert [event.details["index"] for event in tail] == [2, 3]

    def test_counts_survive_ring_eviction(self):
        log = EventLog(maxlen=2)
        for _ in range(5):
            log.record("evicted")
        log.record("kept")
        assert len(log) == 2
        assert log.counts() == {"evicted": 5, "kept": 1}


# ----------------------------------------------------------------------
# Slow-query phase breakdown and snapshot round trip
# ----------------------------------------------------------------------
class TestServiceOperationalStats:
    def test_slow_query_events_carry_phase_breakdown(self):
        with PublishingService(
            medical.build_configuration(),
            pool_size=1,
            slow_query_seconds=0.0,
        ) as service:
            service.publish(medical.client_query())
            events = service.slow_queries()
            assert events
            phases = events[-1].details["phases"]
            assert phases["reformulate"] > 0.0
            assert phases["execute"] > 0.0
            # Attribution is from the span tree when tracing is on.
            assert set(phases) <= {
                "reformulate",
                "route",
                "acquire",
                "execute",
                "merge",
                "apply",
                "log.append",
            }

    def test_slow_query_phases_without_tracing_fall_back_to_timers(self):
        with PublishingService(
            medical.build_configuration(),
            pool_size=1,
            tracing=False,
            slow_query_seconds=0.0,
        ) as service:
            service.publish(medical.client_query())
            phases = service.slow_queries()[-1].details["phases"]
            assert set(phases) == {"reformulate", "execute"}

    def test_snapshot_reports_uptime_version_and_round_trips_as_json(self):
        import repro

        with PublishingService(
            medical.build_configuration(), pool_size=1
        ) as service:
            service.publish(medical.client_query())
            snapshot = service.stats().snapshot()
            restored = json.loads(json.dumps(snapshot))
            assert restored == snapshot
            assert restored["version"] == repro.__version__
            assert restored["uptime_seconds"] >= 0.0
            # started_at is ISO-8601 with an explicit UTC offset.
            from datetime import datetime

            parsed = datetime.fromisoformat(restored["started_at"])
            assert parsed.tzinfo is not None
            # A later snapshot has strictly advanced uptime.
            later = service.stats().snapshot()
            assert later["uptime_seconds"] >= restored["uptime_seconds"]
            assert later["started_at"] == restored["started_at"]
