"""Unit tests for the XQuery front-end: AST, decorrelation and tagging."""

import pytest

from repro.errors import ParseError
from repro.logical import Constant, RelationalAtom, Variable
from repro.xbind import MixedStorage, evaluate_xbind
from repro.xmlmodel import XMLDocument, XMLNode, serialize
from repro.xquery import (
    Comparison,
    evaluate_blocks,
    ElementConstructor,
    FLWRExpr,
    PathExpression,
    TextLiteral,
    VariableRef,
    decorrelate,
    tag_results,
    xquery,
)


def example_2_1_query() -> FLWRExpr:
    """The paper's Example 2.1: group book titles under each author."""
    inner = xquery(
        for_clauses=[
            ("b", PathExpression("//book")),
            ("a1", PathExpression("./author/text()", source="b")),
            ("t", PathExpression("./title/text()", source="b")),
        ],
        where=[Comparison("a", "a1")],
        return_expr=ElementConstructor("title", [VariableRef("t")]),
    )
    return xquery(
        for_clauses=[("a", PathExpression("//author/text()", distinct=True))],
        return_expr=ElementConstructor(
            "item", [ElementConstructor("writer", [VariableRef("a")]), inner]
        ),
    )


@pytest.fixture
def books_document():
    root = XMLNode("bib")
    for title, authors in [("TAPL", ["Pierce"]), ("DBBook", ["Abiteboul", "Hull"])]:
        book = root.add("book")
        book.add("title", title)
        for author in authors:
            book.add("author", author)
    return XMLDocument("bib.xml", root)


class TestAst:
    def test_flwr_requires_return(self):
        with pytest.raises(ParseError):
            FLWRExpr(for_clauses=[], return_expr=None)

    def test_bound_variables(self):
        expr = example_2_1_query()
        assert expr.bound_variables() == ("a",)

    def test_path_expression_str(self):
        path = PathExpression("//author/text()", distinct=True)
        assert "distinct" in str(path)
        assert str(Comparison("a", "b", negated=True)) == "$a != $b"


class TestDecorrelation:
    def test_example_2_1_produces_two_blocks(self):
        decorrelated = decorrelate(example_2_1_query(), default_document="bib.xml")
        assert len(decorrelated.blocks) == 2
        outer, inner = decorrelated.blocks
        # Xbo(a) and Xbi(a, b, a1, t), as in the paper.
        assert [v.name for v in outer.head] == ["a"]
        assert [v.name for v in inner.head] == ["a", "b", "a1", "t"]
        # The inner block repeats the outer block as its first atom.
        first = inner.body[0]
        assert isinstance(first, RelationalAtom)
        assert first.relation == outer.name

    def test_where_clause_becomes_equality(self):
        decorrelated = decorrelate(example_2_1_query(), default_document="bib.xml")
        inner = decorrelated.blocks[1]
        from repro.logical import EqualityAtom

        equalities = [a for a in inner.body if isinstance(a, EqualityAtom)]
        assert len(equalities) == 1

    def test_template_structure(self):
        decorrelated = decorrelate(example_2_1_query(), default_document="bib.xml")
        template = decorrelated.template
        assert template.kind == "block"
        item = template.children[0]
        assert item.kind == "element" and item.tag == "item"
        assert item.children[0].tag == "writer"

    def test_unsupported_fragment_rejected(self):
        with pytest.raises(Exception):
            decorrelate(object())


class TestEndToEnd:
    def test_evaluate_blocks_and_tag(self, books_document):
        """Decorrelate, evaluate each block naively, then tag: the classic pipeline."""
        decorrelated = decorrelate(example_2_1_query(), default_document="bib.xml")
        storage = MixedStorage({"bib.xml": books_document})
        bindings = evaluate_blocks(decorrelated, storage)
        result = tag_results(decorrelated, bindings, "result.xml")
        writers = sorted(n.text for n in result.find_all("writer"))
        assert writers == ["Abiteboul", "Hull", "Pierce"]
        # every author's item contains the titles of their books
        items = result.find_all("item")
        by_writer = {
            item.find_all("writer")[0].text if item.find_all("writer") else item.children[0].text: item
            for item in items
        }
        pierce_titles = [n.text for n in by_writer["Pierce"].find_all("title")]
        assert pierce_titles == ["TAPL"]
        hull_titles = [n.text for n in by_writer["Hull"].find_all("title")]
        assert hull_titles == ["DBBook"]
        # the output serializes cleanly
        assert "<writer>" in serialize(result)

    def test_tagger_groups_by_correlation(self):
        decorrelated = decorrelate(example_2_1_query(), default_document="bib.xml")
        outer_name, inner_name = decorrelated.block_names
        bindings = {
            outer_name: [("alice",), ("bob",)],
            inner_name: [
                ("alice", "b1", "alice", "t1"),
                ("bob", "b2", "bob", "t2"),
                ("bob", "b3", "bob", "t3"),
            ],
        }
        result = tag_results(decorrelated, bindings)
        items = result.find_all("item")
        assert len(items) == 2

    def test_tagger_rejects_bad_arity(self):
        decorrelated = decorrelate(example_2_1_query(), default_document="bib.xml")
        outer_name = decorrelated.block_names[0]
        with pytest.raises(Exception):
            tag_results(decorrelated, {outer_name: [("a", "extra")]})


class TestAttributesAndLiterals:
    def test_attribute_and_text_literal_rendering(self):
        expr = xquery(
            for_clauses=[("p", PathExpression("//person"))],
            return_expr=ElementConstructor(
                "entry",
                [TextLiteral("name: "), VariableRef("n")],
                attributes=[("kind", VariableRef("n"))],
            ),
        )
        # add a binding for $n through a let-like second for clause
        expr = xquery(
            for_clauses=[
                ("p", PathExpression("//person")),
                ("n", PathExpression("./name/text()", source="p")),
            ],
            return_expr=expr.return_expr,
        )
        decorrelated = decorrelate(expr, default_document="people.xml")
        block = decorrelated.blocks[0]
        root = XMLNode("people")
        person = root.add("person")
        person.add("name", "ada")
        storage = MixedStorage({"people.xml": XMLDocument("people.xml", root)})
        bindings = {block.name: evaluate_xbind(block, storage)}
        result = tag_results(decorrelated, bindings)
        entry = result.find_all("entry")[0] if result.root.tag != "entry" else result.root
        assert entry.attributes["kind"] == "ada"
        assert entry.text.startswith("name: ")
