"""The golden-plan determinism suite.

Locks the canonical form of compiled plans three ways:

* **goldens** — freshly compiled workload queries must reproduce the
  identities, artifact hashes and compile statistics checked in under
  ``tests/golden_plans/`` (regenerate deliberately with
  ``tools/regen_golden_plans.py``);
* **process independence** — compiling the same query in fresh
  subprocesses under different ``PYTHONHASHSEED`` values yields
  byte-identical canonical JSON and the same identity (no hash-order or
  counter leakage into artifacts);
* **canonical-form laws** — variable-renaming invariance, body-order
  invariance, round-trip idempotence, symmetric-atom normalization, and
  the stable-JSON encoder's refusals (non-string keys, non-finite
  floats).
"""

import json
import os
import subprocess
import sys
from importlib import util as importlib_util
from pathlib import Path

import pytest

from repro.core.system import MarsSystem
from repro.logical.atoms import EqualityAtom, InequalityAtom, RelationalAtom
from repro.logical.queries import ConjunctiveQuery
from repro.logical.terms import Constant, Variable
from repro.plan import (
    canonical_query,
    canonical_reformulation,
    configuration_fingerprint,
    plan_identity,
    query_from_canonical,
    reformulation_from_canonical,
    stable_dumps,
    stable_loads,
)
from repro.workloads import medical

ROOT = Path(__file__).resolve().parent.parent
GOLDEN_DIR = ROOT / "tests" / "golden_plans"


def _load_regen_module():
    spec = importlib_util.spec_from_file_location(
        "regen_golden_plans", ROOT / "tools" / "regen_golden_plans.py"
    )
    module = importlib_util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def regen():
    return _load_regen_module()


@pytest.fixture(scope="module")
def fresh_documents(regen):
    """Every workload's golden document, compiled once for the module."""
    return {
        name: regen.golden_document(name, system, queries)
        for name, (system, queries) in regen.workload_suites().items()
    }


class TestGoldenPlans:
    def test_golden_files_exist(self):
        names = sorted(path.name for path in GOLDEN_DIR.glob("*.json"))
        assert names == ["medical.json", "star.json", "xmark.json"]

    @pytest.mark.parametrize("workload", ["medical", "star", "xmark"])
    def test_identities_match_goldens(self, regen, fresh_documents, workload):
        problems = regen.drift_report(
            workload,
            fresh_documents[workload],
            GOLDEN_DIR / f"{workload}.json",
        )
        assert not problems, "\n".join(problems)

    def test_identity_is_input_derived(self, fresh_documents):
        # The identity must be computable from the compile's inputs alone
        # (that is what makes a store lookup possible *before* compiling).
        document = fresh_documents["medical"]
        for entry in document["queries"].values():
            assert entry["identity"] == plan_identity(
                entry["query_digest"],
                document["configuration"],
                True,
            )

    def test_identity_components_are_load_bearing(self, fresh_documents):
        document = fresh_documents["medical"]
        entry = next(iter(document["queries"].values()))
        base = plan_identity(entry["query_digest"], document["configuration"], True)
        assert plan_identity(
            entry["query_digest"], document["configuration"], False
        ) != base
        assert plan_identity(
            entry["query_digest"], "0" * 64, True
        ) != base
        assert plan_identity("0" * 64, document["configuration"], True) != base


_SUBPROCESS_SCRIPT = """
import sys
sys.path.insert(0, {src!r})
from repro.core.system import MarsSystem
from repro.plan import canonical_reformulation, plan_identity, stable_dumps
from repro.workloads import medical

system = MarsSystem(medical.build_configuration())
query = medical.client_query()
reformulation = system.reformulate(query)
print(plan_identity(
    query.fingerprint_digest(), system.configuration_digest,
    system.cb_config.minimize,
))
print(stable_dumps(canonical_reformulation(reformulation)))
"""


class TestProcessIndependence:
    def test_hashseed_does_not_reach_artifacts(self, tmp_path):
        outputs = []
        for seed in ("0", "4242"):
            env = dict(os.environ)
            env["PYTHONHASHSEED"] = seed
            env["MARS_BACKEND"] = "memory"
            result = subprocess.run(
                [sys.executable, "-c",
                 _SUBPROCESS_SCRIPT.format(src=str(ROOT / "src"))],
                capture_output=True,
                text=True,
                env=env,
                check=True,
            )
            outputs.append(result.stdout)
        assert outputs[0] == outputs[1]
        identity, artifact = outputs[0].splitlines()
        assert len(identity) == 64
        assert stable_loads(artifact)["format"] == 1


def _example_query(a, b, c):
    return ConjunctiveQuery(
        "Q",
        (a, c),
        (
            RelationalAtom("edge", (a, b)),
            RelationalAtom("edge", (b, c)),
            RelationalAtom("label", (c, Constant("leaf"))),
            InequalityAtom(a, c),
        ),
    )


class TestCanonicalFormLaws:
    def test_variable_renaming_invariance(self):
        original = _example_query(Variable("x"), Variable("y"), Variable("z"))
        renamed = _example_query(
            Variable("chase_991"), Variable("v"), Variable("aa")
        )
        assert canonical_query(original) == canonical_query(renamed)

    def test_body_order_invariance(self):
        query = _example_query(Variable("x"), Variable("y"), Variable("z"))
        shuffled = ConjunctiveQuery(
            query.name, query.head, tuple(reversed(query.body))
        )
        assert canonical_query(query) == canonical_query(shuffled)

    def test_round_trip_is_idempotent(self):
        query = _example_query(Variable("x"), Variable("y"), Variable("z"))
        document = canonical_query(query)
        rebuilt = query_from_canonical(
            stable_loads(stable_dumps(document))
        )
        assert canonical_query(rebuilt) == document

    def test_symmetric_atoms_normalize_their_sides(self):
        def with_equality(left, right):
            return ConjunctiveQuery(
                "Q",
                (Variable("x"),),
                (
                    RelationalAtom("r", (Variable("x"), Variable("y"))),
                    EqualityAtom(left, right),
                ),
            )

        forward = with_equality(Variable("x"), Constant("k"))
        backward = with_equality(Constant("k"), Variable("x"))
        assert canonical_query(forward) == canonical_query(backward)

    def test_reformulation_roundtrip_is_idempotent(self):
        system = MarsSystem(medical.build_configuration())
        reformulation = system.reformulate(medical.client_query())
        artifact = stable_dumps(canonical_reformulation(reformulation))
        rebuilt = reformulation_from_canonical(stable_loads(artifact))
        assert stable_dumps(canonical_reformulation(rebuilt)) == artifact
        # Derived fields are reconstructed, not persisted.
        assert rebuilt.time_to_best == 0.0
        assert rebuilt.sql is None

    def test_derived_artifacts_stay_out_of_the_canonical_form(self):
        system = MarsSystem(medical.build_configuration())
        reformulation = system.reformulate(medical.client_query())
        before = stable_dumps(canonical_reformulation(reformulation))
        reformulation.best_cost = 123456.0
        reformulation.time_to_best = 99.0
        reformulation.sql = "SELECT 1"
        reformulation.candidate_costs = (("fake", 1.0),)
        assert stable_dumps(canonical_reformulation(reformulation)) == before


class TestStableJson:
    def test_sorted_compact_ascii(self):
        text = stable_dumps({"b": 1, "a": [True, None, "ü"]})
        assert text == '{"a":[true,null,"\\u00fc"],"b":1}'

    def test_rejects_non_string_keys(self):
        with pytest.raises((TypeError, ValueError)):
            stable_dumps({1: "a"})

    def test_rejects_non_finite_floats(self):
        with pytest.raises(ValueError):
            stable_dumps({"x": float("nan")})
        with pytest.raises(ValueError):
            stable_dumps({"x": float("inf")})


class TestConfigurationFingerprint:
    def test_version_and_content_are_load_bearing(self):
        configuration = medical.build_configuration()
        system = MarsSystem(configuration)
        base = configuration_fingerprint(
            configuration.version,
            system.dependencies,
            system.target_relations,
            system.cb_config,
        )
        assert base == system.configuration_digest
        assert configuration_fingerprint(
            configuration.version + 1,
            system.dependencies,
            system.target_relations,
            system.cb_config,
        ) != base
        assert configuration_fingerprint(
            configuration.version,
            system.dependencies[:-1],
            system.target_relations,
            system.cb_config,
        ) != base

    def test_dependency_order_does_not_matter(self):
        system = MarsSystem(medical.build_configuration())
        version = system.configuration.version
        forward = configuration_fingerprint(
            version, system.dependencies, system.target_relations
        )
        backward = configuration_fingerprint(
            version, list(reversed(system.dependencies)), system.target_relations
        )
        assert forward == backward


class TestRegenGuard:
    def _git(self, *args, cwd):
        subprocess.run(
            ["git", *args],
            cwd=cwd,
            check=True,
            capture_output=True,
            env={**os.environ,
                 "GIT_AUTHOR_NAME": "t", "GIT_AUTHOR_EMAIL": "t@t",
                 "GIT_COMMITTER_NAME": "t", "GIT_COMMITTER_EMAIL": "t@t"},
        )

    def test_refuses_on_a_dirty_tree(self, regen, tmp_path):
        self._git("init", "-q", cwd=tmp_path)
        (tmp_path / "tracked.txt").write_text("v1\n")
        self._git("add", "tracked.txt", cwd=tmp_path)
        self._git("commit", "-q", "-m", "seed", cwd=tmp_path)
        assert not regen.working_tree_dirty(tmp_path)
        regen.ensure_clean(tmp_path)  # clean tree: no exit
        (tmp_path / "tracked.txt").write_text("v2\n")
        assert regen.working_tree_dirty(tmp_path)
        with pytest.raises(SystemExit):
            regen.ensure_clean(tmp_path)

    def test_untracked_files_count_as_dirty(self, regen, tmp_path):
        self._git("init", "-q", cwd=tmp_path)
        (tmp_path / "straggler.json").write_text("{}\n")
        assert regen.working_tree_dirty(tmp_path)
