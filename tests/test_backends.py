"""The storage-backend subsystem: protocol, SQLite executor, equivalence.

The cross-backend suite is the end-to-end validation of the SQL generation:
for every reformulation produced by the medical, star and XMark example
configurations, the SQLite backend must return exactly the row multiset the
in-memory evaluator returns.
"""

import pytest

from repro.core import MarsConfiguration, MarsExecutor, MarsSystem
from repro.xbind import MixedStorage
from repro.xmlmodel import XMLDocument, XMLNode
from repro.xquery import (
    Comparison,
    ElementConstructor,
    PathExpression,
    VariableRef,
    decorrelate,
    evaluate_blocks,
    xquery,
)
from repro.errors import EvaluationError, SchemaError
from repro.logical.atoms import RelationalAtom
from repro.logical.queries import ConjunctiveQuery, UnionQuery
from repro.logical.terms import Constant, Variable
from repro.storage.backends import (
    MemoryBackend,
    SQLiteBackend,
    StorageBackend,
    available_backends,
    create_backend,
)
from repro.workloads import medical, star, xmark
from repro.workloads.star import StarParameters

BACKEND_NAMES = ("memory", "sqlite")
#: Engines that must satisfy the full StorageBackend protocol; "sharded"
#: runs here with its defaults (2 memory children, everything broadcast).
PROTOCOL_BACKENDS = BACKEND_NAMES + ("sharded",)


def multiset(rows):
    return sorted(map(repr, rows))


# ----------------------------------------------------------------------
# Protocol-level behaviour, identical across implementations
# ----------------------------------------------------------------------
@pytest.fixture(params=PROTOCOL_BACKENDS)
def backend(request):
    instance = create_backend(request.param)
    yield instance
    instance.close()


class TestBackendProtocol:
    def test_create_insert_rows(self, backend):
        backend.create_table("r", 2, ("a", "b"))
        backend.insert_many("r", [(1, "x"), (2, "y"), (1, "x")])
        assert backend.has_table("r")
        assert "r" in backend
        assert tuple(backend.rows("r")) == ((1, "x"), (2, "y"), (1, "x"))
        assert backend.cardinality("r") == 3
        assert backend.cardinalities() == {"r": 3}
        assert "r" in backend.table_names

    def test_clear_table(self, backend):
        backend.create_table("r", 1)
        backend.insert_many("r", [(1,), (2,)])
        backend.clear_table("r")
        assert backend.has_table("r")
        assert backend.cardinality("r") == 0

    def test_duplicate_create_raises(self, backend):
        backend.create_table("r", 1)
        with pytest.raises(SchemaError):
            backend.create_table("r", 1)

    def test_arity_mismatch_raises(self, backend):
        backend.create_table("r", 2)
        with pytest.raises(EvaluationError):
            backend.insert_many("r", [(1, 2, 3)])

    def test_unknown_table_raises(self, backend):
        with pytest.raises(EvaluationError):
            backend.rows("missing")
        assert backend.cardinality("missing") == 0

    def test_execute_join_with_constants(self, backend):
        backend.create_table("r", 2, ("a", "b"))
        backend.create_table("s", 2, ("b", "c"))
        backend.insert_many("r", [(1, 10), (2, 20), (3, 10)])
        backend.insert_many("s", [(10, "ten"), (20, "twenty")])
        x, y, z = Variable("x"), Variable("y"), Variable("z")
        query = ConjunctiveQuery(
            "q",
            (x, z),
            (RelationalAtom("r", (x, y)), RelationalAtom("s", (y, z))),
        )
        assert multiset(backend.execute(query)) == multiset(
            [(1, "ten"), (3, "ten"), (2, "twenty")]
        )
        selective = ConjunctiveQuery(
            "q1",
            (x,),
            (RelationalAtom("r", (x, Constant(10))),),
        )
        assert multiset(backend.execute(selective)) == multiset([(1,), (3,)])

    def test_execute_union_and_distinct(self, backend):
        backend.create_table("r", 1)
        backend.insert_many("r", [(1,), (1,), (2,)])
        x = Variable("x")
        query = ConjunctiveQuery("q", (x,), (RelationalAtom("r", (x,)),))
        union = UnionQuery("u", (query, query))
        assert multiset(backend.execute(union)) == multiset([(1,), (2,)])
        assert len(backend.execute(query, distinct=False)) == 3

    def test_execute_unknown_relation_raises(self, backend):
        x = Variable("x")
        query = ConjunctiveQuery("q", (x,), (RelationalAtom("nope", (x,)),))
        with pytest.raises(EvaluationError):
            backend.execute(query)

    def test_explain_mentions_relations(self, backend):
        backend.create_table("r", 2, ("a", "b"))
        backend.insert_many("r", [(1, 2)])
        x, y = Variable("x"), Variable("y")
        query = ConjunctiveQuery("q", (x,), (RelationalAtom("r", (x, y)),))
        plan = backend.explain(query)
        assert isinstance(plan, str) and plan

    def test_evaluate_blocks_over_backend_storage(self, backend):
        """The decorrelated-XQuery pipeline runs when the store is a backend."""
        root = XMLNode("bib")
        for title, author in [("TAPL", "Pierce"), ("DBBook", "Hull")]:
            book = root.add("book")
            book.add("title", title)
            book.add("author", author)
        document = XMLDocument("bib.xml", root)
        inner = xquery(
            for_clauses=[
                ("b", PathExpression("//book")),
                ("a1", PathExpression("./author/text()", source="b")),
                ("t", PathExpression("./title/text()", source="b")),
            ],
            where=[Comparison("a", "a1")],
            return_expr=ElementConstructor("title", [VariableRef("t")]),
        )
        outer = xquery(
            for_clauses=[("a", PathExpression("//author/text()", distinct=True))],
            return_expr=ElementConstructor(
                "item", [ElementConstructor("writer", [VariableRef("a")]), inner]
            ),
        )
        decorrelated = decorrelate(outer, default_document="bib.xml")
        storage = MixedStorage({"bib.xml": document}, database=backend)
        bindings = evaluate_blocks(decorrelated, storage)
        assert len(bindings) == 2
        outer_block = decorrelated.blocks[0]
        assert backend.has_table(outer_block.name)
        assert sorted(backend.rows(outer_block.name)) == [("Hull",), ("Pierce",)]


class TestBackendFactory:
    def test_registry_names(self):
        assert set(PROTOCOL_BACKENDS) <= set(available_backends())

    def test_default_is_memory(self, monkeypatch):
        monkeypatch.delenv("MARS_BACKEND", raising=False)
        assert isinstance(create_backend(None), MemoryBackend)

    def test_default_honours_environment(self, monkeypatch):
        monkeypatch.setenv("MARS_BACKEND", "sqlite")
        assert isinstance(create_backend(None), SQLiteBackend)
        assert MarsConfiguration("env").backend == "sqlite"

    def test_instance_passthrough(self):
        instance = MemoryBackend()
        assert create_backend(instance) is instance

    def test_class_spec(self):
        assert isinstance(create_backend(SQLiteBackend), SQLiteBackend)

    def test_unknown_name_raises(self):
        with pytest.raises(EvaluationError):
            create_backend("oracle9i")

    def test_configuration_hook(self, monkeypatch):
        monkeypatch.delenv("MARS_BACKEND", raising=False)
        configuration = MarsConfiguration("conf")
        assert isinstance(configuration.create_backend(), MemoryBackend)
        configuration.backend = "sqlite"
        assert isinstance(configuration.create_backend(), SQLiteBackend)

    def test_system_executor_hook(self):
        configuration = medical.build_configuration()
        system = MarsSystem(configuration)
        executor = system.executor(backend="sqlite")
        assert isinstance(executor.backend, SQLiteBackend)
        result = system.reformulate(medical.client_query())
        assert executor.execute_reformulation(result.best)

    def test_close_spares_injected_backend(self):
        """executor.close() must not close a backend instance it was handed."""
        configuration = medical.build_configuration()
        system = MarsSystem(configuration)
        result = system.reformulate(medical.client_query())
        shared = SQLiteBackend()
        first = MarsExecutor(configuration, backend=shared)
        first.close()
        # the shared backend is still usable by others
        second = MarsExecutor(configuration, backend=shared)
        assert second.execute_reformulation(result.best)
        shared.close()

    def test_close_owned_backend(self):
        configuration = medical.build_configuration()
        system = MarsSystem(configuration)
        result = system.reformulate(medical.client_query())
        executor = MarsExecutor(configuration, backend="sqlite")
        executor.close()
        with pytest.raises(EvaluationError):
            executor.execute_reformulation(result.best)


# ----------------------------------------------------------------------
# SQLite-specific behaviour
# ----------------------------------------------------------------------
class TestSQLiteBackend:
    def test_indexes_created_on_join_columns(self):
        backend = SQLiteBackend()
        backend.create_table("r", 2, ("a", "b"))
        backend.create_table("s", 2, ("b", "c"))
        x, y, z = Variable("x"), Variable("y"), Variable("z")
        query = ConjunctiveQuery(
            "q",
            (x, z),
            (RelationalAtom("r", (x, y)), RelationalAtom("s", (y, z))),
        )
        created = backend.ensure_indexes(query)
        assert "ix_r__b" in created and "ix_s__b" in created
        # idempotent on the second call
        assert backend.ensure_indexes(query) == []

    def test_explain_query_plan(self):
        backend = SQLiteBackend()
        backend.create_table("r", 2, ("a", "b"))
        backend.insert_many("r", [(1, 2)])
        x, y = Variable("x"), Variable("y")
        query = ConjunctiveQuery(
            "q", (y,), (RelationalAtom("r", (Constant(1), y)),)
        )
        plan = backend.explain(query)
        assert "sqlite plan" in plan
        assert "r" in plan

    def test_compile_query_is_parameterized(self):
        backend = SQLiteBackend()
        backend.create_table("r", 2, ("a", "b"))
        x = Variable("x")
        query = ConjunctiveQuery(
            "q", (x,), (RelationalAtom("r", (x, Constant("it's"))),)
        )
        statement = backend.compile_query(query)
        assert "?" in statement.sql
        assert statement.params == ("it's",)
        assert "it's" not in statement.sql

    def test_reopen_existing_database_file(self, tmp_path):
        """A second executor over the same file rebuilds instead of crashing."""
        path = str(tmp_path / "mars.db")
        configuration = medical.build_configuration()
        system = MarsSystem(configuration)
        result = system.reformulate(medical.client_query())
        first = MarsExecutor(configuration, backend=SQLiteBackend(path=path))
        rows_first = first.execute_reformulation(result.best)
        first.backend.close()
        reopened = SQLiteBackend(path=path)
        assert reopened.has_table("patientDiag")
        second = MarsExecutor(configuration, backend=reopened)
        rows_second = second.execute_reformulation(result.best)
        assert multiset(rows_first) == multiset(rows_second)
        # base tables were cleared on rebuild, not appended to
        assert second.backend.cardinality("patientDiag") == len(
            medical.DEFAULT_PATIENTS
        )
        second.close()

    def test_quoted_identifiers(self):
        backend = SQLiteBackend()
        backend.create_table("tag__catalog_xml", 2, ("node", "tag"))
        backend.insert_many("tag__catalog_xml", [("n1", "drug")])
        x = Variable("x")
        query = ConjunctiveQuery(
            "q",
            (x,),
            (RelationalAtom("tag__catalog_xml", (x, Constant("drug"))),),
        )
        assert backend.execute(query) == [("n1",)]


# ----------------------------------------------------------------------
# Cross-backend equivalence on the paper workloads (end-to-end SQL check)
# ----------------------------------------------------------------------
def equivalence_cases():
    medical_configuration = medical.build_configuration()
    yield "medical", medical_configuration, [
        medical.client_query(),
        medical.drug_usage_query(),
    ]
    star_parameters = StarParameters(corners=3, hub_count=12, corner_size=10)
    yield "star", star.build_configuration(star_parameters, with_instance=True), [
        star.client_query(star_parameters)
    ]
    xmark_configuration = xmark.build_configuration(
        xmark.XMarkParameters(items_per_region=6, people=10, closed_auctions=12)
    )
    yield "xmark", xmark_configuration, xmark.query_suite()


@pytest.mark.parametrize(
    "name,configuration,queries",
    list(equivalence_cases()),
    ids=lambda value: value if isinstance(value, str) else "",
)
class TestCrossBackendEquivalence:
    def test_backends_agree_on_every_reformulation(
        self, name, configuration, queries
    ):
        system = MarsSystem(configuration)
        memory_executor = MarsExecutor(configuration, backend="memory")
        sqlite_executor = MarsExecutor(configuration, backend="sqlite")
        # the sharded executor picks up the workload's partition-key hints
        # through the configuration (2 shards, one engine of each kind)
        sharded_executor = MarsExecutor(
            configuration,
            backend=configuration.create_backend(
                "sharded", shards=2, children=("memory", "sqlite")
            ),
        )
        others = (sqlite_executor, sharded_executor)
        for query in queries:
            result = system.reformulate(query)
            assert result.found, f"{name}: no reformulation for {query.name}"
            memory_rows = memory_executor.execute_reformulation(result.best)
            for other in others:
                other_rows = other.execute_reformulation(result.best)
                assert multiset(memory_rows) == multiset(other_rows), (
                    f"{name}/{query.name}: backends disagree"
                )
            # Every minimal reformulation must agree as well, not just the best.
            for candidate in result.minimal:
                expected = multiset(
                    memory_executor.execute_reformulation(candidate)
                )
                for other in others:
                    assert expected == multiset(
                        other.execute_reformulation(candidate)
                    ), f"{name}/{query.name}: disagreement on {candidate.name}"
        sharded_executor.backend.close()
        sqlite_executor.close()

    def test_sqlite_matches_original_answers(self, name, configuration, queries):
        """Reuse MarsExecutor.compare: reformulations on SQLite answer the query."""
        system = MarsSystem(configuration)
        executor = MarsExecutor(configuration, backend="sqlite")
        for query in queries:
            result = system.reformulate(query)
            comparison = executor.compare(query, result.best)
            assert comparison.answers_match, f"{name}/{query.name}"
        executor.close()

    def test_statistics_reflect_backend_contents(self, name, configuration, queries):
        executor = MarsExecutor(configuration, backend="sqlite")
        stats = executor.statistics()
        for relation, count in executor.backend.cardinalities().items():
            assert stats.cardinalities[relation] == float(count)
        executor.close()


# ----------------------------------------------------------------------
# The minimize-override engine cache (MarsSystem.reformulate satellite)
# ----------------------------------------------------------------------
class TestMinimizeOverrideCache:
    def test_override_engine_is_cached(self):
        configuration = medical.build_configuration()
        system = MarsSystem(configuration)
        assert system._override_engines == {}
        first = system.reformulate(medical.client_query(), minimize=False)
        assert first.found and first.initial is not None
        engine = system._override_engines[False]
        assert engine.config.minimize is False
        # the non-minimize config inherits every other flag unchanged
        assert engine.config.chase is system.cb_config.chase
        assert engine.config.backchase is system.cb_config.backchase
        second = system.reformulate(medical.drug_usage_query(), minimize=False)
        assert second.found
        assert system._override_engines[False] is engine

    def test_matching_override_uses_default_engine(self):
        configuration = medical.build_configuration()
        system = MarsSystem(configuration)
        result = system.reformulate(medical.client_query(), minimize=True)
        assert result.found
        assert system._override_engines == {}
