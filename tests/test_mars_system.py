"""Integration tests: the full MARS pipeline on the paper's scenarios.

These tests exercise configuration -> compilation -> chase & backchase ->
reformulation -> execution, and verify that reformulations return the same
answers as the original queries over the published documents.
"""

import pytest

from repro.core import MarsConfiguration, MarsExecutor, MarsSystem
from repro.engine import BackchaseConfig, CBConfig
from repro.errors import ReformulationError
from repro.workloads import medical, star, xmark
from repro.workloads.star import StarParameters


@pytest.fixture(scope="module")
def medical_system():
    configuration = medical.build_configuration()
    return configuration, MarsSystem(configuration)


class TestMedicalScenario:
    """Paper Example 1.1: mixed and redundant storage with GAV + LAV views."""

    def test_reformulation_found(self, medical_system):
        _, system = medical_system
        result = system.reformulate(medical.client_query())
        assert result.found
        assert result.best is not None
        assert result.sql is not None and "SELECT" in result.sql

    def test_best_uses_relational_redundancy(self, medical_system):
        """The drugPrice copy plus the patient tables win (paper's discussion)."""
        _, system = medical_system
        result = system.reformulate(medical.client_query())
        relations = result.best.relation_names()
        assert "patientDiag" in relations
        assert "patientDrug" in relations
        assert "drugPrice" in relations
        # no access to the (more expensive) native XML catalog
        assert not any(name.startswith("root__catalog") for name in relations)

    def test_all_reformulations_without_cost_pruning(self):
        configuration = medical.build_configuration()
        cb_config = CBConfig(backchase=BackchaseConfig(prune_by_cost=False))
        system = MarsSystem(configuration, cb_config=cb_config)
        result = system.reformulate(medical.client_query())
        assert len(result.minimal) >= 2
        bodies = [m.relation_names() for m in result.minimal]
        assert any("drugPrice" in names for names in bodies)
        assert any(
            any(name.startswith("tag__catalog") for name in names) for names in bodies
        )

    def test_reformulation_answers_match_original(self, medical_system):
        configuration, system = medical_system
        result = system.reformulate(medical.client_query())
        executor = MarsExecutor(configuration)
        comparison = executor.compare(medical.client_query(), result.best)
        assert comparison.answers_match
        assert len(comparison.original_rows) > 0

    def test_second_query_reformulates_to_patient_tables(self, medical_system):
        configuration, system = medical_system
        result = system.reformulate(medical.drug_usage_query())
        assert result.found
        relations = result.best.relation_names()
        assert "patientDrug" in relations
        executor = MarsExecutor(configuration)
        comparison = executor.compare(medical.drug_usage_query(), result.best)
        assert comparison.answers_match

    def test_minimize_off_returns_initial(self, medical_system):
        _, system = medical_system
        result = system.reformulate(medical.client_query(), minimize=False)
        assert result.found
        assert result.initial is not None
        assert len(result.initial.relational_body) >= len(result.best.relational_body)

    def test_reformulate_or_fail_raises_when_impossible(self):
        configuration = MarsConfiguration("empty")
        configuration.add_public_document("only_public.xml")
        system = MarsSystem(configuration)
        from repro.logical import Variable
        from repro.xbind import PathAtom, XBindQuery

        query = XBindQuery(
            "Q",
            (Variable("t"),),
            (PathAtom("//a/text()", Variable("t"), document="only_public.xml"),),
        )
        with pytest.raises(ReformulationError):
            system.reformulate_or_fail(query)


class TestStarScenario:
    """The synthetic star configuration behind Figures 5 and 8."""

    def test_views_only_reformulation(self):
        parameters = StarParameters(corners=3, include_base_storage=False)
        system = MarsSystem(star.build_configuration(parameters))
        result = system.reformulate(star.client_query(parameters))
        assert result.found
        assert result.best.relation_names() == frozenset({"V1", "V2"})

    def test_redundant_storage_gives_multiple_reformulations(self):
        parameters = StarParameters(corners=3)
        cb_config = CBConfig(backchase=BackchaseConfig(prune_by_cost=False))
        system = MarsSystem(star.build_configuration(parameters), cb_config=cb_config)
        result = system.reformulate(star.client_query(parameters))
        assert result.found
        assert len(result.minimal) >= 2
        view_subsets = {
            frozenset(n for n in m.relation_names() if n.startswith("V"))
            for m in result.minimal
        }
        # at least the all-views and a view-free (shredded base) reformulation
        assert frozenset({"V1", "V2"}) in view_subsets
        assert frozenset() in view_subsets

    def test_best_uses_views(self):
        parameters = StarParameters(corners=4)
        system = MarsSystem(star.build_configuration(parameters))
        result = system.reformulate(star.client_query(parameters))
        assert result.found
        assert any(name.startswith("V") for name in result.best.relation_names())

    def test_reformulation_matches_execution(self):
        parameters = StarParameters(corners=3, hub_count=8, corner_size=6)
        configuration = star.build_configuration(parameters, with_instance=True)
        system = MarsSystem(configuration)
        query = star.client_query(parameters)
        result = system.reformulate(query)
        executor = MarsExecutor(configuration)
        comparison = executor.compare(query, result.best)
        assert comparison.answers_match
        assert len(comparison.original_rows) > 0

    def test_without_key_constraint_views_cannot_be_combined(self):
        """Dropping the key XIC removes the 2^NV reformulations (paper 4.1)."""
        parameters = StarParameters(corners=3, include_base_storage=False)
        configuration = star.build_configuration(parameters)
        configuration.xics = [x for x in configuration.xics if x.name != "key_R_K"]
        system = MarsSystem(configuration)
        result = system.reformulate(star.client_query(parameters))
        assert not result.found


class TestXMarkScenario:
    @pytest.fixture(scope="class")
    def system(self):
        configuration = xmark.build_configuration(with_instance=False)
        return MarsSystem(configuration)

    def test_all_queries_reformulate(self, system):
        for query in xmark.query_suite():
            result = system.reformulate(query)
            assert result.found, f"no reformulation for {query.name}"

    def test_item_queries_use_views(self, system):
        result = system.reformulate(xmark.query_item_names())
        assert result.best.relation_names() == frozenset({"itemName"})
        result = system.reformulate(xmark.query_item_prices())
        assert result.best.relation_names() == frozenset({"itemName", "auctionPrice"})

    def test_region_query_requires_base_document(self, system):
        result = system.reformulate(xmark.query_region_items())
        assert any(name.startswith("child__") or name.startswith("desc__")
                   for name in result.best.relation_names())

    def test_answers_match_on_instance(self):
        configuration = xmark.build_configuration(
            xmark.XMarkParameters(items_per_region=4, people=6, closed_auctions=8),
            with_instance=True,
        )
        system = MarsSystem(configuration)
        executor = MarsExecutor(configuration)
        for query in (
            xmark.query_item_names(),
            xmark.query_person_cities(),
            xmark.query_item_prices(),
        ):
            result = system.reformulate(query)
            comparison = executor.compare(query, result.best)
            assert comparison.answers_match, query.name


class TestExecutor:
    def test_statistics_reflect_instance_data(self):
        configuration = medical.build_configuration()
        executor = MarsExecutor(configuration)
        stats = executor.statistics()
        assert stats.cardinality("patientDiag") == len(medical.DEFAULT_PATIENTS)
        assert stats.cardinality("drugPrice") == len(medical.DEFAULT_CATALOG)

    def test_published_documents_materialized_from_views(self):
        configuration = medical.build_configuration()
        executor = MarsExecutor(configuration)
        assert "case.xml" in executor.public_storage.documents
        case = executor.public_storage.documents["case.xml"]
        assert len(case.find_all("case")) > 0
