"""Unit tests for the in-memory relational engine and the XBind evaluator."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import EvaluationError, SchemaError
from repro.logical import (
    ConjunctiveQuery,
    EqualityAtom,
    InequalityAtom,
    RelationalAtom,
    RelationalSchema,
    UnionQuery,
    const,
    var,
)
from repro.storage import (
    InMemoryDatabase,
    TableStatistics,
    evaluate_query,
    evaluate_union,
    materialize_view,
    render_sql,
)
from repro.xbind import MixedStorage, PathAtom, XBindQuery, evaluate_xbind, make_xbind
from repro.xmlmodel import XMLDocument, XMLNode

x, y, z = var("x"), var("y"), var("z")


@pytest.fixture
def database():
    db = InMemoryDatabase()
    db.create_table("R", 2, ("a", "b"))
    db.create_table("S", 2, ("b", "c"))
    db.insert_many("R", [(1, 10), (2, 20), (3, 10)])
    db.insert_many("S", [(10, "x"), (20, "y")])
    return db


class TestInMemoryDatabase:
    def test_insert_and_cardinality(self, database):
        assert database.cardinality("R") == 3
        assert database.cardinality("missing") == 0

    def test_arity_validation(self, database):
        with pytest.raises(EvaluationError):
            database.insert("R", (1,))

    def test_duplicate_table_rejected(self, database):
        with pytest.raises(SchemaError):
            database.create_table("R", 2)

    def test_schema_backed_database(self):
        schema = RelationalSchema()
        schema.add_relation("T", ["k", "v"])
        db = InMemoryDatabase(schema)
        assert db.has_table("T")
        assert db.table("T").attributes == ("k", "v")


class TestEvaluateQuery:
    def test_join(self, database):
        query = ConjunctiveQuery(
            "Q", (x, z), (RelationalAtom("R", (x, y)), RelationalAtom("S", (y, z)))
        )
        rows = evaluate_query(query, database)
        assert sorted(rows) == [(1, "x"), (2, "y"), (3, "x")]

    def test_constant_selection(self, database):
        query = ConjunctiveQuery("Q", (x,), (RelationalAtom("R", (x, const(10))),))
        assert sorted(evaluate_query(query, database)) == [(1,), (3,)]

    def test_inequality_filter(self, database):
        query = ConjunctiveQuery(
            "Q",
            (x,),
            (RelationalAtom("R", (x, y)), InequalityAtom(y, const(10))),
        )
        assert evaluate_query(query, database) == [(2,)]

    def test_equality_normalization(self, database):
        query = ConjunctiveQuery(
            "Q",
            (x,),
            (
                RelationalAtom("R", (x, y)),
                RelationalAtom("S", (z, const("x"))),
                EqualityAtom(y, z),
            ),
        )
        assert sorted(evaluate_query(query, database)) == [(1,), (3,)]

    def test_distinct_semantics(self, database):
        query = ConjunctiveQuery("Q", (y,), (RelationalAtom("R", (x, y)),))
        rows = evaluate_query(query, database)
        assert sorted(rows) == [(10,), (20,)]
        bag = evaluate_query(query, database, distinct=False)
        assert len(bag) == 3

    def test_unknown_table_raises(self, database):
        query = ConjunctiveQuery("Q", (x,), (RelationalAtom("T", (x,)),))
        with pytest.raises(EvaluationError):
            evaluate_query(query, database)

    def test_union(self, database):
        q1 = ConjunctiveQuery("Q1", (x,), (RelationalAtom("R", (x, const(10))),))
        q2 = ConjunctiveQuery("Q2", (x,), (RelationalAtom("R", (x, const(20))),))
        rows = evaluate_union(UnionQuery("U", [q1, q2]), database)
        assert sorted(rows) == [(1,), (2,), (3,)]

    def test_materialize_view(self, database):
        query = ConjunctiveQuery(
            "V", (x, z), (RelationalAtom("R", (x, y)), RelationalAtom("S", (y, z)))
        )
        materialize_view("V", query, database)
        assert database.cardinality("V") == 3
        # re-materialization replaces the contents
        materialize_view("V", query, database)
        assert database.cardinality("V") == 3


class TestSqlRendering:
    def test_render_join_with_where(self, database):
        query = ConjunctiveQuery(
            "Q",
            (x, z),
            (
                RelationalAtom("R", (x, y)),
                RelationalAtom("S", (y, z)),
                InequalityAtom(z, const("y")),
            ),
        )
        sql = render_sql(query)
        assert "SELECT DISTINCT" in sql
        assert "FROM R t0, S t1" in sql
        assert "t0.c1 = t1.c0" in sql
        assert "<> 'y'" in sql

    def test_render_uses_schema_attribute_names(self):
        schema = RelationalSchema()
        schema.add_relation("R", ["key", "val"])
        query = ConjunctiveQuery("Q", (x,), (RelationalAtom("R", (x, const(3))),))
        sql = render_sql(query, schema)
        assert "t0.val = 3" in sql

    def test_string_literals_escaped(self):
        query = ConjunctiveQuery("Q", (x,), (RelationalAtom("R", (x, const("o'hara"))),))
        assert "'o''hara'" in render_sql(query)


class TestStatistics:
    def test_defaults_and_overrides(self):
        stats = TableStatistics()
        assert stats.cardinality("anything") == stats.default_cardinality
        stats.set_cardinality("R", 5)
        stats.set_weight("R", 2.0)
        assert stats.scan_cost("R") == 10.0

    def test_from_database(self, database):
        stats = TableStatistics.from_database(database, access_weights={"R": 3.0})
        assert stats.cardinality("R") == 3
        assert stats.weight("R") == 3.0


@pytest.fixture
def library_storage():
    root = XMLNode("library")
    for title, author in [("TAPL", "Pierce"), ("HoTT", "Univalent")]:
        book = root.add("book")
        book.add("title", title)
        book.add("author", author)
    document = XMLDocument("books.xml", root)
    database = InMemoryDatabase()
    database.create_table("prices", 2, ("title", "price"))
    database.insert_many("prices", [("TAPL", 60), ("HoTT", 0)])
    return MixedStorage({"books.xml": document}, database)


class TestXBindEvaluation:
    def test_absolute_and_relative_paths(self, library_storage):
        b, t, a = var("b"), var("t"), var("a")
        query = make_xbind(
            "Q",
            (t, a),
            (
                PathAtom("//book", b, document="books.xml"),
                PathAtom("./title/text()", t, source=b),
                PathAtom("./author/text()", a, source=b),
            ),
        )
        rows = evaluate_xbind(query, library_storage)
        assert sorted(rows) == [("HoTT", "Univalent"), ("TAPL", "Pierce")]

    def test_join_with_relational_atom(self, library_storage):
        b, t, p = var("b"), var("t"), var("p")
        query = make_xbind(
            "Q",
            (t, p),
            (
                PathAtom("//book", b, document="books.xml"),
                PathAtom("./title/text()", t, source=b),
                RelationalAtom("prices", (t, p)),
            ),
        )
        rows = evaluate_xbind(query, library_storage)
        assert ("TAPL", 60) in rows and ("HoTT", 0) in rows

    def test_inequality_filter(self, library_storage):
        b, t = var("b"), var("t")
        query = make_xbind(
            "Q",
            (t,),
            (
                PathAtom("//book", b, document="books.xml"),
                PathAtom("./title/text()", t, source=b),
                InequalityAtom(t, const("TAPL")),
            ),
        )
        assert evaluate_xbind(query, library_storage) == [("HoTT",)]

    def test_constant_target_filters(self, library_storage):
        b, t = var("b"), var("t")
        query = make_xbind(
            "Q",
            (t,),
            (
                PathAtom("//book", b, document="books.xml"),
                PathAtom("./author/text()", const("Pierce"), source=b),
                PathAtom("./title/text()", t, source=b),
            ),
        )
        assert evaluate_xbind(query, library_storage) == [("TAPL",)]

    def test_node_results_externalized_to_ids(self, library_storage):
        b = var("b")
        query = make_xbind(
            "Q", (b,), (PathAtom("//book", b, document="books.xml"),)
        )
        rows = evaluate_xbind(query, library_storage)
        assert all(isinstance(row[0], str) and "#" in row[0] for row in rows)

    def test_unsafe_query_rejected(self):
        with pytest.raises(SchemaError):
            make_xbind("Q", (var("t"),), (PathAtom("//book", var("b")),))

    def test_missing_document_raises(self, library_storage):
        query = make_xbind(
            "Q", (var("b"),), (PathAtom("//book", var("b"), document="nope.xml"),)
        )
        with pytest.raises(EvaluationError):
            evaluate_xbind(query, library_storage)


@given(st.lists(st.tuples(st.integers(0, 5), st.integers(0, 5)), max_size=20))
def test_property_join_matches_python_semantics(pairs):
    database = InMemoryDatabase()
    database.create_table("E", 2)
    database.insert_many("E", pairs)
    query = ConjunctiveQuery(
        "Q", (x, z), (RelationalAtom("E", (x, y)), RelationalAtom("E", (y, z)))
    )
    rows = set(evaluate_query(query, database))
    expected = {(a, d) for (a, b) in pairs for (c, d) in pairs if b == c}
    assert rows == expected
