"""Setup shim for environments without PEP 517 build isolation (offline installs)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.1.0",
    description=(
        "Reproduction of MARS: A System for Publishing XML from Mixed and "
        "Redundant Storage (VLDB 2003)"
    ),
    long_description=(
        "Chase & Backchase reformulation of XML queries over mixed "
        "relational/native-XML storage, with pluggable in-memory and SQLite "
        "execution backends."
    ),
    long_description_content_type="text/plain",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "License :: OSI Approved :: MIT License",
        "Operating System :: OS Independent",
        "Programming Language :: Python :: 3",
        "Programming Language :: Python :: 3.9",
        "Programming Language :: Python :: 3.10",
        "Programming Language :: Python :: 3.11",
        "Programming Language :: Python :: 3.12",
        "Topic :: Database :: Database Engines/Servers",
        "Topic :: Text Processing :: Markup :: XML",
    ],
    keywords="xml publishing query-reformulation chase backchase sqlite",
    extras_require={
        "test": ["pytest", "pytest-benchmark"],
    },
)
