"""Setup shim for environments without PEP 517 build isolation (offline installs)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of MARS: A System for Publishing XML from Mixed and "
        "Redundant Storage (VLDB 2003)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
)
