"""XMark-style auction site: realistic queries over mixed, tuned storage.

The auction document is stored natively and published as-is; redundant
relational materializations (item names, person directory, closed-auction
facts) speed up the common queries.  MARS reformulates each query of the
suite, showing which queries can be answered entirely from the relational
copies and which must touch the native XML store.

Run with:  python examples/xmark_publishing.py [--backend memory|sqlite]
"""

import argparse

from repro.core import MarsExecutor, MarsSystem
from repro.storage.backends import available_backends
from repro.workloads import xmark


def main(backend: str = "memory") -> None:
    configuration = xmark.build_configuration(
        xmark.XMarkParameters(items_per_region=10, people=20, closed_auctions=25),
        with_instance=True,
    )
    configuration.backend = backend
    system = MarsSystem(configuration)
    executor = MarsExecutor(configuration)

    print("published : auction.xml (stored natively, published as-is)")
    print("redundant : itemName, itemCategory, personDirectory, auctionPrice")
    print(f"backend   : {backend} (reformulations execute here)\n")
    print(f"{'query':<20s} {'reformulation':>14s} {'uses':<45s} {'answers ok':>10s}")

    for query in xmark.query_suite():
        result = system.reformulate(query)
        uses = ", ".join(sorted(result.best.relation_names()))
        comparison = executor.compare(query, result.best)
        print(
            f"{query.name:<20s} {result.time_to_best * 1000:12.1f}ms "
            f"{uses[:45]:<45s} {str(comparison.answers_match):>10s}"
        )

    print("\nQueries answered purely from relational copies avoid the XML store;")
    print("region-specific navigation falls back to the native document, as expected.")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--backend",
        default="memory",
        choices=available_backends(),
        help="storage backend executing the reformulations",
    )
    main(**vars(parser.parse_args()))
