"""Operations tour: the admin endpoint, health model, SLOs and audit log.

Builds a replicated publishing service on the XMark workload with the
whole operational tier enabled — an admin HTTP daemon on an ephemeral
port, per-fingerprint SLO tracking, and a durable query audit log — and
walks an operator's day:

* scraping ``/metrics`` and reading ``/stats``, ``/health`` and
  ``/ready`` over plain HTTP (the same routes ``tools/mars_top.py``
  polls);
* killing a replica under live publishes and watching ``/health`` flip
  to *degraded* with a replica reason while the service keeps serving;
* repairing back to K live copies and watching the verdict recover;
* SLO reports with error-budget burn against a deliberately tight
  latency target;
* replaying the on-disk audit log after the service is gone — every
  acknowledged publish and update, with fingerprints, LSNs and
  per-phase latency.

Run with:  python examples/operations.py
"""

import json
import tempfile
import urllib.error
import urllib.request

from repro.obs import AuditLog
from repro.replica import ChangeSet
from repro.serve import PublishingService
from repro.workloads import xmark


def banner(title: str) -> None:
    print(f"\n=== {title} " + "=" * max(0, 60 - len(title)))


def get(base: str, path: str):
    """``(status, body_text)`` for one GET against the admin endpoint."""
    try:
        with urllib.request.urlopen(base + path, timeout=10.0) as response:
            return response.status, response.read().decode("utf-8")
    except urllib.error.HTTPError as error:
        return error.code, error.read().decode("utf-8")


def show_health(base: str) -> None:
    status, body = get(base, "/health")
    report = json.loads(body)
    print(f"GET /health -> {status}  status={report['status']!r}")
    for check in report["checks"]:
        reason = f"  ({check['reason']})" if check.get("reason") else ""
        print(f"  {check['name']:<12} {check['status']}{reason}")


def main() -> None:
    configuration = xmark.build_configuration()
    configuration.backend = "replicated"
    configuration.replica_count = 2

    audit_dir = tempfile.mkdtemp(prefix="mars-audit-demo-")
    queries = [xmark.query_item_names(), *xmark.query_suite()[:2]]

    with PublishingService(
        configuration,
        pool_size=2,
        admin_port=0,  # ephemeral: read the bound port back
        audit_dir=audit_dir,
        slo_target_p99=0.0005,  # deliberately tight: 500us p99
    ) as service:
        base = f"http://127.0.0.1:{service.admin_port}"
        print(f"admin endpoint: {base}")
        print(f"audit log:      {audit_dir}")

        banner("Warm the service")
        for query in queries:
            for _ in range(3):
                service.publish(query)
        lsn = service.update(
            ChangeSet.build(inserts={"itemName": [("item-ops", "Ops Demo")]})
        )
        print(f"{3 * len(queries)} publishes, 1 update (LSN {lsn})")

        banner("GET /metrics (first lines of the scrape)")
        _, scrape = get(base, "/metrics")
        for line in scrape.splitlines()[:8]:
            print(line)
        print("...")

        banner("GET /stats (identity and counters)")
        _, body = get(base, "/stats")
        stats = json.loads(body)
        print(f"version {stats['version']}, up {stats['uptime_seconds']:.1f}s, "
              f"started {stats['started_at']}")
        print(f"queries_served={stats['queries_served']} "
              f"updates_applied={stats['updates_applied']} "
              f"last_write_lsn={stats['last_write_lsn']}")

        banner("Healthy service")
        show_health(base)

        banner("Kill a replica under live publishes")
        service.executor.backend.replicas[0].close()
        service.publish(queries[0])  # read fan-out fails over, still serves
        show_health(base)
        for line in scrape.splitlines():
            if line.startswith("mars_health_status"):
                print(f"(gauge before the kill: {line})")
        _, scrape = get(base, "/metrics")
        for line in scrape.splitlines():
            if line.startswith("mars_health_status"):
                print(f"(gauge after the kill:  {line})")

        banner("Repair back to K live copies")
        reports = service.repair_replicas()
        repaired = sum(len(report.repaired) for report in reports)
        print(f"repaired {repaired} replica(s)")
        show_health(base)

        banner("SLO report (deliberately tight 500us p99 target)")
        for entry in json.loads(get(base, "/stats")[1])["slo"]:
            flag = "  <-- breaching" if entry["breached"] else ""
            print(f"{entry['key']:<16} {entry['requests']:>4} req, "
                  f"{entry['violations']} violation(s), "
                  f"window p99 {entry['window_p99_seconds'] * 1000:.2f}ms, "
                  f"burn {entry['budget_burn']:.2f}{flag}")

    banner("Audit replay after the service is gone")
    with AuditLog(audit_dir) as audit:
        entries = list(audit.entries())
    print(f"{len(entries)} record(s) on disk")
    for entry in entries[-3:]:
        phases = ", ".join(
            f"{name} {seconds * 1000:.2f}ms"
            for name, seconds in entry["phases"].items()
        )
        if entry["kind"] == "publish":
            print(f"publish {entry['query']:<12} lsn={entry['lsn']} "
                  f"rows={entry['rows']} [{phases}]")
        else:
            print(f"update  {'':<12} lsn={entry['lsn']} "
                  f"changes={entry['changes']} [{phases}]")


if __name__ == "__main__":
    main()
