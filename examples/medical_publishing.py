"""Example 1.1 of the paper: mixed and redundant medical data publishing.

Proprietary storage holds patient tables (sensitive names), a native XML
drug catalog, and a redundant relational copy of drug prices.  The public
schema exposes case.xml (names hidden by the CaseMap GAV view) and the
catalog as-is.  MARS finds every minimal reformulation of the client query
"diagnosis with the corresponding drug's price" and picks the cheapest; the
redundant drugPrice table wins, as the paper argues.

Run with:  python examples/medical_publishing.py [--backend memory|sqlite]
"""

import argparse

from repro.core import MarsExecutor, MarsSystem
from repro.engine import BackchaseConfig, CBConfig
from repro.storage.backends import available_backends
from repro.workloads import medical


def main(backend: str = "memory") -> None:
    configuration = medical.build_configuration()
    configuration.backend = backend
    query = medical.client_query()

    print("public schema : case.xml (CaseMap over patient tables), catalog.xml (as-is)")
    print("proprietary   : patientDiag, patientDrug, catalog.xml, drugPrice (redundant)")
    print(f"client query  : {query}\n")

    # Enumerate every minimal reformulation (cost pruning off), as the paper's
    # completeness discussion does, then let the cost model pick the winner.
    all_system = MarsSystem(
        configuration, cb_config=CBConfig(backchase=BackchaseConfig(prune_by_cost=False))
    )
    result = all_system.reformulate(query)
    print(f"{len(result.minimal)} minimal reformulations found:")
    for reformulation in result.minimal:
        relations = ", ".join(sorted(reformulation.relation_names()))
        print(f"  - uses: {relations}")

    best_system = MarsSystem(configuration)
    best = best_system.reformulate(query)
    print(f"\nbest reformulation (in {best.time_to_best * 1000:.1f} ms):")
    print(f"  {best.best}")
    print("  as SQL:")
    for line in best.sql.splitlines():
        print(f"    {line}")

    executor = MarsExecutor(configuration)
    comparison = executor.compare(query, best.best)
    print(f"\nexecution on the instance data ({backend} backend):")
    print(f"  answers              : {sorted(comparison.original_rows)}")
    print(f"  answers match        : {comparison.answers_match}")
    print(f"  original execution   : {comparison.original_seconds * 1000:.2f} ms")
    print(f"  reformulated         : {comparison.reformulated_seconds * 1000:.2f} ms")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--backend",
        default="memory",
        choices=available_backends(),
        help="storage backend executing the reformulations",
    )
    main(**vars(parser.parse_args()))
