"""Schema specialization: shrinking the reformulation problem (paper section 5).

Regular parts of an XML document (every author has exactly one name/last,
address/city, ...) can be modelled as tuples of a virtual relation.  The
specializer rewrites the compiled query and every constraint accordingly,
which makes the chase and backchase dramatically cheaper; the reformulation
that comes out is the same.

Run with:  python examples/specialization_demo.py
"""

import time

from repro.core import MarsSystem
from repro.engine import CBEngine
from repro.specialize import Specializer, derive_specializations_from_instance
from repro.workloads import star
from repro.workloads.star import StarParameters


def main(corners: int = 5) -> None:
    parameters = StarParameters(corners=corners, include_base_storage=False)
    configuration = star.build_configuration(parameters)
    system = MarsSystem(configuration)
    query = star.client_query(parameters)
    compiled = system.compile_query(query)
    dependencies = system.dependencies

    # Derive the specializations automatically from an instance document
    # (hybrid-inlining style structure discovery).
    instance = star.build_star_document(parameters)
    mappings = derive_specializations_from_instance(instance)
    print(f"derived {len(mappings)} specialization mappings:")
    for mapping in mappings:
        print(f"  {mapping}")

    specializer = Specializer(mappings)
    specialized_query = specializer.specialize_query(compiled)
    specialized_dependencies = specializer.specialize_dependencies(dependencies)
    print(f"\nquery size      : {len(compiled.body)} atoms -> {len(specialized_query.body)} atoms")
    total_before = sum(len(d.premise) for d in dependencies)
    total_after = sum(len(d.premise) for d in specialized_dependencies)
    print(f"constraint sizes: {total_before} premise atoms -> {total_after}")

    engine = CBEngine(estimator=system.estimator, specs=system._specs)
    targets = system.target_relations

    start = time.perf_counter()
    plain = engine.reformulate(compiled, dependencies, target_relations=targets)
    plain_seconds = time.perf_counter() - start

    start = time.perf_counter()
    specialized = engine.reformulate(
        specialized_query, specialized_dependencies, target_relations=targets
    )
    specialized_seconds = time.perf_counter() - start

    print(f"\nreformulation without specialization : {plain_seconds * 1000:8.1f} ms")
    print(f"reformulation with specialization    : {specialized_seconds * 1000:8.1f} ms")
    if specialized_seconds > 0:
        print(f"speedup                              : {plain_seconds / specialized_seconds:8.1f}x")
    print(f"\nboth find the same best reformulation over the views:")
    print(f"  plain       : {sorted(plain.best.relation_names())}")
    print(f"  specialized : {sorted(specialized.best.relation_names())}")


if __name__ == "__main__":
    main()
