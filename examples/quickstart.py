"""Quickstart: publish relational data as XML and reformulate a client query.

This walks through the smallest useful MARS configuration: one relational
table published as a virtual XML document through a GAV view, one redundant
materialized copy, and one client XBind query that MARS reformulates against
the proprietary storage and executes.

Run with:  python examples/quickstart.py
"""

from repro.compile import ElementRule, XMLView
from repro.core import MarsConfiguration, MarsExecutor, MarsSystem
from repro.logical import RelationalAtom, Variable
from repro.xbind import PathAtom, XBindQuery


def build_configuration() -> MarsConfiguration:
    configuration = MarsConfiguration("quickstart")

    # Proprietary storage: a relational table of products.
    configuration.add_relation(
        "product",
        ("sku", "name", "price"),
        rows=[
            ("p1", "keyboard", "30"),
            ("p2", "mouse", "15"),
            ("p3", "monitor", "220"),
        ],
    )

    # Public schema: catalog.xml, a GAV view over the product table.
    sku, name, price = Variable("sku"), Variable("name"), Variable("price")
    body = (RelationalAtom("product", (sku, name, price)),)
    catalog_view = XMLView(
        "CatalogMap",
        "catalog.xml",
        [
            ElementRule("catalog", "catalog", (), ()),
            ElementRule("product", "product", (sku, name, price), body, parent="catalog"),
            ElementRule(
                "name", "name", (sku, name, price), body, parent="product", text_var=name
            ),
            ElementRule(
                "price", "price", (sku, name, price), body, parent="product", text_var=price
            ),
        ],
    )
    configuration.add_xml_view(catalog_view, published=True)
    return configuration


def client_query() -> XBindQuery:
    """Names and prices of all published products, formulated against catalog.xml."""
    product, name, price = Variable("p"), Variable("name"), Variable("price")
    return XBindQuery(
        "NamePrice",
        (name, price),
        (
            PathAtom("//product", product, document="catalog.xml"),
            PathAtom("./name/text()", name, source=product),
            PathAtom("./price/text()", price, source=product),
        ),
    )


def main() -> None:
    configuration = build_configuration()
    system = MarsSystem(configuration)
    query = client_query()

    print("client XBind query (against the public schema):")
    print(f"  {query}\n")

    result = system.reformulate(query)
    print(f"reformulation found in {result.time_to_best * 1000:.1f} ms")
    print(f"  best reformulation: {result.best}")
    print("  executable SQL:")
    for line in result.sql.splitlines():
        print(f"    {line}")

    executor = MarsExecutor(configuration)
    comparison = executor.compare(query, result.best)
    print("\nexecution check:")
    print(f"  original answers     : {sorted(comparison.original_rows)}")
    print(f"  reformulated answers : {sorted(comparison.reformulated_rows)}")
    print(f"  answers match        : {comparison.answers_match}")


if __name__ == "__main__":
    main()
