"""Operational tuning with redundant views: the XML star scenario.

This is the synthetic configuration behind the paper's scalability and
specialization experiments (Figures 5 and 8): a star document published from
shredded relational storage, plus redundant materialized views joining the
hub with pairs of corners.  Thanks to the key constraint on the hub, MARS
can rewrite the client star query using any subset of the views; the cost
model picks the cheapest combination.

Run with:  python examples/star_tuning.py [corners]
"""

import sys

from repro.core import MarsExecutor, MarsSystem
from repro.engine import BackchaseConfig, CBConfig
from repro.workloads import star
from repro.workloads.star import StarParameters


def main(corners: int = 4) -> None:
    parameters = StarParameters(corners=corners, hub_count=25, corner_size=20)
    configuration = star.build_configuration(parameters, with_instance=True)
    query = star.client_query(parameters)

    print(f"star configuration: NC={corners} corners, NV={parameters.view_count} views")
    print(f"client query: {query.name} joining R with all corners\n")

    system = MarsSystem(configuration)
    result = system.reformulate(query)
    print(f"time to initial reformulation : {result.time_to_initial * 1000:8.1f} ms")
    print(f"extra time to best minimal    : {result.minimization_time * 1000:8.1f} ms")
    print(f"best reformulation uses       : {', '.join(sorted(result.best.relation_names()))}")

    # Without cost pruning we can enumerate the alternatives the redundancy enables.
    enumerate_system = MarsSystem(
        configuration,
        cb_config=CBConfig(backchase=BackchaseConfig(prune_by_cost=False, max_inspected=20000)),
    )
    everything = enumerate_system.reformulate(query)
    print(f"\n{len(everything.minimal)} minimal reformulations exist; a few of them:")
    for reformulation in everything.minimal[:6]:
        views = sorted(n for n in reformulation.relation_names() if n.startswith("V"))
        bases = sorted(
            n for n in reformulation.relation_names() if n.endswith("_store")
        )
        print(f"  - views {views or '[]'} + base tables {bases or '[]'}")

    executor = MarsExecutor(configuration)
    comparison = executor.compare(query, result.best)
    print("\nexecution on the generated instance:")
    print(f"  original (published document) : {comparison.original_seconds * 1000:8.1f} ms")
    print(f"  best reformulation            : {comparison.reformulated_seconds * 1000:8.1f} ms")
    print(f"  answers match                 : {comparison.answers_match}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 4)
