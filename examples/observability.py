"""Observability tour: traces, metrics, events and cost feedback, live.

Builds a replicated-over-sharded publishing service on the XMark
workload and walks the full telemetry surface:

* a traced ``publish`` rendered as a span tree (plan-cache lookup, C&B
  reformulation, routing, per-shard execution, merge — through the
  replica layer);
* the slow-query log with a threshold and a sampling rate;
* a live update and the LSN-stamped event log (statistics refreshes,
  and — after an online rebalance — the stage/copy/replay/cutover
  sequence);
* the estimate-vs-actual misestimation report and the adaptive
  statistics refresh it can trigger;
* the Prometheus text exposition a scrape of ``service.metrics()``
  would return.

Run with:  python examples/observability.py
"""

from repro.obs import STATISTICS_REFRESH
from repro.replica import ChangeSet
from repro.serve import PublishingService
from repro.workloads import xmark


def banner(title: str) -> None:
    print(f"\n=== {title} " + "=" * max(0, 60 - len(title)))


def main() -> None:
    configuration = xmark.build_configuration()
    configuration.backend = "replicated"
    configuration.replica_count = 2
    configuration.replica_child = "sharded"
    configuration.shard_count = 3

    with PublishingService(
        configuration,
        pool_size=2,
        slow_query_seconds=0.0,  # absurdly low: log every 3rd publish
        slow_query_sample=3,
    ) as service:
        queries = [xmark.query_item_names(), *xmark.query_suite()[:3]]

        banner("A traced publish (explain trace=True)")
        print(service.explain(queries[0], trace=True))

        banner("The same trace as JSON (first two levels)")
        for _ in range(2):
            service.publish(queries[0])  # now a plan-cache hit
        exported = service.last_trace.to_dict()
        root = exported["trace"]
        print({k: v for k, v in exported.items() if k != "trace"})
        print(f"root: {root['name']} ({root['duration_ms']} ms)")
        for child in root.get("children", ()):
            print(f"  {child['name']}: {child['duration_ms']} ms "
                  f"{child.get('attributes', {})}")

        banner("Slow-query log (threshold 0s, every 3rd sampled)")
        for query in queries:
            service.publish(query)
        for event in service.slow_queries():
            print(f"  #{event.sequence} {event.details['query']}: "
                  f"{event.details['seconds'] * 1000:.2f} ms, "
                  f"{event.details['rows']} rows")

        banner("A live update, then the event log")
        service.update(
            ChangeSet.build(inserts={"itemName": [("item_obs_1", "telemetry")]})
        )
        for event in service.events.events():
            if event.kind == "query.slow":
                continue
            print(f"  #{event.sequence} [lsn {event.lsn}] {event.kind} "
                  f"{event.details}")

        banner("Cost feedback: estimated vs actual per fingerprint")
        for query in queries:
            service.publish(query)
        for entry in service.misestimation_report(min_samples=1)[:5]:
            print(f"  plan {entry.plan_name}: estimated {entry.estimated_rows:.1f} "
                  f"rows, actual {entry.actual_rows:.1f} "
                  f"(q-error {entry.cardinality_q_error:.2f}, "
                  f"{entry.samples} sample(s))")
        refreshed = service.refresh_if_misestimated(q_threshold=2.0, min_samples=1)
        print(f"  refresh_if_misestimated(q>=2): {refreshed}")
        if refreshed:
            event = service.events.events(STATISTICS_REFRESH)[-1]
            print(f"  -> event #{event.sequence}: {event.kind} {event.details}")

        banner("Prometheus exposition (first 25 lines of metrics())")
        for line in service.metrics().splitlines()[:25]:
            print(f"  {line}")

        banner("ServiceStats.snapshot()")
        snapshot = service.stats().snapshot()
        for key in ("queries_served", "replica_failovers", "replica_fenced"):
            print(f"  {key}: {snapshot[key]}")
        for key in ("router", "replicas"):
            if key in snapshot:
                print(f"  {key}: {snapshot[key]}")

    # Online rebalancing runs against a sharded (unreplicated) template;
    # a second service shows the staged cutover on the event log.
    banner("Online rebalance events (sharded service, 3 -> 4 shards)")
    sharded = xmark.build_configuration()
    sharded.backend = "sharded"
    sharded.shard_count = 3
    with PublishingService(sharded, pool_size=1) as service:
        service.publish(xmark.query_item_names())
        report = service.rebalance(shards=4)
        print(f"  moved {report.rows_copied} rows in {report.seconds * 1000:.1f} ms")
        for event in service.events.events():
            print(f"  #{event.sequence} [lsn {event.lsn}] {event.kind} "
                  f"{event.details}")


if __name__ == "__main__":
    main()
