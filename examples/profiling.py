"""Query-profiling tour: EXPLAIN ANALYZE with per-operator attribution.

Builds a replicated-over-sharded publishing service on the XMark
workload and walks the structured-profile surface:

* ``explain(query)`` — the *intent*: the routing decision rendered with
  the chosen mode **and the rejected alternative's cost**;
* ``explain(query, analyze=True)`` — the *reality*: one forced profiled
  publish, returned as a :class:`~repro.profile.QueryProfile` operator
  tree (replica reads, shard fragments with real cardinalities, merges,
  hash-join steps with their uniformity estimates) rendered and
  exported as JSON;
* always-on sampled profiling (``profile_sample=1/N``) filling the
  bounded profile buffer behind ``/profiles/recent`` and
  ``/profiles/worst``;
* the worst-operator attribution flowing into
  ``misestimation_report()`` and the ``mars_profile_*`` metric family.

Run with:  python examples/profiling.py
"""

from repro.serve import PublishingService
from repro.workloads import xmark


def banner(title: str) -> None:
    print(f"\n=== {title} " + "=" * max(0, 60 - len(title)))


def main() -> None:
    configuration = xmark.build_configuration()
    configuration.backend = "replicated"
    configuration.replica_count = 2
    configuration.replica_child = "sharded"
    configuration.shard_count = 3

    with PublishingService(
        configuration,
        pool_size=2,
        profile_sample=2,  # every 2nd publish keeps a full operator tree
        profile_buffer_size=16,
    ) as service:
        queries = [xmark.query_item_names(), *xmark.query_suite()[:3]]

        banner("The plan as intended (explain): routing incl. rejected cost")
        print(service.explain(queries[0]))

        banner("The plan as executed (explain analyze=True)")
        profile = service.explain(queries[0], analyze=True)
        print(profile.render())
        print(
            f"\nroot actual_rows={profile.actual_rows}, "
            f"elapsed={profile.elapsed_seconds * 1000:.2f} ms, "
            f"worst q-error={profile.worst_q_error():.2f}"
        )

        banner("Worst operator: where the estimate missed")
        worst = profile.worst_operator()
        if worst is not None:
            print(
                f"{worst.describe()}: estimated {worst.estimated_rows:.1f}, "
                f"got {worst.actual_rows} (q={worst.q_error:.2f})"
            )

        banner("Sampled profiling: the buffer fills as traffic flows")
        for query in queries:
            for _ in range(3):
                service.publish(query)
        buffer = service.profile_buffer
        print(
            f"offered={buffer.offered} publishes, sample=1/{buffer.sample}, "
            f"recorded={buffer.recorded}, buffered={len(buffer)}"
        )
        for entry in buffer.worst(3):
            print(
                f"  {entry['query']:<24} worst={entry.get('worst_operator', '-'):<40} "
                f"q={entry.get('worst_q_error', 1.0)}"
            )

        banner("Per-operator attribution in the misestimation report")
        for entry in service.misestimation_report()[:3]:
            print(
                f"  plan={entry.plan_name:<24} "
                f"q={entry.cardinality_q_error:<8.2f} "
                f"worst operator: {entry.worst_operator} "
                f"(q={entry.worst_operator_q_error:.2f})"
            )

        banner("The mars_profile_* metric family")
        for line in service.metrics().splitlines():
            if line.startswith("mars_profile"):
                print(f"  {line}")

        banner("One profile as JSON (first two levels)")
        exported = profile.to_dict()
        print({k: v for k, v in exported.items() if k != "profile"})
        root = exported["profile"]
        print(f"root: {root['kind']} {root['label']} act={root['actual_rows']}")
        for child in root.get("children", ()):
            print(
                f"  {child['kind']} {child['label']}: "
                f"act={child.get('actual_rows')} "
                f"q={child.get('q_error', '-')}"
            )


if __name__ == "__main__":
    main()
