"""Live updates and replication: publish, update, republish — no rebuild.

The xmark auction site is served by a :class:`PublishingService`; a
:class:`ChangeSet` lists a new item and delists an old one; the very next
``publish`` reflects the change on every engine (memory, sqlite, sharded,
replicated) because pooled snapshot clones replay the mutation-log tail
at checkout instead of the service being rebuilt.  The sharded deployment
additionally demonstrates an **online rebalance** (2 -> 3 shards under
live data), and the replicated one a **replica kill with failover**.

Run with:  python examples/live_updates.py
"""

from repro.replica import ChangeSet
from repro.serve import PublishingService
from repro.workloads import xmark

ENGINES = ("memory", "sqlite", "sharded", "replicated")


def build_configuration(backend: str):
    configuration = xmark.build_configuration(
        xmark.XMarkParameters(items_per_region=6, people=10, closed_auctions=15)
    )
    configuration.backend = backend
    if backend == "sharded":
        configuration.shard_count = 2
    if backend == "replicated":
        configuration.replica_count = 2
        configuration.replica_child = "sqlite"
    return configuration


def demo(backend: str) -> None:
    print(f"\n=== {backend} ===")
    configuration = build_configuration(backend)
    with PublishingService(configuration, pool_size=2) as service:
        query = xmark.query_item_names()

        before = service.publish(query)
        print(f"published {len(before)} items")

        delisted = tuple(before[0])
        lsn = service.update(
            ChangeSet.build(
                inserts={"itemName": [("item_live_1", "brand_new_gadget")]},
                deletes={"itemName": [delisted]},
            )
        )
        after = {tuple(row) for row in service.publish(query)}
        assert ("item_live_1", "brand_new_gadget") in after
        assert delisted not in after
        print(
            f"update @ LSN {lsn}: +item_live_1, -{delisted[0]} "
            f"-> republished {len(after)} items (no rebuild)"
        )

        if backend == "sharded":
            report = service.rebalance(shards=3)
            rebalanced = {tuple(row) for row in service.publish(query)}
            assert rebalanced == after
            print(
                f"rebalanced {report.old_shard_count} -> "
                f"{report.new_shard_count} shards online "
                f"({report.rows_copied} rows copied, "
                f"{report.entries_replayed} log entries replayed, "
                f"{report.seconds * 1000:.1f} ms)"
            )

        if backend == "replicated":
            template = service.executor.backend
            template.replicas[0].close()
            for clone in service.pool._all:
                if not clone.replicas[0].closed:
                    clone.replicas[0].close()
            survived = {tuple(row) for row in service.publish(query)}
            assert survived == after
            print(
                "killed replica 0 -> reads failed over, "
                f"{template.stats().live_replicas} replica(s) left"
            )

        stats = service.stats()
        print(
            f"stats: {stats.queries_served} served, "
            f"{stats.updates_applied} update(s), last LSN {stats.last_write_lsn}, "
            f"pool catch-ups {stats.pool.catchups} "
            f"({stats.pool.entries_replayed} log entries replayed)"
        )


def main() -> None:
    for backend in ENGINES:
        demo(backend)


if __name__ == "__main__":
    main()
