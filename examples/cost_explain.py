"""Cost-annotated explain: the same query priced on three engines.

Reformulates one XMark client query and prints, for the ``memory``,
``sqlite`` and ``sharded`` backends:

* the cost model's ranking of the minimal reformulations (the plan the
  system chose and the candidates it rejected, with their estimates);
* the backend's own ``explain`` of the chosen plan — per-step cardinality
  estimates on memory, ``EXPLAIN QUERY PLAN`` on SQLite, and the routing
  decision with chosen-vs-alternative costs on the sharded backend.

Run with:  python examples/cost_explain.py [query]
where *query* is one of: names, prices, buyers (default: prices).
"""

import sys

from repro.core import MarsExecutor, MarsSystem
from repro.workloads import xmark

QUERIES = {
    "names": xmark.query_item_names,
    "prices": xmark.query_item_prices,
    "buyers": xmark.query_buyers_with_items,
}


def main(which: str = "prices") -> None:
    query = QUERIES[which]()
    configuration = xmark.build_configuration()
    configuration.shard_count = 3

    for backend in ("memory", "sqlite", "sharded"):
        configuration.backend = backend
        system = MarsSystem(configuration)
        executor = MarsExecutor(configuration)
        # Plan against measured statistics, exactly like PublishingService.
        system.attach_statistics(executor.collect_statistics())
        result = system.reformulate(query)

        print(f"=== backend: {backend} ===")
        print(f"query {query.name}: {len(result.minimal)} minimal reformulation(s)")
        for name, cost in result.candidate_costs:
            marker = "*" if name == result.best.name else " "
            print(f"  {marker} {name}: estimated cost {cost:.1f}")
        estimate = result.cost_estimate
        if estimate is not None:
            print(f"chosen plan: {estimate.describe()}")
        print(executor.explain_reformulation(result.best))
        rows = executor.execute_reformulation(result.best)
        print(f"actual rows: {len(rows)} (estimated {estimate.cardinality:.1f})\n")
        executor.close()


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "prices")
