"""The one wall-clock helper every subsystem times itself with.

Before this module existed, ``core/executor.py`` and
``replica/rebalancer.py`` took raw ``time.perf_counter()`` deltas while
the C&B engine recorded per-phase ``elapsed_seconds`` fields of its own —
two timing idioms whose readings could silently disagree (different
clocks, different start conventions).  :func:`timer` is now the single
source: it always reads ``time.perf_counter()`` (monotonic, highest
resolution available), so a span recorded by the tracer, a benchmark
delta and a ``ChaseStatistics.elapsed_seconds`` field are directly
comparable numbers.

Usage::

    clock = timer()            # starts immediately
    ...
    first = clock.elapsed      # running read (checkpoints, e.g. C&B phases)
    ...
    clock.stop()               # freezes clock.seconds

    with timer() as clock:     # context-manager form
        ...
    clock.seconds              # frozen on exit
"""

from __future__ import annotations

import time
from typing import Optional


class Timer:
    """A started stopwatch over ``time.perf_counter()``."""

    __slots__ = ("started", "seconds")

    def __init__(self) -> None:
        self.started: float = time.perf_counter()
        #: Frozen duration; ``None`` while the timer is still running.
        self.seconds: Optional[float] = None

    @property
    def elapsed(self) -> float:
        """Seconds since start — a running read that does not stop the timer."""
        if self.seconds is not None:
            return self.seconds
        return time.perf_counter() - self.started

    def stop(self) -> float:
        """Freeze and return the duration (idempotent)."""
        if self.seconds is None:
            self.seconds = time.perf_counter() - self.started
        return self.seconds

    def __enter__(self) -> "Timer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


def timer() -> Timer:
    """Start and return a :class:`Timer`."""
    return Timer()


def now() -> float:
    """The raw monotonic reading (`time.perf_counter()`), for span stamps."""
    return time.perf_counter()
