"""Cost feedback: were the planner's estimates ever right?

PR 4 gave the system a statistics-fed :class:`~repro.cost.model.CostModel`
that ranks reformulations and routes shards — but nothing ever checked
its predictions against reality.  The :class:`CostFeedback` recorder
closes that loop: every executed publish contributes ``(estimated
cardinality, estimated cost, actual row count, actual seconds)`` under
the query's structural fingerprint, and :meth:`CostFeedback.report`
surfaces the per-fingerprint **q-error** — ``max(est, actual) /
min(est, actual)``, the standard symmetric cardinality-misestimation
measure (1.0 is a perfect estimate; 10 means an order of magnitude off
in either direction).

The report is what adaptive statistics consume:
``PublishingService.refresh_if_misestimated`` re-collects the
:class:`~repro.cost.statistics.StatisticsCatalog` (flushing the plan
cache) when enough fingerprints drift past a q-error threshold — the
same corrective action row-count drift triggers, now driven by observed
planning error instead of write volume alone.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Dict, Hashable, List, Optional, Tuple


#: The largest q-error :func:`q_error` will report.  Misestimates past a
#: million-fold are equally "maximally wrong" for every consumer of the
#: number, and the cap keeps ``inf`` (an infinite estimate, or one side
#: overflowing) out of report sorting and the Prometheus exposition.
Q_ERROR_CAP = 1e6


def q_error(estimated: float, actual: float) -> float:
    """The symmetric ratio error of a cardinality estimate (>= 1.0).

    Both sides are floored at one row: an estimate of 0 against an empty
    result is a perfect prediction, not a division by zero — an actual
    row count of 0 in particular never divides.  The result is capped at
    :data:`Q_ERROR_CAP`, and non-finite or non-numeric inputs report the
    cap rather than letting ``inf``/``NaN`` leak into reports or metrics.
    """
    try:
        est = float(estimated)
        act = float(actual)
    except (TypeError, ValueError):
        return Q_ERROR_CAP
    if est != est or act != act:  # NaN on either side: maximally wrong
        return Q_ERROR_CAP
    est = max(1.0, est)
    act = max(1.0, act)
    if est == float("inf") or act == float("inf"):
        return Q_ERROR_CAP
    return min(Q_ERROR_CAP, max(est, act) / min(est, act))


@dataclass(frozen=True)
class FingerprintFeedback:
    """Aggregated estimate-vs-actual numbers for one query fingerprint."""

    fingerprint: Hashable
    #: The ranked plan the estimates belong to (helps find it in explain).
    plan_name: str
    samples: int
    estimated_rows: float
    estimated_cost: float
    #: Mean over the recorded executions.
    actual_rows: float
    #: Mean execution seconds over the recorded executions.
    actual_seconds: float
    #: ``q_error(estimated_rows, actual_rows)``.
    cardinality_q_error: float
    #: The worst-misestimated *operator* observed for this fingerprint
    #: (``kind:label``, e.g. ``join-step:treatment[step 2]``) — recorded
    #: by sampled query profiles; ``None`` until one was profiled.
    worst_operator: Optional[str] = None
    #: The per-operator q-error of :attr:`worst_operator` (1.0 when none).
    worst_operator_q_error: float = 1.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "fingerprint": repr(self.fingerprint),
            "plan": self.plan_name,
            "samples": self.samples,
            "estimated_rows": self.estimated_rows,
            "estimated_cost": self.estimated_cost,
            "actual_rows": self.actual_rows,
            "actual_seconds": self.actual_seconds,
            "cardinality_q_error": self.cardinality_q_error,
            "worst_operator": self.worst_operator,
            "worst_operator_q_error": self.worst_operator_q_error,
        }


class _Accumulator:
    __slots__ = (
        "plan_name",
        "samples",
        "estimated_rows",
        "estimated_cost",
        "rows_sum",
        "seconds_sum",
        "worst_operator",
        "worst_operator_q_error",
    )

    def __init__(self, plan_name: str, estimated_rows: float, estimated_cost: float):
        self.plan_name = plan_name
        self.samples = 0
        self.estimated_rows = estimated_rows
        self.estimated_cost = estimated_cost
        self.rows_sum = 0.0
        self.seconds_sum = 0.0
        self.worst_operator: Optional[str] = None
        self.worst_operator_q_error = 1.0


class CostFeedback:
    """Thread-safe per-fingerprint recorder of estimate-vs-actual pairs."""

    def __init__(self, maxsize: int = 1024):
        if maxsize < 1:
            raise ValueError(f"cost feedback needs maxsize >= 1, got {maxsize}")
        self.maxsize = maxsize
        self._lock = threading.Lock()
        self._entries: Dict[Hashable, _Accumulator] = {}
        self._recorded = 0

    def record(
        self,
        fingerprint: Hashable,
        plan_name: str,
        estimated_rows: float,
        estimated_cost: float,
        actual_rows: int,
        actual_seconds: float,
        worst_operator: Optional[str] = None,
        worst_operator_q_error: float = 1.0,
    ) -> None:
        """Fold one execution's outcome into the fingerprint's aggregate.

        A fingerprint re-planned with different estimates (fresh
        statistics re-ranked the candidates) resets its aggregate — old
        actuals measured a superseded plan.  Sampled query profiles pass
        the worst-misestimated operator of the execution
        (*worst_operator*, a ``kind:label`` string, with its per-operator
        q-error); the aggregate keeps the worst one seen so the report
        can localize the misestimate, not just name the fingerprint.
        """
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is None:
                if len(self._entries) >= self.maxsize:
                    # Bounded: drop the oldest-inserted fingerprint.  A hot
                    # fingerprint re-inserts immediately on its next record.
                    self._entries.pop(next(iter(self._entries)))
                entry = self._entries[fingerprint] = _Accumulator(
                    plan_name, estimated_rows, estimated_cost
                )
            elif (
                entry.estimated_rows != estimated_rows
                or entry.plan_name != plan_name
            ):
                entry = self._entries[fingerprint] = _Accumulator(
                    plan_name, estimated_rows, estimated_cost
                )
            entry.samples += 1
            entry.rows_sum += float(actual_rows)
            entry.seconds_sum += float(actual_seconds)
            if (
                worst_operator is not None
                and worst_operator_q_error >= entry.worst_operator_q_error
            ):
                entry.worst_operator = worst_operator
                entry.worst_operator_q_error = worst_operator_q_error
            self._recorded += 1

    @property
    def recorded(self) -> int:
        """Executions recorded over the recorder's lifetime."""
        with self._lock:
            return self._recorded

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def report(
        self, min_samples: int = 1, q_threshold: float = 1.0
    ) -> List[FingerprintFeedback]:
        """Per-fingerprint feedback, worst cardinality q-error first.

        Only fingerprints with at least *min_samples* executions and a
        q-error of at least *q_threshold* appear (the defaults keep
        everything).
        """
        with self._lock:
            snapshot = [
                (fingerprint, entry.plan_name, entry.samples,
                 entry.estimated_rows, entry.estimated_cost,
                 entry.rows_sum, entry.seconds_sum,
                 entry.worst_operator, entry.worst_operator_q_error)
                for fingerprint, entry in self._entries.items()
            ]
        results: List[FingerprintFeedback] = []
        for (fingerprint, plan_name, samples, est_rows, est_cost,
             rows_sum, seconds_sum, worst_op, worst_op_error) in snapshot:
            if samples < min_samples:
                continue
            mean_rows = rows_sum / samples
            error = q_error(est_rows, mean_rows)
            if error < q_threshold:
                continue
            results.append(
                FingerprintFeedback(
                    fingerprint=fingerprint,
                    plan_name=plan_name,
                    samples=samples,
                    estimated_rows=est_rows,
                    estimated_cost=est_cost,
                    actual_rows=mean_rows,
                    actual_seconds=seconds_sum / samples,
                    cardinality_q_error=error,
                    worst_operator=worst_op,
                    worst_operator_q_error=worst_op_error,
                )
            )
        results.sort(key=lambda entry: entry.cardinality_q_error, reverse=True)
        return results

    def worst_q_error(self, min_samples: int = 1) -> float:
        """The largest per-fingerprint q-error observed (1.0 when empty)."""
        report = self.report(min_samples=min_samples)
        return report[0].cardinality_q_error if report else 1.0

    def clear(self) -> None:
        """Forget every aggregate (after statistics were re-collected)."""
        with self._lock:
            self._entries.clear()

    def to_dicts(self, min_samples: int = 1) -> List[Dict[str, Any]]:
        return [entry.to_dict() for entry in self.report(min_samples=min_samples)]
