"""Request tracing: a span tree attached to every publish/update.

A :class:`Span` is one timed step of serving a request (plan-cache
lookup, C&B reformulation, routing decision, pool checkout, per-shard
execution, merge, ...).  Spans nest: the publishing service opens a root
span per request, and each layer it calls attaches children — explicitly
(``span.child(...)``) or, for layers that are called through generic
interfaces and cannot take a tracing parameter (a pooled backend clone's
``execute``), through the **ambient span**: entering a span pushes it on
a thread-local stack, and :func:`current_span` hands any code running on
that thread its innermost open span.  Code running on *worker* threads
(the scatter/gather pool) captures the parent span in its task closure
instead — thread-locals do not cross threads, span objects do (child
attachment is lock-protected).

Tracing is built to be free when off: a disabled :class:`Tracer` hands
out the :data:`NULL_SPAN` singleton, whose every method is a no-op and
whose children are itself, so instrumented code never branches on an
``if tracing`` flag — it always opens spans, and the null span absorbs
them without allocating.

A finished trace exports as a JSON-able dict (:meth:`Trace.to_dict`/
:meth:`Trace.to_json`) and renders as an indented tree with millisecond
durations (:meth:`Trace.render`) — the view ``PublishingService.explain``
shows under ``trace=True``.
"""

from __future__ import annotations

import json
import threading
from time import perf_counter as _now
from typing import Any, Dict, Iterator, List, Optional, Tuple

_ACTIVE = threading.local()


def current_span() -> "Span":
    """The innermost open span on this thread, or :data:`NULL_SPAN`.

    Backends use this to attach per-shard/per-replica children without a
    tracing parameter threading through every ``StorageBackend`` method.
    """
    stack = getattr(_ACTIVE, "stack", None)
    if stack:
        return stack[-1]
    return NULL_SPAN


class Span:
    """One timed, attributed step in a trace; a node of the span tree.

    Tracing sits on every publish, so spans are deliberately lock-free:
    the mutating operations (``children.append``, ``attributes.update``)
    are single bytecode-dispatched calls on built-in containers, which
    CPython's GIL makes atomic — concurrent scatter/gather workers can
    attach children to a shared parent without a per-span lock (readers
    snapshot ``list(children)`` before iterating).
    """

    __slots__ = ("name", "attributes", "start", "end", "children")

    def __init__(self, name: str, **attributes: Any):
        self.name = name
        self.attributes: Dict[str, Any] = attributes
        self.start: float = _now()
        self.end: Optional[float] = None
        self.children: List["Span"] = []

    # -- recording -----------------------------------------------------
    def child(self, name: str, **attributes: Any) -> "Span":
        """Open (and return) a child span; use it as a context manager."""
        span = Span(name, **attributes)
        self.children.append(span)
        return span

    def add_phase(
        self, name: str, seconds: float, offset: float = 0.0, **attributes: Any
    ) -> "Span":
        """Attach an already-measured child (a recorded ``elapsed_seconds``).

        The C&B engine times its own phases; rather than re-timing them,
        the service grafts those readings into the tree.  *offset* is
        seconds past this span's start.
        """
        span = Span(name, **attributes)
        span.start = self.start + offset
        span.end = span.start + max(0.0, seconds)
        self.children.append(span)
        return span

    def annotate(self, **attributes: Any) -> None:
        """Merge *attributes* into this span (last write wins per key)."""
        self.attributes.update(attributes)

    def finish(self) -> None:
        if self.end is None:
            self.end = _now()

    # -- context manager (sets the ambient span) -----------------------
    # The bodies inline the stack push/pop and finish(): entering and leaving a span is
    # the hottest operation in the tracer, paid several times per publish.
    def __enter__(self) -> "Span":
        try:
            _ACTIVE.stack.append(self)
        except AttributeError:
            _ACTIVE.stack = [self]
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        stack = _ACTIVE.stack
        if stack and stack[-1] is self:
            stack.pop()
        if exc_type is not None:
            self.attributes["error"] = getattr(exc_type, "__name__", str(exc_type))
        if self.end is None:
            self.end = _now()

    # -- reading -------------------------------------------------------
    @property
    def enabled(self) -> bool:
        return True

    @property
    def duration(self) -> float:
        """Seconds this span covered (running spans read as 'so far')."""
        return (self.end if self.end is not None else _now()) - self.start

    def to_dict(self, origin: Optional[float] = None) -> Dict[str, Any]:
        if origin is None:
            origin = self.start
        children = list(self.children)
        entry: Dict[str, Any] = {
            "name": self.name,
            "offset_ms": round((self.start - origin) * 1000.0, 3),
            "duration_ms": round(self.duration * 1000.0, 3),
        }
        if self.attributes:
            entry["attributes"] = dict(self.attributes)
        if children:
            entry["children"] = [child.to_dict(origin) for child in children]
        return entry

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in list(self.children):
            yield from child.walk()


class _NullSpan:
    """The do-nothing span handed out while tracing is disabled.

    Every method absorbs its call without allocating; ``child`` returns
    the singleton itself so arbitrarily deep instrumentation stays free.
    """

    __slots__ = ()

    name = ""
    attributes: Dict[str, Any] = {}
    children: Tuple[()] = ()
    #: Real-span shape so offset arithmetic (``clock.started - parent.start``)
    #: never branches on whether tracing is live; the result is discarded.
    start = 0.0
    end = 0.0
    duration = 0.0
    enabled = False

    def child(self, name: str, **attributes: Any) -> "_NullSpan":
        return self

    def add_phase(
        self, name: str, seconds: float, offset: float = 0.0, **attributes: Any
    ) -> "_NullSpan":
        return self

    def annotate(self, **attributes: Any) -> None:
        pass

    def finish(self) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass

    def to_dict(self, origin: Optional[float] = None) -> Dict[str, Any]:
        return {}

    def walk(self) -> Iterator["Span"]:
        return iter(())


NULL_SPAN = _NullSpan()


class Trace:
    """A finished (or in-flight) span tree plus request metadata."""

    __slots__ = ("root", "metadata")

    def __init__(self, root: Span, **metadata: Any):
        self.root = root
        self.metadata: Dict[str, Any] = metadata

    @property
    def enabled(self) -> bool:
        return True

    @property
    def duration(self) -> float:
        return self.root.duration

    def to_dict(self) -> Dict[str, Any]:
        entry: Dict[str, Any] = dict(self.metadata)
        entry["trace"] = self.root.to_dict()
        return entry

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, default=repr)

    def span_names(self) -> List[str]:
        """Every span name in the tree, depth-first (handy in assertions)."""
        return [span.name for span in self.root.walk()]

    def render(self) -> str:
        """The span tree as indented text with millisecond durations."""
        lines: List[str] = []
        if self.metadata:
            meta = ", ".join(f"{k}={v}" for k, v in self.metadata.items())
            lines.append(f"trace [{meta}]")

        def emit(span: Span, depth: int) -> None:
            attrs = ""
            if span.attributes:
                attrs = " {" + ", ".join(
                    f"{k}={v!r}" for k, v in sorted(span.attributes.items())
                ) + "}"
            lines.append(
                f"{'  ' * depth}{span.name}: {span.duration * 1000.0:.3f} ms{attrs}"
            )
            for child in list(span.children):
                emit(child, depth + 1)

        emit(self.root, 1 if self.metadata else 0)
        return "\n".join(lines)


class _NullTrace:
    """Stand-in returned by a disabled tracer: nothing recorded, no cost."""

    __slots__ = ()

    root = NULL_SPAN
    metadata: Dict[str, Any] = {}
    duration = 0.0
    enabled = False

    def to_dict(self) -> Dict[str, Any]:
        return {}

    def to_json(self, indent: Optional[int] = None) -> str:
        return "{}"

    def span_names(self) -> List[str]:
        return []

    def render(self) -> str:
        return "(tracing disabled)"


NULL_TRACE = _NullTrace()

#: Canonical publish phases the slow-query log and the audit log break a
#: request into, mapped from the span names that carry them.  The cache
#: probe counts as (the fast path of) reformulation; ``execute`` keeps
#: its children, so ``merge`` — a sub-step of execution — is also
#: reported on its own line.
PUBLISH_PHASES: Dict[str, str] = {
    "reformulate": "reformulate",
    "plan_cache.lookup": "reformulate",
    "route": "route",
    "pool.acquire": "acquire",
    "execute": "execute",
    "merge": "merge",
    "apply": "apply",
    "log.append": "log.append",
}


def phase_breakdown(span: "Span") -> Dict[str, float]:
    """Per-phase seconds of one request's span tree.

    Walks *span*'s descendants summing durations under the canonical
    phase names of :data:`PUBLISH_PHASES`.  A matched ``reformulate``
    span owns its children (the nested cache probe and C&B phases are
    parts of it, not separate phases); every other match keeps
    descending, so ``merge`` inside ``execute`` is still attributed.
    Returns ``{}`` on the null span (tracing disabled).
    """
    phases: Dict[str, float] = {}

    def visit(node: "Span") -> None:
        for child in list(node.children):
            phase = PUBLISH_PHASES.get(child.name)
            if phase is not None:
                phases[phase] = phases.get(phase, 0.0) + child.duration
                if phase == "reformulate":
                    continue
            visit(child)

    visit(span)
    return phases


class TraceBuffer:
    """A sampled ring of completed span trees, exported as JSON-able dicts.

    ``/traces/recent`` serves this buffer: *sample* keeps every Nth
    completed trace (1 keeps them all — the deterministic counter idiom
    of the slow-query log), *maxlen* bounds retention.  Recording
    retains the :class:`Trace` object itself — each request builds a
    fresh span tree, so the retained tree is stable — and the dict
    export happens on :meth:`recent`, keeping the per-publish cost of a
    retained trace to a counter bump and a list append.
    """

    def __init__(self, maxlen: int = 64, sample: int = 1):
        if maxlen < 1:
            raise ValueError(f"trace buffer needs maxlen >= 1, got {maxlen}")
        if sample < 1:
            raise ValueError(f"trace sample must be >= 1, got {sample}")
        self.sample = sample
        self._lock = threading.Lock()
        self._traces: List["Trace"] = []
        self._maxlen = maxlen
        self._completed = 0
        self._recorded = 0

    def record(self, trace: "Trace") -> bool:
        """Offer one completed trace; returns whether it was retained."""
        if not trace.enabled:
            return False
        with self._lock:
            self._completed += 1
            if (self._completed - 1) % self.sample:
                return False
            self._traces.append(trace)
            if len(self._traces) > self._maxlen:
                del self._traces[0]
            self._recorded += 1
            return True

    @property
    def completed(self) -> int:
        """Traces offered over the buffer's lifetime (sampled or not)."""
        with self._lock:
            return self._completed

    @property
    def recorded(self) -> int:
        """Traces retained over the buffer's lifetime (before eviction)."""
        with self._lock:
            return self._recorded

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)

    def recent(self, n: Optional[int] = None) -> List[Dict[str, Any]]:
        """The retained traces as dicts, newest first (at most *n*)."""
        with self._lock:
            traces = list(reversed(self._traces))
        if n is not None:
            if n <= 0:
                return []
            traces = traces[:n]
        exported = []
        for trace in traces:
            entry = trace.to_dict()
            entry["duration_ms"] = round(trace.duration * 1000.0, 3)
            exported.append(entry)
        return exported


class Tracer:
    """The per-service switchboard deciding whether requests get spans.

    ``enabled=False`` makes :meth:`trace` return :data:`NULL_TRACE`
    (whose root is the null span), so the serving path's instrumentation
    runs at no-op cost; individual calls can still force a trace (the
    ``explain(trace=True)`` path) via *force*.
    """

    __slots__ = ("enabled",)

    def __init__(self, enabled: bool = True):
        self.enabled = enabled

    def trace(self, name: str, force: bool = False, **metadata: Any):
        """A new :class:`Trace` rooted at *name*, or the null trace."""
        if not (self.enabled or force):
            return NULL_TRACE
        return Trace(Span(name), **metadata)
