"""The durable query audit log: what the service *did*, on disk.

The metrics registry and event log answer operational questions while
the process is up; the audit log answers the offline ones — "which
queries ran against which LSN, with what plan cost, and where did the
time go?" — after the process is gone.  Every acknowledged publish and
update appends one JSON line recording the query fingerprint, route
mode, the LSN barrier the request was served at, the optimizer's cost
estimate against the actual row count, and the per-phase latency
breakdown from the request's trace.

Design points, shared with :class:`~repro.replica.durable.DurableMutationLog`:

* **JSONL in rotated files** — ``audit-0000000001.jsonl`` and onward in
  one directory; when the active file grows past ``max_bytes`` a new
  file starts, and the oldest beyond ``max_files`` are pruned.  JSON
  lines (not a binary frame) because the audit log's consumer is a
  human with ``grep``/``jq`` as often as a program.
* **Explicit fsync policy** — ``"always"`` fsyncs every record (the
  audit entry survives power loss with the acknowledgement),
  ``"off"`` flushes to the OS only.  The default is ``"off"``: audit
  completeness across *process* death, without taxing the write path.
* **Audit before acknowledge** — unlike the in-memory
  :class:`~repro.obs.events.EventLog` (which drops-and-counts),
  :meth:`AuditLog.record` **raises** on I/O failure.  The service calls
  it before returning the result, so "every acknowledged request is in
  the audit log" is an invariant, not a best effort.
* **Torn tails tolerated on read** — :meth:`entries` skips a final line
  cut short by a crash; everything before it replays.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple

#: Allowed fsync policies, mirroring the durable mutation log.
FSYNC_POLICIES = ("always", "off")

DEFAULT_MAX_BYTES = 1 << 20
#: Rotated files kept before the oldest is pruned; 0 keeps everything.
DEFAULT_MAX_FILES = 8

_FILE_PREFIX = "audit-"
_FILE_SUFFIX = ".jsonl"


class AuditError(RuntimeError):
    """The audit log could not honour a record or read."""


def _file_name(sequence: int) -> str:
    return f"{_FILE_PREFIX}{sequence:010d}{_FILE_SUFFIX}"


def _file_sequence(path: Path) -> Optional[int]:
    name = path.name
    if not (name.startswith(_FILE_PREFIX) and name.endswith(_FILE_SUFFIX)):
        return None
    digits = name[len(_FILE_PREFIX) : -len(_FILE_SUFFIX)]
    if not digits.isdigit():
        return None
    return int(digits)


@dataclass(frozen=True)
class AuditStats:
    """The log's on-disk shape, for service stats and the admin surface."""

    directory: str
    files: int
    active_file: str
    active_bytes: int
    records: int
    rotations: int
    pruned_files: int
    fsync: str

    def to_dict(self) -> Dict[str, Any]:
        return {
            "directory": self.directory,
            "files": self.files,
            "active_file": self.active_file,
            "active_bytes": self.active_bytes,
            "records": self.records,
            "rotations": self.rotations,
            "pruned_files": self.pruned_files,
            "fsync": self.fsync,
        }


class AuditLog:
    """A durable, size-rotated JSONL log of acknowledged requests."""

    def __init__(
        self,
        directory: "os.PathLike[str] | str",
        max_bytes: int = DEFAULT_MAX_BYTES,
        max_files: int = DEFAULT_MAX_FILES,
        fsync: str = "off",
    ) -> None:
        if fsync not in FSYNC_POLICIES:
            raise AuditError(
                f"unknown fsync policy {fsync!r} "
                f"(one of {', '.join(FSYNC_POLICIES)})"
            )
        if max_bytes < 1:
            raise AuditError(f"max_bytes must be >= 1, got {max_bytes}")
        if max_files < 0:
            raise AuditError(f"max_files must be >= 0, got {max_files}")
        self.directory = Path(directory)
        self.max_bytes = max_bytes
        self.max_files = max_files
        self.fsync = fsync
        self.directory.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._records = 0
        self._rotations = 0
        self._pruned = 0
        self._closed = False
        existing = self._files()
        if existing:
            sequence = _file_sequence(existing[-1])
            assert sequence is not None
            self._sequence = sequence
        else:
            self._sequence = 1
        self._path = self.directory / _file_name(self._sequence)
        self._handle = self._path.open("ab")

    def _files(self) -> List[Path]:
        """The log's files on disk, oldest first."""
        found = [
            path
            for path in self.directory.iterdir()
            if path.is_file() and _file_sequence(path) is not None
        ]
        found.sort(key=lambda path: _file_sequence(path) or 0)
        return found

    def _rotate_locked(self) -> None:
        handle = self._handle
        assert handle is not None
        handle.flush()
        if self.fsync == "always":
            os.fsync(handle.fileno())
        handle.close()
        self._sequence += 1
        self._rotations += 1
        self._path = self.directory / _file_name(self._sequence)
        self._handle = self._path.open("ab")
        if self.max_files:
            files = self._files()
            while len(files) > self.max_files:
                files.pop(0).unlink()
                self._pruned += 1

    def record(self, entry: Dict[str, Any]) -> None:
        """Append one audit entry; **raises** :class:`AuditError` on failure.

        The caller acknowledges the request only after this returns, so a
        full disk or closed log surfaces to the client instead of quietly
        losing the audit trail.
        """
        try:
            line = json.dumps(entry, default=repr, separators=(",", ":"))
        except Exception as error:
            raise AuditError(f"audit entry not serializable: {error}") from error
        payload = line.encode("utf-8") + b"\n"
        with self._lock:
            if self._closed:
                raise AuditError("audit log is closed")
            handle = self._handle
            try:
                handle.write(payload)
                handle.flush()
                if self.fsync == "always":
                    os.fsync(handle.fileno())
            except OSError as error:
                raise AuditError(f"audit append failed: {error}") from error
            self._records += 1
            if handle.tell() >= self.max_bytes:
                self._rotate_locked()

    def entries(self) -> Iterator[Dict[str, Any]]:
        """Replay every retained entry, oldest first.

        A torn final line (crash mid-append under ``fsync="off"``) is
        skipped; a torn line in the *middle* of a file means external
        corruption and raises.
        """
        with self._lock:
            if not self._closed and self._handle is not None:
                self._handle.flush()
            files = self._files()
        for path in files:
            with path.open("rb") as handle:
                raw = handle.read()
            lines = raw.split(b"\n")
            trailing = lines.pop() if lines else b""
            for position, line in enumerate(lines):
                if not line:
                    continue
                try:
                    yield json.loads(line.decode("utf-8"))
                except Exception as error:
                    raise AuditError(
                        f"corrupt audit record in {path.name} "
                        f"(line {position + 1}): {error}"
                    ) from error
            if trailing:
                # No newline terminator: a torn tail, tolerated only on
                # the newest file — elsewhere it is corruption.
                if path != files[-1]:
                    raise AuditError(
                        f"corrupt audit record in {path.name}: torn line "
                        "in a rotated file"
                    )

    def stats(self) -> AuditStats:
        with self._lock:
            try:
                active_bytes = self._path.stat().st_size
            except OSError:
                active_bytes = 0
            return AuditStats(
                directory=str(self.directory),
                files=len(self._files()),
                active_file=self._path.name,
                active_bytes=active_bytes,
                records=self._records,
                rotations=self._rotations,
                pruned_files=self._pruned,
                fsync=self.fsync,
            )

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            handle = self._handle
            self._handle = None
            if handle is not None:
                try:
                    handle.flush()
                    os.fsync(handle.fileno())
                finally:
                    handle.close()

    def __enter__(self) -> "AuditLog":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()
