"""Latency SLOs: per-fingerprint objectives with error-budget burn.

A latency histogram answers "how slow are we"; an SLO answers "are we
keeping the promise".  The :class:`SLOTracker` holds one rolling window
of observations per tracked key (the service keys by query name — one
per structural fingerprint) against an objective of the form

    *objective* (e.g. 99%) of requests complete within *target_p99*
    seconds, evaluated over the last *window_seconds*.

Every observation either meets the target or **burns error budget**: the
budget is the allowed violation fraction (``1 - objective``), and the
burn rate is the observed violation fraction divided by it — 1.0 means
the budget is being spent exactly as fast as the objective allows,
anything above means the SLO will be broken if the window's behaviour
continues, 0 means no violations at all.  This is the standard
burn-rate alerting quantity, computed here from the same observations
that feed the latency histograms (one ``observe`` per publish).

The :class:`~repro.serve.PublishingService` exports the tracker as the
``mars_slo_*`` series (requests/violations counters, target/p99/burn
gauges, labelled by query) and surfaces :meth:`SLOTracker.report` in
``ServiceStats.snapshot()``; ``tools/mars_top.py`` renders the same
report as its hot-fingerprint table.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional, Tuple

from .timer import now

DEFAULT_OBJECTIVE = 0.99
DEFAULT_WINDOW_SECONDS = 300.0
#: Observations kept per key; at typical scrape-window traffic the time
#: bound dominates, this bound caps memory on very hot fingerprints.
DEFAULT_MAX_SAMPLES = 2048


@dataclass(frozen=True)
class SLOReport:
    """One key's objective and its rolling-window standing."""

    key: str
    target_p99: float
    objective: float
    #: Lifetime observations and violations (monotonic counters).
    requests: int
    violations: int
    #: Observations currently inside the window.
    window_requests: int
    window_violations: int
    #: Interpolated p99 over the window (0.0 when empty).
    window_p99: float
    #: Violation fraction divided by the allowed fraction; 1.0 spends
    #: the budget exactly at the objective's rate.
    budget_burn: float

    @property
    def breached(self) -> bool:
        """Whether the window is burning budget faster than allowed."""
        return self.budget_burn > 1.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "key": self.key,
            "target_p99_seconds": self.target_p99,
            "objective": self.objective,
            "requests": self.requests,
            "violations": self.violations,
            "window_requests": self.window_requests,
            "window_violations": self.window_violations,
            "window_p99_seconds": self.window_p99,
            "budget_burn": self.budget_burn,
            "breached": self.breached,
        }


class _Window:
    __slots__ = ("target", "objective", "samples", "requests", "violations")

    def __init__(self, target: float, objective: float):
        self.target = target
        self.objective = objective
        #: ``(timestamp, seconds)`` pairs, oldest first.
        self.samples: Deque[Tuple[float, float]] = deque()
        self.requests = 0
        self.violations = 0


class SLOTracker:
    """Thread-safe rolling latency-objective tracker, one window per key."""

    def __init__(
        self,
        target_p99: float,
        objective: float = DEFAULT_OBJECTIVE,
        window_seconds: float = DEFAULT_WINDOW_SECONDS,
        max_samples: int = DEFAULT_MAX_SAMPLES,
        clock=now,
    ):
        if target_p99 <= 0:
            raise ValueError(f"SLO target must be > 0 seconds, got {target_p99}")
        if not 0.0 < objective < 1.0:
            raise ValueError(f"SLO objective must be in (0, 1), got {objective}")
        if window_seconds <= 0:
            raise ValueError(f"SLO window must be > 0 seconds, got {window_seconds}")
        if max_samples < 1:
            raise ValueError(f"SLO max_samples must be >= 1, got {max_samples}")
        self.target_p99 = target_p99
        self.objective = objective
        self.window_seconds = window_seconds
        self.max_samples = max_samples
        self._clock = clock
        self._lock = threading.Lock()
        self._windows: Dict[str, _Window] = {}

    def set_objective(
        self,
        key: str,
        target_p99: Optional[float] = None,
        objective: Optional[float] = None,
    ) -> None:
        """Override the default target/objective for one key."""
        target = target_p99 if target_p99 is not None else self.target_p99
        goal = objective if objective is not None else self.objective
        if target <= 0:
            raise ValueError(f"SLO target must be > 0 seconds, got {target}")
        if not 0.0 < goal < 1.0:
            raise ValueError(f"SLO objective must be in (0, 1), got {goal}")
        with self._lock:
            window = self._windows.get(key)
            if window is None:
                window = self._windows[key] = _Window(target, goal)
            else:
                window.target = target
                window.objective = goal

    def _trim(self, window: _Window, timestamp: float) -> None:
        horizon = timestamp - self.window_seconds
        samples = window.samples
        while samples and samples[0][0] < horizon:
            samples.popleft()
        while len(samples) > self.max_samples:
            samples.popleft()

    def observe(self, key: str, seconds: float) -> bool:
        """Fold one request's latency in; returns whether it violated."""
        timestamp = self._clock()
        with self._lock:
            window = self._windows.get(key)
            if window is None:
                window = self._windows[key] = _Window(
                    self.target_p99, self.objective
                )
            violated = seconds > window.target
            window.requests += 1
            if violated:
                window.violations += 1
            window.samples.append((timestamp, seconds))
            self._trim(window, timestamp)
        return violated

    def keys(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._windows))

    def report(self) -> List[SLOReport]:
        """Every key's standing, worst budget burn first."""
        timestamp = self._clock()
        results: List[SLOReport] = []
        with self._lock:
            for key in sorted(self._windows):
                window = self._windows[key]
                self._trim(window, timestamp)
                latencies = sorted(seconds for _ts, seconds in window.samples)
                count = len(latencies)
                in_window_violations = sum(
                    1 for seconds in latencies if seconds > window.target
                )
                if count:
                    # Nearest-rank p99 over the retained observations.
                    rank = max(0, min(count - 1, int(0.99 * count + 0.5) - 1))
                    p99 = latencies[rank] if count > 1 else latencies[0]
                    allowed = 1.0 - window.objective
                    burn = (in_window_violations / count) / allowed
                else:
                    p99 = 0.0
                    burn = 0.0
                results.append(
                    SLOReport(
                        key=key,
                        target_p99=window.target,
                        objective=window.objective,
                        requests=window.requests,
                        violations=window.violations,
                        window_requests=count,
                        window_violations=in_window_violations,
                        window_p99=p99,
                        budget_burn=burn,
                    )
                )
        results.sort(key=lambda entry: entry.budget_burn, reverse=True)
        return results

    def to_dicts(self) -> List[Dict[str, Any]]:
        return [entry.to_dict() for entry in self.report()]
