"""A thread-safe metrics registry: counters, gauges, fixed-bucket histograms.

Every subsystem used to expose an ad-hoc ``*Stats`` dataclass and nothing
else — point-in-time counters with no latency distributions and no common
exposition.  The :class:`MetricsRegistry` is the shared substrate those
stats now feed:

* :class:`Counter` — monotonically increasing totals (``_total`` suffix
  required, the Prometheus convention);
* :class:`Gauge` — settable point-in-time values (pool occupancy, live
  replica count);
* :class:`Histogram` — fixed-bucket latency/size distributions with
  cumulative bucket counts, from which p50/p95/p99 are interpolated.

Metric names are validated at registration time — ``snake_case``, a known
unit suffix (:data:`ALLOWED_UNIT_SUFFIXES`), registered once per kind —
and ``tools/check_metrics.py`` lints the same rules statically in CI.
Metrics may carry labels (``registry.counter(..., labels=("shard",))``)
and are exported two ways: :meth:`MetricsRegistry.render_prometheus`
emits the text exposition format a Prometheus scrape expects, and
:meth:`MetricsRegistry.snapshot` returns the same data as a JSON-able
dict.  *Collectors* — callbacks run at export time — bridge the existing
``*Stats`` snapshots (pool, cache, router, shard, replica) into gauges
without putting a second counter on any hot path.

>>> registry = MetricsRegistry()
>>> served = registry.counter("demo_queries_served_total", "queries answered")
>>> served.inc()
>>> served.inc(2)
>>> served.value
3.0
>>> latency = registry.histogram("demo_publish_latency_seconds",
...                              "publish wall-clock", buckets=(0.1, 1.0))
>>> for value in (0.05, 0.05, 0.5, 2.0):
...     latency.observe(value)
>>> latency.count
4
>>> print(registry.render_prometheus())  # doctest: +ELLIPSIS
# HELP demo_publish_latency_seconds publish wall-clock
# TYPE demo_publish_latency_seconds histogram
demo_publish_latency_seconds_bucket{le="0.1"} 2
demo_publish_latency_seconds_bucket{le="1.0"} 3
demo_publish_latency_seconds_bucket{le="+Inf"} 4
demo_publish_latency_seconds_sum 2.6
demo_publish_latency_seconds_count 4
# HELP demo_queries_served_total queries answered
# TYPE demo_queries_served_total counter
demo_queries_served_total 3
"""

from __future__ import annotations

import json
import re
import threading
from bisect import bisect_left
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

#: Every metric name must end with one of these unit suffixes (Prometheus
#: naming convention: the unit travels in the name, not in a comment).
#: ``tools/check_metrics.py`` imports this tuple so the CI lint and the
#: runtime validation can never disagree.
ALLOWED_UNIT_SUFFIXES: Tuple[str, ...] = (
    "_total",
    "_seconds",
    "_bytes",
    "_rows",
    "_ratio",
    "_connections",
    "_entries",
    "_replicas",
    "_shards",
    "_plans",
    "_lsn",
    "_segments",
    "_status",
)

_NAME = re.compile(r"^[a-z][a-z0-9_]*$")

#: Default latency buckets (seconds): microseconds through ~10 s, the
#: range a publish spans between a warm plan-cache hit and a cold chase.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)


def validate_metric_name(name: str, kind: str) -> None:
    """Raise ``ValueError`` unless *name* follows the naming rules."""
    if not _NAME.match(name):
        raise ValueError(
            f"metric name {name!r} is not snake_case "
            "(lowercase letters, digits and underscores, starting with a letter)"
        )
    if kind == "counter" and not name.endswith("_total"):
        raise ValueError(f"counter {name!r} must end with '_total'")
    if not name.endswith(ALLOWED_UNIT_SUFFIXES):
        raise ValueError(
            f"metric name {name!r} lacks a unit suffix "
            f"(one of {', '.join(ALLOWED_UNIT_SUFFIXES)})"
        )


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text exposition rules.

    Backslash, double quote and newline are the three characters the
    format escapes inside quoted label values; anything else passes
    through verbatim.
    """
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_labels(names: Tuple[str, ...], values: Tuple[str, ...]) -> str:
    if not names:
        return ""
    pairs = ",".join(
        f'{name}="{_escape_label_value(value)}"'
        for name, value in zip(names, values)
    )
    return "{" + pairs + "}"


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up (inc by {amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """A settable point-in-time value."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """A fixed-bucket distribution with interpolated quantiles.

    *buckets* are the inclusive upper bounds, ascending; an implicit
    ``+Inf`` bucket tops them off.  Quantiles are estimated by linear
    interpolation inside the owning bucket — exact enough for p50/p95/p99
    dashboards, and far cheaper than retaining observations.
    """

    __slots__ = ("buckets", "_lock", "_counts", "_sum", "_count")

    def __init__(self, buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS):
        bounds = tuple(float(bound) for bound in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if list(bounds) != sorted(set(bounds)):
            raise ValueError(f"bucket bounds must be strictly ascending: {bounds}")
        self.buckets = bounds
        self._lock = threading.Lock()
        self._counts = [0] * (len(bounds) + 1)  # +1: the +Inf bucket
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        index = bisect_left(self.buckets, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def bucket_counts(self) -> Tuple[int, ...]:
        """Cumulative counts per bound (Prometheus ``le`` semantics), +Inf last."""
        with self._lock:
            counts = list(self._counts)
        cumulative: List[int] = []
        running = 0
        for count in counts:
            running += count
            cumulative.append(running)
        return tuple(cumulative)

    def quantile(self, q: float) -> float:
        """The estimated *q*-quantile (0 < q <= 1) of the observations.

        Returns 0.0 with no observations.  Values landing in the +Inf
        bucket report the largest finite bound (the histogram cannot see
        past its buckets — size them for the tail you care about).
        """
        if not 0.0 < q <= 1.0:
            raise ValueError(f"quantile must be in (0, 1], got {q}")
        with self._lock:
            counts = list(self._counts)
            total = self._count
        if total == 0:
            return 0.0
        rank = q * total
        running = 0.0
        for index, count in enumerate(counts):
            if count == 0:
                continue
            if running + count >= rank:
                if index >= len(self.buckets):
                    return self.buckets[-1]
                upper = self.buckets[index]
                lower = self.buckets[index - 1] if index > 0 else 0.0
                fraction = (rank - running) / count
                return lower + (upper - lower) * fraction
            running += count
        return self.buckets[-1]


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class _Family:
    """One registered metric name: its kind, help text and labeled children."""

    __slots__ = ("name", "kind", "help", "label_names", "_children", "_lock", "_kwargs")

    def __init__(
        self,
        name: str,
        kind: str,
        help_text: str,
        label_names: Tuple[str, ...],
        **kwargs: Any,
    ):
        self.name = name
        self.kind = kind
        self.help = help_text
        self.label_names = label_names
        self._children: Dict[Tuple[str, ...], Any] = {}
        self._lock = threading.Lock()
        self._kwargs = kwargs
        if not label_names:
            self._children[()] = _KINDS[kind](**kwargs)

    def labels(self, **labels: Any) -> Any:
        """The child metric for one label assignment (created on first use)."""
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"metric {self.name} takes labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            )
        key = tuple(str(labels[name]) for name in self.label_names)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._children[key] = _KINDS[self.kind](**self._kwargs)
            return child

    def children(self) -> List[Tuple[Tuple[str, ...], Any]]:
        with self._lock:
            return sorted(self._children.items())

    # Unlabeled families act as the metric itself.
    def _solo(self) -> Any:
        if self.label_names:
            raise ValueError(
                f"metric {self.name} is labeled ({self.label_names}); "
                "call .labels(...) first"
            )
        return self._children[()]

    def inc(self, amount: float = 1.0) -> None:
        self._solo().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._solo().dec(amount)

    def set(self, value: float) -> None:
        self._solo().set(value)

    def observe(self, value: float) -> None:
        self._solo().observe(value)

    def quantile(self, q: float) -> float:
        return self._solo().quantile(q)

    @property
    def value(self) -> float:
        return self._solo().value

    @property
    def count(self) -> int:
        return self._solo().count

    @property
    def sum(self) -> float:
        return self._solo().sum

    @property
    def buckets(self) -> Tuple[float, ...]:
        return self._solo().buckets

    def bucket_counts(self) -> Tuple[int, ...]:
        return self._solo().bucket_counts()


class MetricsRegistry:
    """Registered-once metric families plus export-time collectors."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: Dict[str, _Family] = {}
        self._collectors: List[Callable[[], None]] = []

    # -- registration --------------------------------------------------
    def _register(
        self,
        name: str,
        kind: str,
        help_text: str,
        labels: Sequence[str],
        **kwargs: Any,
    ) -> _Family:
        validate_metric_name(name, kind)
        label_names = tuple(labels)
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if family.kind != kind or family.label_names != label_names:
                    raise ValueError(
                        f"metric {name!r} already registered as {family.kind} "
                        f"with labels {family.label_names}"
                    )
                return family
            family = _Family(name, kind, help_text, label_names, **kwargs)
            self._families[name] = family
            return family

    def counter(
        self, name: str, help_text: str = "", labels: Sequence[str] = ()
    ) -> _Family:
        return self._register(name, "counter", help_text, labels)

    def gauge(
        self, name: str, help_text: str = "", labels: Sequence[str] = ()
    ) -> _Family:
        return self._register(name, "gauge", help_text, labels)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> _Family:
        return self._register(name, "histogram", help_text, labels, buckets=buckets)

    def add_collector(self, collector: Callable[[], None]) -> None:
        """Run *collector* before every export (it sets gauges from stats)."""
        with self._lock:
            self._collectors.append(collector)

    def names(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._families))

    def get(self, name: str) -> Optional[_Family]:
        with self._lock:
            return self._families.get(name)

    # -- export --------------------------------------------------------
    def _collect(self) -> List[_Family]:
        with self._lock:
            collectors = list(self._collectors)
            families = [self._families[name] for name in sorted(self._families)]
        # Collectors run before a single exposition line is rendered, so a
        # failing one aborts the whole export with a clear owner instead
        # of corrupting the scrape with a partially refreshed view.
        for collector in collectors:
            try:
                collector()
            except Exception as error:
                name = getattr(collector, "__qualname__", repr(collector))
                raise RuntimeError(
                    f"metrics collector {name} failed: {error}"
                ) from error
        return families

    def render_prometheus(self) -> str:
        """The Prometheus text exposition format (version 0.0.4)."""
        lines: List[str] = []
        for family in self._collect():
            help_text = family.help.replace("\\", r"\\").replace("\n", r"\n")
            lines.append(f"# HELP {family.name} {help_text}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for label_values, metric in family.children():
                labels = _format_labels(family.label_names, label_values)
                if family.kind == "histogram":
                    cumulative = metric.bucket_counts()
                    for bound, count in zip(metric.buckets, cumulative):
                        le_names = family.label_names + ("le",)
                        le_values = label_values + (_format_value(bound),)
                        lines.append(
                            f"{family.name}_bucket"
                            f"{_format_labels(le_names, le_values)} {count}"
                        )
                    inf_names = family.label_names + ("le",)
                    inf_values = label_values + ("+Inf",)
                    lines.append(
                        f"{family.name}_bucket"
                        f"{_format_labels(inf_names, inf_values)} {cumulative[-1]}"
                    )
                    lines.append(
                        f"{family.name}_sum{labels} {_format_value(metric.sum)}"
                    )
                    lines.append(f"{family.name}_count{labels} {metric.count}")
                else:
                    lines.append(
                        f"{family.name}{labels} {_format_value(metric.value)}"
                    )
        return "\n".join(lines)

    def snapshot(self) -> Dict[str, Any]:
        """Every metric's current value as a JSON-able dict."""
        result: Dict[str, Any] = {}
        for family in self._collect():
            values: List[Dict[str, Any]] = []
            for label_values, metric in family.children():
                labels: Mapping[str, str] = dict(
                    zip(family.label_names, label_values)
                )
                if family.kind == "histogram":
                    values.append(
                        {
                            "labels": dict(labels),
                            "count": metric.count,
                            "sum": metric.sum,
                            "p50": metric.quantile(0.50),
                            "p95": metric.quantile(0.95),
                            "p99": metric.quantile(0.99),
                            "buckets": {
                                _format_value(bound): count
                                for bound, count in zip(
                                    metric.buckets, metric.bucket_counts()
                                )
                            },
                        }
                    )
                else:
                    values.append(
                        {"labels": dict(labels), "value": metric.value}
                    )
            result[family.name] = {
                "kind": family.kind,
                "help": family.help,
                "values": values,
            }
        return result

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)
