"""The admin HTTP surface: scrape, probe, and page through one port.

Everything the observability tier accumulates in-process — the metrics
registry, service stats, the health report, the event ring, sampled
traces — becomes operationally useful only once something *outside* the
process can read it.  :class:`AdminServer` is that boundary: a small
stdlib ``ThreadingHTTPServer`` (no framework, no new dependency) bound
to localhost by default, serving:

========================  ====================================================
``GET /metrics``          Prometheus text exposition 0.0.4 from the registry.
``GET /stats``            ``ServiceStats.snapshot()`` as JSON.
``GET /health``           The aggregated health report; ``200`` while the
                          service can serve (healthy *or* degraded), ``503``
                          when unhealthy — load balancers read the code,
                          humans read the body.
``GET /ready``            Readiness probe: ``200`` once serving, ``503``
                          before/after (closed).
``GET /events``           The event-log tail (``?kind=``, ``?n=``) plus
                          lifetime per-kind counts and the dropped counter.
``GET /traces/recent``    The sampled ring of completed span trees (``?n=``).
``GET /profiles/recent``  The sampled ring of structured query profiles
                          (``?n=``), newest first.
``GET /profiles/worst``   The buffered profiles ranked by their worst
                          per-operator q-error (``?n=``).
========================  ====================================================

The server is deliberately *dumb*: every endpoint is a zero-argument
provider callable handed in by the owner (the publishing service), so the
HTTP layer holds no service state and unit tests can stand one up around
plain lambdas.  A provider that raises yields a **500 with the error in
the body** — a broken scrape must look broken, not empty (the same
loudness contract as the registry's collectors).

Binding to port 0 picks an ephemeral port, published as :attr:`port`
after :meth:`start` — how tests and the CI smoke leg run without port
coordination.  Request handling runs on daemon threads; :meth:`stop`
shuts the listener down and joins the serve loop.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from .health import DEGRADED, HEALTHY, HealthReport

#: Content type of the Prometheus text exposition format.
METRICS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"
JSON_CONTENT_TYPE = "application/json; charset=utf-8"

#: Routes advertised in the 404 body, for discoverability.
ROUTES = (
    "/metrics",
    "/stats",
    "/health",
    "/ready",
    "/events",
    "/traces/recent",
    "/profiles/recent",
    "/profiles/worst",
)

DEFAULT_EVENT_TAIL = 100
DEFAULT_TRACE_TAIL = 10
DEFAULT_PROFILE_TAIL = 10


def _query_int(query: Dict[str, Any], name: str, default: int) -> int:
    values = query.get(name)
    if not values:
        return default
    try:
        return int(values[-1])
    except (TypeError, ValueError):
        return default


class _AdminHandler(BaseHTTPRequestHandler):
    """Dispatches GETs to the owning :class:`AdminServer`'s providers."""

    #: Quieter and sturdier for probes than the default HTTP/1.0.
    protocol_version = "HTTP/1.1"
    server: "_AdminHTTPServer"

    def log_message(self, format: str, *args: Any) -> None:
        # Probes hit /health every few seconds; stderr is not the place.
        pass

    def _send(self, status: int, content_type: str, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, status: int, payload: Any) -> None:
        body = json.dumps(payload, indent=2, default=repr).encode("utf-8")
        self._send(status, JSON_CONTENT_TYPE, body)

    def do_GET(self) -> None:  # noqa: N802 (stdlib handler contract)
        parts = urlsplit(self.path)
        query = parse_qs(parts.query)
        try:
            status, content_type, body = self.server.admin.respond(
                parts.path, query
            )
        except Exception as error:
            # A broken provider must produce a broken scrape, loudly.
            message = f"{type(error).__name__}: {error}\n"
            status, content_type = 500, "text/plain; charset=utf-8"
            body = message.encode("utf-8")
        self._send(status, content_type, body)

    def do_POST(self) -> None:  # noqa: N802
        self._send_json(405, {"error": "admin endpoints are read-only"})


class _AdminHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    #: Fast restarts over TIME_WAIT sockets (tests churn servers).
    allow_reuse_address = True
    admin: "AdminServer"


class AdminServer:
    """The operational HTTP endpoint; see the module docstring for routes."""

    def __init__(
        self,
        port: int = 0,
        host: str = "127.0.0.1",
        *,
        metrics_text: Callable[[], str],
        stats_snapshot: Callable[[], Dict[str, Any]],
        health_report: Callable[[], HealthReport],
        ready: Callable[[], bool],
        event_tail: Optional[
            Callable[[Optional[str], int], Dict[str, Any]]
        ] = None,
        trace_recent: Optional[Callable[[int], Dict[str, Any]]] = None,
        profiles_recent: Optional[Callable[[int], Dict[str, Any]]] = None,
        profiles_worst: Optional[Callable[[int], Dict[str, Any]]] = None,
    ) -> None:
        self.host = host
        self._requested_port = port
        self._metrics_text = metrics_text
        self._stats_snapshot = stats_snapshot
        self._health_report = health_report
        self._ready = ready
        self._event_tail = event_tail
        self._trace_recent = trace_recent
        self._profiles_recent = profiles_recent
        self._profiles_worst = profiles_worst
        self._server: Optional[_AdminHTTPServer] = None
        self._thread: Optional[threading.Thread] = None
        self._lock = threading.Lock()

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Bind and serve on a daemon thread; raises ``OSError`` on bind."""
        with self._lock:
            if self._server is not None:
                return
            server = _AdminHTTPServer(
                (self.host, self._requested_port), _AdminHandler
            )
            server.admin = self
            thread = threading.Thread(
                target=server.serve_forever,
                name="mars-admin",
                daemon=True,
            )
            self._server, self._thread = server, thread
            thread.start()

    def stop(self) -> None:
        with self._lock:
            server, thread = self._server, self._thread
            self._server, self._thread = None, None
        if server is not None:
            server.shutdown()
            server.server_close()
        if thread is not None:
            thread.join(timeout=5.0)

    @property
    def running(self) -> bool:
        with self._lock:
            return self._server is not None

    @property
    def port(self) -> Optional[int]:
        """The bound port (resolves port-0 binds), ``None`` when stopped."""
        with self._lock:
            if self._server is None:
                return None
            return self._server.server_address[1]

    @property
    def url(self) -> Optional[str]:
        port = self.port
        if port is None:
            return None
        return f"http://{self.host}:{port}"

    def __enter__(self) -> "AdminServer":
        self.start()
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.stop()

    # -- dispatch ----------------------------------------------------------

    def respond(
        self, path: str, query: Dict[str, Any]
    ) -> Tuple[int, str, bytes]:
        """Route one GET; returns ``(status, content_type, body)``.

        Provider exceptions propagate to the handler's 500 path — routing
        itself never swallows them.
        """
        if path == "/metrics":
            text = self._metrics_text()
            return 200, METRICS_CONTENT_TYPE, text.encode("utf-8")
        if path == "/stats":
            return self._json(200, self._stats_snapshot())
        if path == "/health":
            report = self._health_report()
            status = 200 if report.status in (HEALTHY, DEGRADED) else 503
            return self._json(status, report.to_dict())
        if path == "/ready":
            ready = bool(self._ready())
            return self._json(200 if ready else 503, {"ready": ready})
        if path == "/events":
            if self._event_tail is None:
                return self._json(404, {"error": "event log not enabled"})
            kinds = query.get("kind")
            kind = kinds[-1] if kinds else None
            n = _query_int(query, "n", DEFAULT_EVENT_TAIL)
            return self._json(200, self._event_tail(kind, n))
        if path == "/traces/recent":
            if self._trace_recent is None:
                return self._json(404, {"error": "trace buffer not enabled"})
            n = _query_int(query, "n", DEFAULT_TRACE_TAIL)
            return self._json(200, self._trace_recent(n))
        if path == "/profiles/recent":
            if self._profiles_recent is None:
                return self._json(404, {"error": "profiling not enabled"})
            n = _query_int(query, "n", DEFAULT_PROFILE_TAIL)
            return self._json(200, self._profiles_recent(n))
        if path == "/profiles/worst":
            if self._profiles_worst is None:
                return self._json(404, {"error": "profiling not enabled"})
            n = _query_int(query, "n", DEFAULT_PROFILE_TAIL)
            return self._json(200, self._profiles_worst(n))
        return self._json(404, {"error": "not found", "routes": list(ROUTES)})

    @staticmethod
    def _json(status: int, payload: Any) -> Tuple[int, str, bytes]:
        body = json.dumps(payload, indent=2, default=repr).encode("utf-8")
        return status, JSON_CONTENT_TYPE, body
