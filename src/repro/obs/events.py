"""The structured event log: state transitions that used to happen silently.

Counters say *how often*, traces say *where the time went* — the event
log says *what happened to the deployment*: a replica got fenced after a
failed write, a read failed over to the next copy, the pool replaced a
broken clone, drift triggered a statistics re-collection, a rebalance
staged/copied/cut over.  Each :class:`Event` carries a dense per-log
sequence number (so ordering is assertable), a monotonic timestamp, the
mutation-log LSN at which it happened (stamped automatically through the
owning service's ``lsn_source`` when the recorder itself has none), and
free-form structured details.

The log is a bounded ring (default 1024 events): production services run
forever and an unbounded event history is a slow leak, while the most
recent window is what an operator pages through.  ``events()`` filters by
kind, ``to_dicts()``/``to_json()`` export for shipping.  Recording never
raises into the serving path: an event that cannot be assembled (e.g. the
``lsn_source`` callback failing mid-teardown) is dropped and counted in
:attr:`EventLog.dropped`, surfaced through service stats and the
``mars_events_dropped_total`` metric.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from .timer import now

# Event kinds recorded by the built-in instrumentation.  Free-form kinds
# are allowed; these constants keep service + tests + docs in agreement.
REPLICA_FENCED = "replica.fenced"
REPLICA_FAILOVER = "replica.failover"
POOL_CLONE_REPLACED = "pool.clone_replaced"
STATISTICS_REFRESH = "statistics.refresh"
REBALANCE_STAGE = "rebalance.stage"
REBALANCE_COPY = "rebalance.copy"
REBALANCE_REPLAY = "rebalance.replay"
REBALANCE_CUTOVER = "rebalance.cutover"
SLOW_QUERY = "query.slow"
REPLICA_REPAIRED = "replica.repaired"
LOG_RECOVERED = "log.recovered"
LOG_CHECKPOINT = "log.checkpoint"
# Plan-store load outcomes (values mirrored in ``repro.plan.store``,
# which cannot import this package).
PLAN_LOADED = "plan_store.loaded"
PLAN_STALE = "plan_store.stale"
PLAN_CORRUPT = "plan_store.corrupt"


@dataclass(frozen=True)
class Event:
    """One recorded state transition."""

    #: Dense per-log sequence number (1, 2, 3, ...): the total order.
    sequence: int
    kind: str
    #: Monotonic seconds (``obs.timer.now()``) at record time.
    timestamp: float
    #: Mutation-log LSN the deployment had reached, when known.
    lsn: Optional[int] = None
    details: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        entry: Dict[str, Any] = {
            "sequence": self.sequence,
            "kind": self.kind,
            "timestamp": self.timestamp,
        }
        if self.lsn is not None:
            entry["lsn"] = self.lsn
        if self.details:
            entry["details"] = dict(self.details)
        return entry


class EventLog:
    """A thread-safe bounded ring of :class:`Event` records.

    *lsn_source* — typically set by the publishing service to a callable
    returning its current write LSN — stamps every event recorded without
    an explicit ``lsn``, so even events raised deep inside a backend
    (fencing, failover) are positioned against the write history.
    """

    def __init__(
        self,
        maxlen: int = 1024,
        lsn_source: Optional[Callable[[], int]] = None,
    ):
        if maxlen < 1:
            raise ValueError(f"event log needs maxlen >= 1, got {maxlen}")
        self._lock = threading.Lock()
        self._events: Deque[Event] = deque(maxlen=maxlen)
        self._sequence = 0
        self._dropped = 0
        self._recorded_per_kind: Dict[str, int] = {}
        self.lsn_source = lsn_source

    def record(
        self, kind: str, lsn: Optional[int] = None, **details: Any
    ) -> Optional[Event]:
        """Append one event; returns the stamped record.

        Recording must never take the serving path down: a failure anywhere
        while assembling the record (most likely the ``lsn_source``
        callback raising mid-teardown) drops the event — but *counted*, in
        :attr:`dropped`, never silently.  Returns ``None`` for a dropped
        event.
        """
        try:
            if lsn is None and self.lsn_source is not None:
                lsn = self.lsn_source()
            timestamp = now()
        except Exception:
            with self._lock:
                self._dropped += 1
            return None
        with self._lock:
            self._sequence += 1
            event = Event(
                sequence=self._sequence,
                kind=kind,
                timestamp=timestamp,
                lsn=lsn,
                details=details,
            )
            self._events.append(event)
            self._recorded_per_kind[kind] = (
                self._recorded_per_kind.get(kind, 0) + 1
            )
            return event

    @property
    def dropped(self) -> int:
        """Events discarded because recording them failed (lifetime count)."""
        with self._lock:
            return self._dropped

    def events(self, kind: Optional[str] = None) -> Tuple[Event, ...]:
        """The retained events in order, optionally filtered by *kind*."""
        with self._lock:
            retained = tuple(self._events)
        if kind is None:
            return retained
        return tuple(event for event in retained if event.kind == kind)

    def tail(self, n: int, kind: Optional[str] = None) -> Tuple[Event, ...]:
        """The newest *n* retained events, oldest first.

        The bounded accessor the ``/events`` endpoint (and tests) read
        instead of reaching into the ring: the snapshot is taken under the
        lock, the filter and slice outside it.  ``n <= 0`` returns
        nothing; *kind* filters before the count is applied, so asking for
        the last 5 ``replica.fenced`` events does what it says.
        """
        if n <= 0:
            return ()
        retained = self.events(kind)
        return retained[-n:]

    def counts(self) -> Dict[str, int]:
        """Lifetime events recorded per kind (survives ring eviction)."""
        with self._lock:
            return dict(self._recorded_per_kind)

    def count(self, kind: Optional[str] = None) -> int:
        """Events recorded over the log's lifetime (not just retained)."""
        with self._lock:
            if kind is None:
                return self._sequence
            return self._recorded_per_kind.get(kind, 0)

    def kinds(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._recorded_per_kind))

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def to_dicts(self, kind: Optional[str] = None) -> List[Dict[str, Any]]:
        return [event.to_dict() for event in self.events(kind)]

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dicts(), indent=indent, default=repr)
