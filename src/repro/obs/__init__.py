"""Observability: tracing, metrics, events, health and audit for MARS.

After PRs 1–5 the system could serve, shard, replicate and rebalance —
silently.  This package is the instrumentation layer every subsystem
reports through:

* :mod:`repro.obs.timer` — the one wall-clock helper (``obs.timer()``)
  behind every duration the system records, so spans, ``elapsed_seconds``
  fields and benchmark deltas agree;
* :mod:`repro.obs.trace` — per-request span trees (:class:`Tracer`,
  :class:`Span`, the ambient :func:`current_span`), free when disabled,
  plus the sampled :class:`TraceBuffer` ring of completed traces and the
  :func:`phase_breakdown` per-phase latency attribution;
* :mod:`repro.obs.metrics` — the thread-safe :class:`MetricsRegistry`
  (counters, gauges, fixed-bucket histograms with p50/p95/p99) with
  Prometheus-text and JSON exposition;
* :mod:`repro.obs.events` — the structured :class:`EventLog` of state
  transitions (replica fencing, failover, clone replacement, statistics
  refresh, rebalance stages), LSN-stamped;
* :mod:`repro.obs.feedback` — the :class:`CostFeedback` recorder of
  estimated-vs-actual cardinality and cost per query fingerprint, the
  report adaptive statistics re-collection consumes;
* :mod:`repro.obs.health` — the :class:`HealthCheck` registry rolling
  named probes up into one ``healthy | degraded | unhealthy`` verdict;
* :mod:`repro.obs.slo` — per-query rolling latency objectives with
  error-budget burn (:class:`SLOTracker`);
* :mod:`repro.obs.audit` — the durable, rotated JSONL :class:`AuditLog`
  of every acknowledged publish/update;
* :mod:`repro.obs.http` — the :class:`AdminServer` scrape surface
  (``/metrics``, ``/stats``, ``/health``, ``/ready``, ``/events``,
  ``/traces/recent``).

The :class:`~repro.serve.PublishingService` wires all of these together;
see ``docs/OBSERVABILITY.md`` for the span taxonomy, metric names, event
schema and operational endpoints.
"""

from .audit import AuditError, AuditLog, AuditStats
from .events import (
    Event,
    EventLog,
    LOG_CHECKPOINT,
    LOG_RECOVERED,
    PLAN_CORRUPT,
    PLAN_LOADED,
    PLAN_STALE,
    POOL_CLONE_REPLACED,
    REBALANCE_COPY,
    REBALANCE_CUTOVER,
    REBALANCE_REPLAY,
    REBALANCE_STAGE,
    REPLICA_FAILOVER,
    REPLICA_FENCED,
    REPLICA_REPAIRED,
    SLOW_QUERY,
    STATISTICS_REFRESH,
)
from .feedback import CostFeedback, FingerprintFeedback, Q_ERROR_CAP, q_error
from .health import (
    DEGRADED,
    HEALTHY,
    STATUS_VALUES,
    UNHEALTHY,
    CheckResult,
    HealthCheck,
    HealthReport,
    worst_status,
)
from .http import AdminServer, METRICS_CONTENT_TYPE
from .metrics import (
    ALLOWED_UNIT_SUFFIXES,
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    validate_metric_name,
)
from .slo import SLOReport, SLOTracker
from .timer import Timer, now, timer
from .trace import (
    NULL_SPAN,
    NULL_TRACE,
    PUBLISH_PHASES,
    Span,
    Trace,
    TraceBuffer,
    Tracer,
    current_span,
    phase_breakdown,
)

__all__ = [
    "ALLOWED_UNIT_SUFFIXES",
    "AdminServer",
    "AuditError",
    "AuditLog",
    "AuditStats",
    "CheckResult",
    "Counter",
    "CostFeedback",
    "DEFAULT_LATENCY_BUCKETS",
    "DEGRADED",
    "Event",
    "EventLog",
    "FingerprintFeedback",
    "Gauge",
    "HEALTHY",
    "HealthCheck",
    "HealthReport",
    "Histogram",
    "LOG_CHECKPOINT",
    "LOG_RECOVERED",
    "PLAN_CORRUPT",
    "PLAN_LOADED",
    "PLAN_STALE",
    "Q_ERROR_CAP",
    "METRICS_CONTENT_TYPE",
    "MetricsRegistry",
    "NULL_SPAN",
    "NULL_TRACE",
    "POOL_CLONE_REPLACED",
    "PUBLISH_PHASES",
    "REBALANCE_COPY",
    "REBALANCE_CUTOVER",
    "REBALANCE_REPLAY",
    "REBALANCE_STAGE",
    "REPLICA_FAILOVER",
    "REPLICA_FENCED",
    "REPLICA_REPAIRED",
    "SLOW_QUERY",
    "SLOReport",
    "SLOTracker",
    "STATISTICS_REFRESH",
    "STATUS_VALUES",
    "Span",
    "Timer",
    "Trace",
    "TraceBuffer",
    "Tracer",
    "UNHEALTHY",
    "current_span",
    "now",
    "phase_breakdown",
    "q_error",
    "timer",
    "validate_metric_name",
    "worst_status",
]
