"""Observability: tracing, metrics, events and cost feedback for MARS.

After PRs 1–5 the system could serve, shard, replicate and rebalance —
silently.  This package is the instrumentation layer every subsystem
reports through:

* :mod:`repro.obs.timer` — the one wall-clock helper (``obs.timer()``)
  behind every duration the system records, so spans, ``elapsed_seconds``
  fields and benchmark deltas agree;
* :mod:`repro.obs.trace` — per-request span trees (:class:`Tracer`,
  :class:`Span`, the ambient :func:`current_span`), free when disabled;
* :mod:`repro.obs.metrics` — the thread-safe :class:`MetricsRegistry`
  (counters, gauges, fixed-bucket histograms with p50/p95/p99) with
  Prometheus-text and JSON exposition;
* :mod:`repro.obs.events` — the structured :class:`EventLog` of state
  transitions (replica fencing, failover, clone replacement, statistics
  refresh, rebalance stages), LSN-stamped;
* :mod:`repro.obs.feedback` — the :class:`CostFeedback` recorder of
  estimated-vs-actual cardinality and cost per query fingerprint, the
  report adaptive statistics re-collection consumes.

The :class:`~repro.serve.PublishingService` wires all four together; see
``docs/OBSERVABILITY.md`` for the span taxonomy, metric names and event
schema.
"""

from .events import (
    Event,
    EventLog,
    LOG_CHECKPOINT,
    LOG_RECOVERED,
    POOL_CLONE_REPLACED,
    REBALANCE_COPY,
    REBALANCE_CUTOVER,
    REBALANCE_REPLAY,
    REBALANCE_STAGE,
    REPLICA_FAILOVER,
    REPLICA_FENCED,
    REPLICA_REPAIRED,
    SLOW_QUERY,
    STATISTICS_REFRESH,
)
from .feedback import CostFeedback, FingerprintFeedback, q_error
from .metrics import (
    ALLOWED_UNIT_SUFFIXES,
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    validate_metric_name,
)
from .timer import Timer, now, timer
from .trace import NULL_SPAN, NULL_TRACE, Span, Trace, Tracer, current_span

__all__ = [
    "ALLOWED_UNIT_SUFFIXES",
    "Counter",
    "CostFeedback",
    "DEFAULT_LATENCY_BUCKETS",
    "Event",
    "EventLog",
    "FingerprintFeedback",
    "Gauge",
    "Histogram",
    "LOG_CHECKPOINT",
    "LOG_RECOVERED",
    "MetricsRegistry",
    "NULL_SPAN",
    "NULL_TRACE",
    "POOL_CLONE_REPLACED",
    "REBALANCE_COPY",
    "REBALANCE_CUTOVER",
    "REBALANCE_REPLAY",
    "REBALANCE_STAGE",
    "REPLICA_FAILOVER",
    "REPLICA_FENCED",
    "REPLICA_REPAIRED",
    "SLOW_QUERY",
    "STATISTICS_REFRESH",
    "Span",
    "Timer",
    "Trace",
    "Tracer",
    "current_span",
    "now",
    "q_error",
    "timer",
    "validate_metric_name",
]
