"""The health model: machine-readable liveness for orchestrators.

Counters and events tell an operator *what happened*; an orchestrator
(or a load balancer) needs one word: can this process serve?  A
:class:`HealthCheck` registry aggregates named checks — each returning a
:class:`CheckResult` with a ``healthy | degraded | unhealthy`` status and
a human-readable reason — into a :class:`HealthReport` whose overall
status is the worst of its parts:

* ``healthy`` — every check passed; full capacity.
* ``degraded`` — still serving, but below spec (a replica down and not
  yet repaired, the pool saturated, stale-clone churn): keep routing
  traffic, page someone.
* ``unhealthy`` — not fit to serve (no live replicas, durable log
  closed, service closed): stop routing traffic.

A check that *raises* is reported as ``unhealthy`` with the exception as
its reason — a broken probe is a finding, never a crash of the admin
surface.  :data:`STATUS_VALUES` maps statuses onto the
``mars_health_status`` gauge (1 healthy, 0.5 degraded, 0 unhealthy), so
a dashboard threshold or alert rule reads one number.

The :class:`~repro.serve.PublishingService` registers its built-in
checks (replica liveness, pool pressure, durable-log disk state,
repair-loop heartbeat) and serves the report on ``GET /health``; see
``docs/OBSERVABILITY.md`` for the endpoint semantics.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Tuple

HEALTHY = "healthy"
DEGRADED = "degraded"
UNHEALTHY = "unhealthy"

#: Severity order: the aggregate status is the maximum over the checks.
_SEVERITY: Dict[str, int] = {HEALTHY: 0, DEGRADED: 1, UNHEALTHY: 2}

#: The ``mars_health_status`` gauge encoding: alert rules compare one
#: number (``< 1`` is degraded, ``0`` is down).
STATUS_VALUES: Dict[str, float] = {HEALTHY: 1.0, DEGRADED: 0.5, UNHEALTHY: 0.0}


def worst_status(statuses: Iterable[str]) -> str:
    """The most severe of *statuses* (``healthy`` when empty)."""
    worst = HEALTHY
    for status in statuses:
        if status not in _SEVERITY:
            raise ValueError(f"unknown health status {status!r}")
        if _SEVERITY[status] > _SEVERITY[worst]:
            worst = status
    return worst


@dataclass(frozen=True)
class CheckResult:
    """One check's verdict: a status, the reason, and its evidence."""

    name: str
    status: str
    #: Why the check is not (or is) healthy, for the report's reader.
    reason: str = ""
    #: The numbers behind the verdict (live replica count, queue depth).
    details: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.status not in _SEVERITY:
            raise ValueError(f"unknown health status {self.status!r}")

    def to_dict(self) -> Dict[str, Any]:
        entry: Dict[str, Any] = {"name": self.name, "status": self.status}
        if self.reason:
            entry["reason"] = self.reason
        if self.details:
            entry["details"] = dict(self.details)
        return entry


@dataclass(frozen=True)
class HealthReport:
    """The aggregate status plus every check's individual verdict."""

    status: str
    checks: Tuple[CheckResult, ...]

    @property
    def value(self) -> float:
        """The :data:`STATUS_VALUES` encoding for the health gauge."""
        return STATUS_VALUES[self.status]

    def reasons(self) -> Tuple[str, ...]:
        """The non-healthy checks' reasons, ``"name: reason"`` each."""
        return tuple(
            f"{check.name}: {check.reason or check.status}"
            for check in self.checks
            if check.status != HEALTHY
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "status": self.status,
            "checks": [check.to_dict() for check in self.checks],
        }


class HealthCheck:
    """A registry of named health probes, aggregated on demand.

    Checks are zero-argument callables returning a :class:`CheckResult`;
    they run at :meth:`report` time (a ``/health`` hit), in registration
    order, each isolated — a raising check contributes an ``unhealthy``
    result naming the exception instead of propagating.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._checks: Dict[str, Callable[[], CheckResult]] = {}

    def register(self, name: str, check: Callable[[], CheckResult]) -> None:
        """Add (or replace) the probe registered under *name*."""
        if not name:
            raise ValueError("health check needs a non-empty name")
        with self._lock:
            self._checks[name] = check

    def unregister(self, name: str) -> None:
        with self._lock:
            self._checks.pop(name, None)

    def names(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(self._checks)

    def report(self) -> HealthReport:
        """Run every check and aggregate: the worst status wins."""
        with self._lock:
            checks = list(self._checks.items())
        results: List[CheckResult] = []
        for name, check in checks:
            try:
                result = check()
            except Exception as error:
                result = CheckResult(
                    name,
                    UNHEALTHY,
                    reason=f"check raised {type(error).__name__}: {error}",
                )
            results.append(result)
        status = worst_status(result.status for result in results)
        return HealthReport(status=status, checks=tuple(results))
