"""Exception hierarchy for the MARS reproduction.

Every error raised by the library derives from :class:`MarsError` so that
callers can catch the whole family with a single ``except`` clause.
"""

from __future__ import annotations


class MarsError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ParseError(MarsError):
    """Raised when parsing XPath, XQuery or XML text fails."""

    def __init__(self, message: str, position: int | None = None):
        if position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)
        self.position = position


class SchemaError(MarsError):
    """Raised for inconsistent schema declarations (arity mismatch, duplicates)."""


class CompilationError(MarsError):
    """Raised when XML artifacts cannot be compiled to the relational framework."""


class ChaseError(MarsError):
    """Raised when the chase cannot make progress or exceeds its budget."""


class ReformulationError(MarsError):
    """Raised when no reformulation against the proprietary schema exists."""


class EvaluationError(MarsError):
    """Raised when a query cannot be evaluated against the in-memory storage."""


class StorageError(EvaluationError):
    """Raised for storage-backend lifecycle misuse (double close, use after
    close, exhausted or closed connection pools).

    Subclasses :class:`EvaluationError` so callers that treat backend
    failures uniformly keep working."""


class SpecializationError(MarsError):
    """Raised for invalid schema-specialization mappings."""
