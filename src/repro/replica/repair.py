"""Replica repair: restore K copies after a replica is fenced or dies.

Fencing (:mod:`~repro.replica.backend`) keeps a replicated store *correct*
after a failure — a copy that may have missed a write never serves reads
again — but it leaves the store *degraded*: every fenced replica is one
less copy between the deployment and total data loss.  Before this module
the only way back to K was a full service rebuild.

The :class:`ReplicaRepairer` re-provisions dead replicas online, in the
same snapshot-plus-log-replay shape as the
:class:`~repro.replica.rebalancer.Rebalancer`:

1. **Snapshot** — under the caller's brief write pause, clone a live
   replica and note the mutation-log LSN at that instant.  The clone is
   the replacement's base state.
2. **Replay** — writes keep landing while the (potentially large) clone
   settles; outside the pause the repairer replays the log tail above the
   snapshot LSN into the replacement.
3. **Cutover** — under the pause again, replay whatever tail remains and
   :meth:`~repro.replica.backend.ReplicatedBackend.adopt_replica` the
   replacement into the dead slot.  From the next write on, the store is
   back at K live copies, differentially identical to the survivors.

Engines whose clones are *not* snapshots (a file-backed SQLite replica
clones into the same database file) skip the replay: their replacement
sees every subsequent write through the shared file already, and replaying
would double-apply.

:class:`RepairLoop` is the failure detector: a daemon thread that
periodically runs a repair check (the publishing service wires it to its
``repair_replicas``) so a killed replica heals without an operator.  Each
repair is recorded as a ``replica.repaired`` event, LSN-stamped.
"""

from __future__ import annotations

import threading
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from ..errors import StorageError
from ..obs.events import EventLog, REPLICA_REPAIRED
from ..obs.timer import timer
from .backend import ReplicatedBackend
from .changeset import MutationLog


@dataclass(frozen=True)
class RepairReport:
    """What one repair pass did, for logs and assertions."""

    #: Dead replica indices found at the start of the pass.
    dead_replicas: Tuple[int, ...]
    #: Indices actually restored to a live copy.
    repaired: Tuple[int, ...]
    rows_copied: int
    entries_replayed: int
    seconds: float


class ReplicaRepairer:
    """Re-provisions the dead replicas of one :class:`ReplicatedBackend`."""

    def __init__(
        self,
        backend: ReplicatedBackend,
        events: Optional[EventLog] = None,
    ):
        if not isinstance(backend, ReplicatedBackend):
            raise StorageError(
                "the repairer operates on a ReplicatedBackend "
                f"(got {type(backend).__name__})"
            )
        self.backend = backend
        self.events = events

    def dead_replicas(self) -> Tuple[int, ...]:
        """Indices of fenced/killed replicas (empty when at full strength)."""
        return tuple(
            index
            for index, replica in enumerate(self.backend.replicas)
            if replica.closed
        )

    def repair(
        self,
        index: int,
        log: Optional[MutationLog] = None,
        pause: Optional[Callable[[], object]] = None,
    ) -> Tuple[int, int]:
        """Restore the dead replica at *index* from a live copy.

        *pause* is a zero-argument callable returning a context manager
        (the service's write lock); ``None`` means no concurrent writers
        exist.  *log* is the mutation log writes are teed into — without
        it the snapshot alone must be current (writers paused for the
        whole call).  Returns ``(rows_copied, entries_replayed)``.
        """
        backend = self.backend
        dead = backend.replicas[index]
        if not dead.closed:
            raise StorageError(f"replica {index} is live; nothing to repair")

        def paused():
            return pause() if pause is not None else nullcontext()

        # Snapshot: clone a live replica under the pause, stamped with the
        # log LSN the clone contains.
        with paused():
            source = next(
                (r for r in backend.replicas if not r.closed), None
            )
            if source is None:
                raise StorageError(
                    "cannot repair: no live replica remains to copy from"
                )
            snapshot_lsn = log.lsn if log is not None else 0
            replacement = source.clone()
        needs_replay = log is not None and source.clone_is_snapshot
        try:
            rows = sum(replacement.cardinalities().values())
            replayed = 0
            replayed_upto = snapshot_lsn
            if needs_replay:
                # Catch-up outside the pause: writers are live.
                for entry in log.entries_since(replayed_upto):
                    replacement.apply(entry.changeset)
                    replayed_upto = entry.lsn
                    replayed += 1
            # Cutover: final replay + slot swap with writers still.
            with paused():
                if needs_replay:
                    for entry in log.entries_since(replayed_upto):
                        replacement.apply(entry.changeset)
                        replayed_upto = entry.lsn
                        replayed += 1
                backend.adopt_replica(index, replacement)
        except Exception:
            if not replacement.closed:
                replacement.close()
            raise
        if self.events is not None:
            self.events.record(
                REPLICA_REPAIRED,
                lsn=replayed_upto if log is not None else None,
                replica=index,
                engine=replacement.backend_name,
                rows_copied=rows,
                entries_replayed=replayed,
                live_replicas=sum(
                    1 for r in backend.replicas if not r.closed
                ),
            )
        return rows, replayed

    def repair_all(
        self,
        log: Optional[MutationLog] = None,
        pause: Optional[Callable[[], object]] = None,
    ) -> RepairReport:
        """Repair every dead replica; returns what happened.

        A replica whose repair fails (e.g. the last live copy died
        mid-clone) is left dead and excluded from ``repaired``; the pass
        continues so one bad slot does not block the others, and the
        final error is re-raised only when *nothing* could be repaired.
        """
        clock = timer()
        dead = self.dead_replicas()
        repaired: List[int] = []
        rows_total = 0
        entries_total = 0
        last_error: Optional[Exception] = None
        for index in dead:
            try:
                rows, replayed = self.repair(index, log=log, pause=pause)
            except StorageError as error:
                last_error = error
                continue
            repaired.append(index)
            rows_total += rows
            entries_total += replayed
        if dead and not repaired and last_error is not None:
            raise last_error
        return RepairReport(
            dead_replicas=dead,
            repaired=tuple(repaired),
            rows_copied=rows_total,
            entries_replayed=entries_total,
            seconds=clock.elapsed,
        )


class RepairLoop:
    """A daemon thread running a repair check on a fixed interval.

    *check* is any zero-argument callable (the publishing service passes
    its ``repair_replicas``).  The loop never dies with the check: an
    exception is counted in :attr:`errors` and the next tick proceeds —
    a transient failure (every replica of a pool briefly closed during a
    rebuild) must not disable self-healing forever.
    """

    def __init__(self, check: Callable[[], object], interval: float = 1.0):
        if interval <= 0:
            raise ValueError(f"repair interval must be > 0, got {interval}")
        self.check = check
        self.interval = interval
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._lock = threading.Lock()
        self._ticks = 0
        self._errors = 0

    def start(self) -> None:
        if self._thread is not None:
            raise StorageError("RepairLoop.start() called twice")
        self._thread = threading.Thread(
            target=self._run, name="mars-repair-loop", daemon=True
        )
        self._thread.start()

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            with self._lock:
                self._ticks += 1
            try:
                self.check()
            except Exception:
                with self._lock:
                    self._errors += 1

    def stop(self) -> None:
        """Stop the loop and join the thread; idempotent."""
        self._stop.set()
        thread, self._thread = self._thread, None
        if thread is not None:
            thread.join()

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    @property
    def ticks(self) -> int:
        with self._lock:
            return self._ticks

    @property
    def errors(self) -> int:
        with self._lock:
            return self._errors
