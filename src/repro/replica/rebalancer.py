"""Online shard rebalancing: split or merge a live sharded store.

Changing the shard count used to mean rebuilding the whole deployment —
rows are routed at insert time, so a layout change invalidates every
fragment.  The :class:`Rebalancer` does it online, in the classic
snapshot-plus-log-replay shape:

1. **Stage** — build the new child engines and declare every table on
   them (same partition specs, same partitioners, applied modulo the new
   shard count; a staging :class:`~repro.shard.backend.ShardedBackend`
   shell does the routing).
2. **Copy** — snapshot each table's rows out of the live layout and route
   them into the staging layout.  Each table's snapshot is taken under
   the caller's *write pause* (a per-table pause, not one long outage)
   and stamped with the mutation-log LSN at that instant.
3. **Replay** — writes keep landing on the live layout during the copy;
   the caller tees them into a :class:`~repro.replica.changeset.MutationLog`
   and the rebalancer replays the tail into the staging layout, skipping
   each table's entries at or below its snapshot LSN (those rows were
   already copied).  Replay can run repeatedly as the tail grows.
4. **Cutover** — under the caller's exclusive gate (no reads or writes in
   flight) replay whatever tail remains and
   :meth:`~repro.shard.backend.ShardedBackend.adopt_layout` the staging
   children into the live backend — an atomic swap of the partition map
   that bumps the backend's ``layout_version``.  The caller then closes
   the old children, rebuilds per-shard pools and refreshes statistics
   (which flushes cached plans priced under the old fragment sizes).

:meth:`Rebalancer.run` drives all four phases for callers that can pass
the pause/gate context managers (``PublishingService.rebalance`` does);
the phase methods are public so tests can interleave writes precisely.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import StorageError
from ..obs.events import (
    EventLog,
    REBALANCE_COPY,
    REBALANCE_CUTOVER,
    REBALANCE_REPLAY,
    REBALANCE_STAGE,
)
from ..obs.timer import timer
from ..shard.backend import ChildSpec, ShardedBackend
from ..storage.backends.base import StorageBackend
from .changeset import ChangeSet, MutationLog


@dataclass(frozen=True)
class RebalanceReport:
    """What one rebalance did, for logs and assertions."""

    old_shard_count: int
    new_shard_count: int
    tables_copied: int
    rows_copied: int
    entries_replayed: int
    layout_version: int
    seconds: float


class Rebalancer:
    """Copies a live :class:`ShardedBackend` into a new shard layout.

    *children* names the new layout: an explicit list of child specs, or
    ``None`` with *shards* to build that many children of the same engine
    mix as today's first child (strings/classes only; pass explicit specs
    for anything fancier).
    """

    def __init__(
        self,
        backend: ShardedBackend,
        shards: Optional[int] = None,
        children: Optional[Sequence[ChildSpec]] = None,
        events: Optional[EventLog] = None,
    ):
        if not isinstance(backend, ShardedBackend):
            raise StorageError(
                "the rebalancer operates on a ShardedBackend "
                f"(got {type(backend).__name__})"
            )
        if backend.closed:
            raise StorageError("cannot rebalance a closed backend")
        if children is None:
            if shards is None or shards < 1:
                raise StorageError(
                    f"rebalance needs shards >= 1 or explicit children, got {shards}"
                )
            children = ["memory"] * shards
        else:
            children = list(children)
            if shards is not None and shards != len(children):
                raise StorageError(
                    f"shards={shards} does not match the {len(children)} "
                    "child specifications"
                )
        self.backend = backend
        self.events = events
        self._child_specs: List[ChildSpec] = list(children)
        self._staging: Optional[ShardedBackend] = None
        #: table -> log LSN its snapshot was taken at.
        self._copy_lsn: Dict[str, int] = {}
        self._replayed_upto = 0
        self._rows_copied = 0
        self._entries_replayed = 0

    # ------------------------------------------------------------------
    # Phases
    # ------------------------------------------------------------------
    def stage(self) -> None:
        """Build the new children and declare every table on them."""
        if self._staging is not None:
            raise StorageError("rebalance already staged")
        backend = self.backend
        staging = ShardedBackend(
            children=self._child_specs,
            partition_keys=dict(backend._partition_keys),
            partitioners=dict(backend._partitioners),
        )
        try:
            for name in backend.table_names:
                staging.create_table(
                    name, backend._arities[name], backend._attributes[name]
                )
        except Exception:
            staging.close()
            raise
        self._staging = staging
        if self.events is not None:
            self.events.record(
                REBALANCE_STAGE,
                old_shards=backend.shard_count,
                new_shards=staging.shard_count,
                tables=len(backend.table_names),
            )

    def copy_table(self, name: str, snapshot_lsn: int = 0) -> int:
        """Route one table's current rows into the staging layout.

        The caller materializes consistency: call this under the write
        pause (or with writers quiesced) and pass the mutation log's LSN
        at snapshot time, so :meth:`replay` can skip entries the copy
        already contains.  Returns the number of rows copied.
        """
        staging = self._require_staged()
        rows = [tuple(row) for row in self.backend.rows(name)]
        self._copy_lsn[name] = snapshot_lsn
        if rows:
            staging.insert_many(name, rows)
        self._rows_copied += len(rows)
        return len(rows)

    def copy_all(
        self,
        log: Optional[MutationLog] = None,
        pause: Optional[Callable[[], object]] = None,
    ) -> int:
        """Copy every table, snapshotting each one under *pause*.

        *pause* is a zero-argument callable returning a context manager
        (typically the service's write lock); ``None`` means no writers
        exist.  With *log* given, each table's snapshot LSN is read while
        paused, so concurrent writes between table copies are replayed —
        not lost and not double-applied.
        """
        copied = 0
        for name in self.backend.table_names:
            guard = pause() if pause is not None else nullcontext()
            with guard:
                lsn = log.lsn if log is not None else 0
                # Materializing the snapshot happens under the pause; the
                # (slower) routing+insert into staging happens after it.
                rows = [tuple(row) for row in self.backend.rows(name)]
            self._copy_lsn[name] = lsn
            staging = self._require_staged()
            if rows:
                staging.insert_many(name, rows)
            self._rows_copied += len(rows)
            copied += len(rows)
        if self.events is not None:
            self.events.record(
                REBALANCE_COPY,
                lsn=max(self._copy_lsn.values(), default=0),
                tables=len(self._copy_lsn),
                rows=copied,
            )
        return copied

    def replay(self, log: MutationLog) -> int:
        """Apply the log tail to the staging layout; returns entries replayed.

        Per entry, only the table changes whose snapshot predates the
        entry are applied (``entry.lsn > copy_lsn[table]``); a table
        copied *after* the entry already contains its effect.  Call
        repeatedly while writers are live, and once more under the
        exclusive gate just before :meth:`cutover`.
        """
        staging = self._require_staged()
        applied = 0
        for entry in log.entries_since(self._replayed_upto):
            wanted = [
                change
                for change in entry.changeset.changes
                if entry.lsn > self._copy_lsn.get(change.relation, 0)
            ]
            if wanted:
                staging.apply(ChangeSet(changes=tuple(wanted)))
            self._replayed_upto = entry.lsn
            applied += 1
        self._entries_replayed += applied
        if self.events is not None:
            self.events.record(
                REBALANCE_REPLAY,
                lsn=self._replayed_upto,
                entries=applied,
            )
        return applied

    def cutover(self) -> Tuple[StorageBackend, ...]:
        """Swap the staging children into the live backend (see caller rules).

        Must run with no reads or writes in flight.  Returns the old
        children, still open — close them once nothing references them.
        """
        staging = self._require_staged()
        if set(self._copy_lsn) != set(self.backend.table_names):
            missing = set(self.backend.table_names) - set(self._copy_lsn)
            raise StorageError(
                f"cutover before copying tables: {sorted(missing)}"
            )
        children = staging.release_children()
        self._staging = None
        old_children = self.backend.adopt_layout(children)
        if self.events is not None:
            self.events.record(
                REBALANCE_CUTOVER,
                lsn=self._replayed_upto,
                new_shards=self.backend.shard_count,
                layout_version=self.backend.layout_version,
            )
        return old_children

    def abort(self) -> None:
        """Drop the staging layout (nothing was swapped); idempotent."""
        staging, self._staging = self._staging, None
        if staging is not None and not staging.closed:
            staging.close()

    def _require_staged(self) -> ShardedBackend:
        if self._staging is None:
            raise StorageError("rebalance is not staged (call stage() first)")
        return self._staging

    # ------------------------------------------------------------------
    # Progress accessors (for reports)
    # ------------------------------------------------------------------
    @property
    def tables_copied(self) -> int:
        return len(self._copy_lsn)

    @property
    def rows_copied(self) -> int:
        return self._rows_copied

    @property
    def entries_replayed(self) -> int:
        return self._entries_replayed

    # ------------------------------------------------------------------
    # One-call driver
    # ------------------------------------------------------------------
    def run(
        self,
        log: Optional[MutationLog] = None,
        pause: Optional[Callable[[], object]] = None,
        exclusive: Optional[Callable[[], object]] = None,
        close_old: bool = True,
    ) -> RebalanceReport:
        """Stage, copy, replay and cut over in one call.

        *pause* briefly blocks writers during each table snapshot;
        *exclusive* blocks reads **and** writes around the final replay +
        swap (both are zero-argument callables returning context
        managers; ``None`` means no concurrent traffic exists).  With
        *close_old* the superseded children are closed after the swap.
        """
        clock = timer()
        old_count = self.backend.shard_count
        self.stage()
        try:
            self.copy_all(log=log, pause=pause)
            if log is not None:
                self.replay(log)
            guard = exclusive() if exclusive is not None else nullcontext()
            with guard:
                if log is not None:
                    self.replay(log)
                old_children = self.cutover()
        except Exception:
            self.abort()
            raise
        if close_old:
            for child in old_children:
                if not child.closed:
                    child.close()
        return RebalanceReport(
            old_shard_count=old_count,
            new_shard_count=self.backend.shard_count,
            tables_copied=len(self._copy_lsn),
            rows_copied=self._rows_copied,
            entries_replayed=self._entries_replayed,
            layout_version=self.backend.layout_version,
            seconds=clock.elapsed,
        )
