"""Replication and live updates for the MARS proprietary storage.

The read-only reproduction becomes an *updatable, redundant* one:

* :mod:`~repro.replica.changeset` — :class:`ChangeSet` (per-relation
  insert/delete batches every backend can ``apply``) and
  :class:`MutationLog` (LSN-stamped history that pooled snapshot clones
  replay to catch up, instead of forcing a service rebuild);
* :mod:`~repro.replica.backend` — :class:`ReplicatedBackend` (backend
  name ``replicated``): K replica engines, reads fanned out by a
  pluggable :class:`ReplicaSelector` with failover on ``StorageError``,
  writes applied to every live replica (failed writers are fenced);
* :mod:`~repro.replica.rebalancer` — :class:`Rebalancer`: online shard
  split/merge by fragment snapshot + mutation-log tail replay + atomic
  partition-map swap (``ShardedBackend.adopt_layout``);
* :mod:`~repro.replica.durable` — :class:`DurableMutationLog`: the same
  log spooled to append-only segment files with per-segment indexes,
  crash recovery with torn-tail truncation, checkpoint-gated
  segment-granular compaction;
* :mod:`~repro.replica.repair` — :class:`ReplicaRepairer` and
  :class:`RepairLoop`: detect fenced/dead replicas and re-provision them
  online from a live copy plus the log tail, restoring K.

``PublishingService`` wires all three into serving:
``update(changeset)`` is the live write path with a read-your-writes LSN
barrier in ``publish``, and ``rebalance(...)`` re-shards without stopping
reads.
"""

from .backend import ReplicatedBackend, ReplicaStats, default_replica_count
from .changeset import ChangeSet, LogEntry, MutationLog, TableChange
from .durable import DurableLogStats, DurableMutationLog, restore_snapshot
from .rebalancer import RebalanceReport, Rebalancer
from .repair import RepairLoop, RepairReport, ReplicaRepairer
from .selector import (
    LeastLoadedSelector,
    ReplicaSelector,
    RoundRobinSelector,
    create_selector,
)

__all__ = [
    "ChangeSet",
    "DurableLogStats",
    "DurableMutationLog",
    "LeastLoadedSelector",
    "LogEntry",
    "MutationLog",
    "RebalanceReport",
    "Rebalancer",
    "RepairLoop",
    "RepairReport",
    "ReplicaRepairer",
    "ReplicaSelector",
    "ReplicaStats",
    "ReplicatedBackend",
    "RoundRobinSelector",
    "TableChange",
    "create_selector",
    "default_replica_count",
    "restore_snapshot",
]
