"""The durable mutation log: append-only segment files plus an index.

The in-memory :class:`~repro.replica.changeset.MutationLog` gives the
write path LSNs, catch-up replay and a read-your-writes barrier — and
loses all of it the moment the process exits.  This module spools the
same log to disk in the XMLtapes idiom (append-only tape files with an
index over them):

* **Segments** — change sets are appended to numbered segment files
  (``<base-lsn>.seg``).  Each record is ``header(lsn, length, crc32)``
  followed by the pickled :class:`~repro.replica.changeset.ChangeSet`;
  when a segment grows past ``segment_max_bytes`` it is *sealed* (its
  index is persisted as a ``.idx`` sidecar) and a new segment starts.
  The configurable ``fsync`` policy trades durability for append
  latency: ``"always"`` fsyncs every record (survives power loss),
  ``"off"`` flushes to the OS only (survives process death).

* **Recovery** — reopening a log directory loads the sealed segments via
  their sidecar indexes (falling back to a scan when a sidecar is
  missing or stale) and scans the unsealed tail segment record by
  record, validating each CRC.  A torn tail record — the half-written
  footprint of a crash mid-append — is **truncated, not fatal**: the
  record was never acknowledged, so the log recovers the longest intact
  prefix and continues assigning LSNs from there.  Corruption anywhere
  *before* the tail is a real storage fault and raises
  :class:`~repro.errors.StorageError`.

* **Segment-granular compaction** — :meth:`compact` drops whole sealed
  segment files, never individual entries, and only below the
  *checkpoint* watermark: until :meth:`write_checkpoint` has persisted a
  snapshot of the stored state, every entry is still needed to rebuild
  that state from the configuration's base data on restart, so
  compaction is a guarded no-op.  After a checkpoint, restart recovery
  is ``restore snapshot + replay the remaining tail``.

The class is a drop-in :class:`MutationLog`: the connection pool, the
publishing service and the rebalancer use the same
``append``/``entries_since``/``compact`` contract against either.
"""

from __future__ import annotations

import io
import os
import pickle
import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, BinaryIO, Dict, List, Optional, Tuple

from ..errors import StorageError
from .changeset import ChangeSet, LogEntry, MutationLog

SEGMENT_SUFFIX = ".seg"
INDEX_SUFFIX = ".idx"
CHECKPOINT_NAME = "checkpoint.snap"

#: Record header: LSN, payload length, CRC32 of the payload.
_HEADER = struct.Struct("<QII")

#: Allowed fsync policies: ``"always"`` fsyncs per append, ``"off"``
#: flushes to the OS page cache only.
FSYNC_POLICIES = ("always", "off")

DEFAULT_SEGMENT_MAX_BYTES = 1 << 20


@dataclass
class _Segment:
    """One on-disk segment file and its in-memory index."""

    path: Path
    base_lsn: int
    last_lsn: int
    size: int
    #: ``(lsn, offset)`` per record, offsets pointing at the header.
    index: List[Tuple[int, int]] = field(default_factory=list)


@dataclass(frozen=True)
class DurableLogStats:
    """A snapshot of the log's on-disk footprint."""

    segments: int
    entries: int
    size_bytes: int
    lsn: int
    floor: int
    checkpoint_lsn: int
    truncated_records: int
    fsync: str


def _segment_name(base_lsn: int) -> str:
    return f"{base_lsn:020d}{SEGMENT_SUFFIX}"


class DurableMutationLog(MutationLog):
    """An LSN-stamped mutation log spooled to append-only segment files.

    Same thread-safe contract as :class:`MutationLog`; additionally owns
    a directory of segment files, recovers from it on construction, and
    persists/loads state checkpoints (:meth:`write_checkpoint`,
    :meth:`load_checkpoint`).  Call :meth:`close` to release the active
    segment's file handle — reopening the directory recovers everything
    that was flushed.
    """

    def __init__(
        self,
        directory: "os.PathLike[str] | str",
        fsync: str = "always",
        segment_max_bytes: int = DEFAULT_SEGMENT_MAX_BYTES,
    ) -> None:
        super().__init__()
        if fsync not in FSYNC_POLICIES:
            raise StorageError(
                f"unknown fsync policy {fsync!r} "
                f"(one of {', '.join(FSYNC_POLICIES)})"
            )
        if segment_max_bytes < 1:
            raise StorageError(
                f"segment_max_bytes must be >= 1, got {segment_max_bytes}"
            )
        self.directory = Path(directory)
        self.fsync = fsync
        self.segment_max_bytes = segment_max_bytes
        self.directory.mkdir(parents=True, exist_ok=True)
        self._sealed: List[_Segment] = []
        self._active: Optional[_Segment] = None
        self._handle: Optional[BinaryIO] = None
        #: In-memory entries of the active (unsealed) segment, so the hot
        #: ``entries_since`` path — a pool clone already at the head —
        #: touches no disk.
        self._tail: List[LogEntry] = []
        self._checkpoint_lsn = 0
        self._truncated = 0
        self._closed = False
        self._recover()

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def _recover(self) -> None:
        checkpoint = self._read_checkpoint_header()
        self._checkpoint_lsn = checkpoint
        paths = sorted(self.directory.glob(f"*{SEGMENT_SUFFIX}"))
        segments: List[_Segment] = []
        for position, path in enumerate(paths):
            final = position == len(paths) - 1
            segment = self._load_segment(path, truncate_tail=final)
            if segment is not None:
                segments.append(segment)
        # An emptied-out tail segment (every record torn) carries no
        # entries; drop the file so the base-LSN bookkeeping below only
        # sees populated segments.
        self._sealed = segments
        if segments:
            self._floor = segments[0].base_lsn - 1
            self._lsn = segments[-1].last_lsn
            expected = segments[0].base_lsn
            for segment in segments:
                if segment.base_lsn != expected:
                    raise StorageError(
                        f"mutation log {self.directory} has a gap: expected "
                        f"segment at LSN {expected}, found {segment.path.name}"
                    )
                expected = segment.last_lsn + 1
            if self._floor > checkpoint:
                raise StorageError(
                    f"mutation log {self.directory} starts at LSN "
                    f"{self._floor + 1} but the last checkpoint covers only "
                    f"LSN {checkpoint}: entries needed for recovery are gone"
                )
        else:
            self._floor = checkpoint
            self._lsn = checkpoint

    def _read_checkpoint_header(self) -> int:
        path = self.directory / CHECKPOINT_NAME
        if not path.exists():
            return 0
        try:
            with path.open("rb") as handle:
                payload = handle.read()
            header, body = payload[: _HEADER.size], payload[_HEADER.size :]
            lsn, length, crc = _HEADER.unpack(header)
            if len(body) != length or zlib.crc32(body) != crc:
                raise ValueError("checksum mismatch")
            return lsn
        except Exception as error:
            raise StorageError(
                f"mutation-log checkpoint {path} is unreadable: {error}"
            ) from error

    def _load_segment(
        self, path: Path, truncate_tail: bool
    ) -> Optional[_Segment]:
        sidecar = path.with_suffix(INDEX_SUFFIX)
        if sidecar.exists():
            segment = self._load_sidecar(path, sidecar)
            if segment is not None:
                return segment
        return self._scan_segment(path, truncate_tail)

    def _load_sidecar(self, path: Path, sidecar: Path) -> Optional[_Segment]:
        """A sealed segment's persisted index, if it still matches the file."""
        try:
            with sidecar.open("rb") as handle:
                meta = pickle.load(handle)
            segment = _Segment(
                path=path,
                base_lsn=int(meta["base_lsn"]),
                last_lsn=int(meta["last_lsn"]),
                size=int(meta["size"]),
                index=[(int(lsn), int(offset)) for lsn, offset in meta["index"]],
            )
        except Exception:
            return None
        if path.stat().st_size != segment.size or not segment.index:
            return None  # stale sidecar: fall back to scanning the file
        return segment

    def _scan_segment(
        self, path: Path, truncate_tail: bool
    ) -> Optional[_Segment]:
        """Rebuild a segment's index record by record, validating CRCs.

        A bad record in the *final* segment is a torn tail: the file is
        truncated at the last intact record and recovery continues.  A
        bad record anywhere else lost acknowledged history and raises.
        """
        index: List[Tuple[int, int]] = []
        base_lsn = last_lsn = 0
        offset = 0
        torn: Optional[str] = None
        with path.open("rb") as handle:
            while True:
                header = handle.read(_HEADER.size)
                if not header:
                    break
                if len(header) < _HEADER.size:
                    torn = "short header"
                    break
                lsn, length, crc = _HEADER.unpack(header)
                payload = handle.read(length)
                if len(payload) < length:
                    torn = "short payload"
                    break
                if zlib.crc32(payload) != crc:
                    torn = "checksum mismatch"
                    break
                if index and lsn != last_lsn + 1:
                    torn = f"LSN discontinuity ({last_lsn} -> {lsn})"
                    break
                if not index:
                    base_lsn = lsn
                index.append((lsn, offset))
                last_lsn = lsn
                offset += _HEADER.size + length
        if torn is not None:
            if not truncate_tail:
                raise StorageError(
                    f"mutation-log segment {path} is corrupt before the tail "
                    f"({torn} at offset {offset}): acknowledged history is lost"
                )
            with path.open("r+b") as handle:
                handle.truncate(offset)
                handle.flush()
                os.fsync(handle.fileno())
            self._truncated += 1
        if not index:
            path.unlink()
            sidecar = path.with_suffix(INDEX_SUFFIX)
            if sidecar.exists():
                sidecar.unlink()
            return None
        return _Segment(
            path=path,
            base_lsn=base_lsn,
            last_lsn=last_lsn,
            size=offset,
            index=index,
        )

    # ------------------------------------------------------------------
    # The MutationLog contract
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return sum(len(seg.index) for seg in self._sealed) + len(self._tail)

    def append(self, changeset: ChangeSet) -> int:
        """Persist *changeset* and return its LSN (flushed per policy)."""
        payload = pickle.dumps(changeset, protocol=4)
        with self._lock:
            self._require_open()
            lsn = self._lsn + 1
            if self._active is None:
                self._open_segment(lsn)
            handle = self._handle
            handle.write(_HEADER.pack(lsn, len(payload), zlib.crc32(payload)))
            handle.write(payload)
            handle.flush()
            if self.fsync == "always":
                os.fsync(handle.fileno())
            active = self._active
            active.index.append((lsn, active.size))
            active.size += _HEADER.size + len(payload)
            active.last_lsn = lsn
            self._lsn = lsn
            self._tail.append(LogEntry(lsn, changeset))
            if active.size >= self.segment_max_bytes:
                self._seal_active()
            return lsn

    def entries_since(self, lsn: int) -> Tuple[LogEntry, ...]:
        with self._lock:
            if lsn < self._floor:
                raise StorageError(
                    f"mutation log was compacted through LSN {self._floor}; "
                    f"a reader at LSN {lsn} can no longer catch up"
                )
            entries: List[LogEntry] = []
            for segment in self._sealed:
                if segment.last_lsn <= lsn:
                    continue
                entries.extend(self._read_segment(segment, lsn))
            entries.extend(entry for entry in self._tail if entry.lsn > lsn)
            return tuple(entries)

    def compact(self, through_lsn: int) -> int:
        """Drop sealed segments fully below the checkpoint and *through_lsn*.

        Compaction is segment-granular (whole files, never spans) and
        checkpoint-gated: entries above the last persisted checkpoint are
        the only way to rebuild state on restart, so without a checkpoint
        this is a no-op.  Returns how many entries were dropped; the floor
        advances to the last dropped segment's final LSN.
        """
        with self._lock:
            limit = min(through_lsn, self._checkpoint_lsn, self._lsn)
            dropped = 0
            while self._sealed and self._sealed[0].last_lsn <= limit:
                segment = self._sealed.pop(0)
                dropped += len(segment.index)
                self._floor = segment.last_lsn
                segment.path.unlink(missing_ok=True)
                segment.path.with_suffix(INDEX_SUFFIX).unlink(missing_ok=True)
            return dropped

    # ------------------------------------------------------------------
    # Checkpoints
    # ------------------------------------------------------------------
    @property
    def checkpoint_lsn(self) -> int:
        """The LSN the last persisted state snapshot covers (0 when none)."""
        with self._lock:
            return self._checkpoint_lsn

    def write_checkpoint(self, backend: Any) -> int:
        """Snapshot *backend*'s tables at the current head; returns its LSN.

        The caller must hold writes still (the publishing service does
        this under its write lock): the snapshot claims to contain every
        entry up to ``lsn``, so a write landing mid-dump would be both in
        the snapshot and replayed.  The snapshot is written to a
        temporary file, fsynced and atomically renamed, after which
        :meth:`compact` may drop the segments it covers.
        """
        with self._lock:
            self._require_open()
            lsn = self._lsn
        tables: Dict[str, Dict[str, Any]] = {}
        for name in backend.table_names:
            rows = [tuple(row) for row in backend.rows(name)]
            tables[name] = {
                "rows": rows,
                "arity": len(rows[0]) if rows else None,
            }
        body = pickle.dumps({"lsn": lsn, "tables": tables}, protocol=4)
        blob = _HEADER.pack(lsn, len(body), zlib.crc32(body)) + body
        path = self.directory / CHECKPOINT_NAME
        staging = path.with_suffix(".tmp")
        with staging.open("wb") as handle:
            handle.write(blob)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(staging, path)
        with self._lock:
            self._checkpoint_lsn = max(self._checkpoint_lsn, lsn)
        return lsn

    def load_checkpoint(self) -> Optional[Tuple[int, Dict[str, Dict[str, Any]]]]:
        """The persisted ``(lsn, tables)`` snapshot, or ``None``."""
        path = self.directory / CHECKPOINT_NAME
        if not path.exists():
            return None
        with path.open("rb") as handle:
            payload = handle.read()
        body = payload[_HEADER.size :]
        lsn, length, crc = _HEADER.unpack(payload[: _HEADER.size])
        if len(body) != length or zlib.crc32(body) != crc:
            raise StorageError(
                f"mutation-log checkpoint {path} failed its checksum"
            )
        data = pickle.loads(body)
        return int(data["lsn"]), data["tables"]

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _require_open(self) -> None:
        if self._closed:
            raise StorageError("DurableMutationLog has been closed")

    def _open_segment(self, base_lsn: int) -> None:
        path = self.directory / _segment_name(base_lsn)
        if path.exists():
            raise StorageError(f"mutation-log segment {path} already exists")
        self._handle = path.open("ab")
        self._active = _Segment(
            path=path, base_lsn=base_lsn, last_lsn=base_lsn - 1, size=0
        )
        self._tail = []

    def _seal_active(self) -> None:
        """Close the active segment and persist its index sidecar."""
        active, handle = self._active, self._handle
        self._active, self._handle = None, None
        if handle is not None:
            handle.flush()
            os.fsync(handle.fileno())
            handle.close()
        if active is None or not active.index:
            return
        sidecar = active.path.with_suffix(INDEX_SUFFIX)
        meta = {
            "base_lsn": active.base_lsn,
            "last_lsn": active.last_lsn,
            "size": active.size,
            "index": active.index,
        }
        with sidecar.open("wb") as out:
            pickle.dump(meta, out, protocol=4)
            out.flush()
            os.fsync(out.fileno())
        self._sealed.append(active)
        self._tail = []

    def _read_segment(self, segment: _Segment, after_lsn: int) -> List[LogEntry]:
        """Deserialize a sealed segment's records with ``lsn > after_lsn``."""
        start = 0
        while start < len(segment.index) and segment.index[start][0] <= after_lsn:
            start += 1
        if start >= len(segment.index):
            return []
        entries: List[LogEntry] = []
        with segment.path.open("rb") as handle:
            handle.seek(segment.index[start][1])
            for lsn, _offset in segment.index[start:]:
                header = handle.read(_HEADER.size)
                got_lsn, length, crc = _HEADER.unpack(header)
                payload = handle.read(length)
                if got_lsn != lsn or zlib.crc32(payload) != crc:
                    raise StorageError(
                        f"mutation-log segment {segment.path} failed its "
                        f"checksum at LSN {lsn}"
                    )
                entries.append(LogEntry(lsn, pickle.loads(payload)))
        return entries

    # ------------------------------------------------------------------
    # Introspection and lifecycle
    # ------------------------------------------------------------------
    def stats(self) -> DurableLogStats:
        with self._lock:
            segments = len(self._sealed) + (1 if self._active else 0)
            entries = sum(len(seg.index) for seg in self._sealed) + len(self._tail)
            size = sum(seg.size for seg in self._sealed)
            if self._active is not None:
                size += self._active.size
            return DurableLogStats(
                segments=segments,
                entries=entries,
                size_bytes=size,
                lsn=self._lsn,
                floor=self._floor,
                checkpoint_lsn=self._checkpoint_lsn,
                truncated_records=self._truncated,
                fsync=self.fsync,
            )

    @property
    def segment_count(self) -> int:
        with self._lock:
            return len(self._sealed) + (1 if self._active else 0)

    @property
    def truncated_records(self) -> int:
        """Torn tail records truncated during recovery (lifetime count)."""
        with self._lock:
            return self._truncated

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def close(self) -> None:
        """Seal the active segment and release the file handle; idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._seal_active()


def restore_snapshot(backend: Any, tables: Dict[str, Dict[str, Any]]) -> int:
    """Load a :meth:`DurableMutationLog.load_checkpoint` dump into *backend*.

    Tables the (configuration-rebuilt) backend already declares are
    cleared and reloaded; tables it does not know are created when the
    snapshot recorded their arity.  Returns the number of rows restored.
    """
    restored = 0
    for name, spec in tables.items():
        rows = spec["rows"]
        if not backend.has_table(name):
            if spec.get("arity") is None:
                continue  # empty table nobody declared: nothing to restore
            backend.create_table(name, spec["arity"])
        else:
            backend.clear_table(name)
        if rows:
            backend.insert_many(name, rows)
            restored += len(rows)
    return restored
