"""Change sets and the mutation log: the write path's data model.

A MARS deployment used to be read-only after build: refreshing data meant
rebuilding the whole service.  The write path fixes that with two small
value types:

* a :class:`ChangeSet` — per-relation batches of row inserts and deletes
  (an update is a delete plus an insert).  Every
  :class:`~repro.storage.backends.base.StorageBackend` can ``apply`` one;
  the sharded backend routes each row to the shard its partitioner names
  and broadcasts changes to unpartitioned tables, the replicated backend
  applies to every replica.

* a :class:`MutationLog` — an append-only, monotonically LSN-stamped
  sequence of applied change sets.  Pooled backend clones are *snapshots*
  of the template at clone time; instead of rebuilding the pool after a
  write, each clone remembers the LSN it has applied and the pool replays
  the log tail on checkout/checkin (see
  :class:`~repro.serve.pool.ConnectionPool`).  The log is the same
  mechanism the online :class:`~repro.replica.rebalancer.Rebalancer` uses
  to catch a freshly copied shard layout up with writes that landed during
  the copy.

Deletes follow bag semantics: one requested delete row removes at most one
stored occurrence, so multisets stay consistent across engines.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, NamedTuple, Optional, Sequence, Tuple

from ..errors import StorageError

Row = Tuple[object, ...]


@dataclass(frozen=True)
class TableChange:
    """Insert/delete row batches against one relation."""

    relation: str
    inserts: Tuple[Row, ...] = ()
    deletes: Tuple[Row, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "inserts", tuple(tuple(row) for row in self.inserts)
        )
        object.__setattr__(
            self, "deletes", tuple(tuple(row) for row in self.deletes)
        )

    @property
    def touched(self) -> int:
        """How many rows this change writes (inserts plus deletes)."""
        return len(self.inserts) + len(self.deletes)

    @property
    def row_delta(self) -> int:
        """Net change in the relation's cardinality."""
        return len(self.inserts) - len(self.deletes)

    def is_empty(self) -> bool:
        return not self.inserts and not self.deletes


@dataclass(frozen=True)
class ChangeSet:
    """One atomic batch of table changes (the unit the log records).

    Backends apply the per-relation deletes before the inserts, in the
    order the changes are listed, so a row update is expressed as a delete
    of the old row plus an insert of the new one inside a single change.
    """

    changes: Tuple[TableChange, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "changes", tuple(self.changes))

    @classmethod
    def build(
        cls,
        inserts: Optional[Mapping[str, Iterable[Sequence[object]]]] = None,
        deletes: Optional[Mapping[str, Iterable[Sequence[object]]]] = None,
    ) -> "ChangeSet":
        """Assemble a change set from ``{relation: rows}`` mappings."""
        merged: Dict[str, Dict[str, List[Row]]] = {}
        for relation, rows in (inserts or {}).items():
            merged.setdefault(relation, {"ins": [], "del": []})["ins"].extend(
                tuple(row) for row in rows
            )
        for relation, rows in (deletes or {}).items():
            merged.setdefault(relation, {"ins": [], "del": []})["del"].extend(
                tuple(row) for row in rows
            )
        return cls(
            changes=tuple(
                TableChange(
                    relation=relation,
                    inserts=tuple(parts["ins"]),
                    deletes=tuple(parts["del"]),
                )
                for relation, parts in merged.items()
            )
        )

    def relations(self) -> Tuple[str, ...]:
        seen: Dict[str, None] = {}
        for change in self.changes:
            seen.setdefault(change.relation, None)
        return tuple(seen)

    def touched(self, relation: Optional[str] = None) -> int:
        """Rows written, for one relation or in total."""
        return sum(
            change.touched
            for change in self.changes
            if relation is None or change.relation == relation
        )

    def is_empty(self) -> bool:
        return all(change.is_empty() for change in self.changes)

    def restricted_to(self, relations: Iterable[str]) -> "ChangeSet":
        """The sub-change-set touching only *relations* (may be empty)."""
        wanted = set(relations)
        return ChangeSet(
            changes=tuple(
                change for change in self.changes if change.relation in wanted
            )
        )

    def __str__(self) -> str:
        parts = ", ".join(
            f"{change.relation}(+{len(change.inserts)}/-{len(change.deletes)})"
            for change in self.changes
        )
        return f"ChangeSet[{parts}]"


class LogEntry(NamedTuple):
    """One committed change set and the LSN it was assigned."""

    lsn: int
    changeset: ChangeSet


class MutationLog:
    """An append-only log of change sets with monotonic LSNs.

    Thread-safe.  ``append`` assigns the next LSN; readers call
    ``entries_since(lsn)`` to fetch the tail they have not applied yet.
    ``compact(through_lsn)`` drops entries every reader has consumed —
    asking for a tail older than the compaction floor raises
    :class:`~repro.errors.StorageError` (the reader is too stale to catch
    up incrementally and must be rebuilt).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries: List[LogEntry] = []
        self._lsn = 0
        self._floor = 0

    @property
    def lsn(self) -> int:
        """The LSN of the newest entry (0 when nothing was ever appended)."""
        with self._lock:
            return self._lsn

    @property
    def floor(self) -> int:
        """Entries at or below this LSN have been compacted away."""
        with self._lock:
            return self._floor

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def append(self, changeset: ChangeSet) -> int:
        """Record *changeset* and return the LSN it was assigned."""
        with self._lock:
            self._lsn += 1
            self._entries.append(LogEntry(self._lsn, changeset))
            return self._lsn

    def entries_since(self, lsn: int) -> Tuple[LogEntry, ...]:
        """Every entry with an LSN strictly greater than *lsn*, in order."""
        with self._lock:
            if lsn < self._floor:
                raise StorageError(
                    f"mutation log was compacted through LSN {self._floor}; "
                    f"a reader at LSN {lsn} can no longer catch up"
                )
            # Entries are appended in LSN order; LSNs are dense, so the
            # tail starts at a computable offset.
            start = max(0, lsn - self._floor)
            return tuple(self._entries[start:])

    def compact(self, through_lsn: int) -> int:
        """Drop entries with ``lsn <= through_lsn``; returns how many."""
        with self._lock:
            if through_lsn <= self._floor:
                return 0
            through_lsn = min(through_lsn, self._lsn)
            dropped = through_lsn - self._floor
            self._entries = self._entries[dropped:]
            self._floor = through_lsn
            return dropped

    def close(self) -> None:
        """Release any resources the log holds; a no-op in memory.

        The durable subclass overrides this to seal its active segment
        and close its file handle; callers (the publishing service) close
        whichever log they were given without caring which kind it is.
        """
