"""The replicated storage backend: K copies of a store behind one API.

Logical redundancy (overlapping materialized views) is MARS's theme;
this module adds *physical* redundancy in the spirit of the WebContent
XML Store: every fragment of the proprietary storage exists on K replica
engines, reads fan out to one replica chosen by a pluggable
:class:`~repro.replica.selector.ReplicaSelector` and **fail over** to the
next replica when an engine dies mid-read (raises
:class:`~repro.errors.StorageError`), while writes — bulk loads and
:class:`~repro.replica.changeset.ChangeSet` applications alike — go to
every live replica so the copies stay identical.

A replica that fails a *write* is fenced: it is closed on the spot, so a
copy that may have missed a change can never serve a stale read.  Reads
keep working as long as one replica is alive.

The backend composes with sharding in both directions: ``replicated``
over ``sharded`` children replicates whole sharded stores (each replica
is an independent shard set), and a ``sharded`` backend may name
``replicated`` children to replicate per shard.  Select it like any other
engine — ``create_backend("replicated", replicas=3, child="sqlite")`` —
or set ``MarsConfiguration.backend = "replicated"`` (replica count
defaults to the ``MARS_REPLICAS`` environment variable).
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
    Union,
)

from ..errors import StorageError
from ..obs.events import EventLog, REPLICA_FAILOVER, REPLICA_FENCED
from ..obs.trace import current_span
from ..profile import REPLICA_READ, current_profile
from ..storage.backends.base import Query, Row, StorageBackend, create_backend
from .changeset import ChangeSet
from .selector import ReplicaSelector, create_selector

T = TypeVar("T")

DEFAULT_REPLICA_COUNT = 2

ChildSpec = Union[str, type, StorageBackend]


def default_replica_count() -> int:
    """Replica count used when none is specified: ``MARS_REPLICAS`` or 2."""
    raw = os.environ.get("MARS_REPLICAS", "").strip()
    if not raw:
        return DEFAULT_REPLICA_COUNT
    try:
        count = int(raw)
    except ValueError as error:
        raise StorageError(
            f"MARS_REPLICAS must be an integer, got {raw!r}"
        ) from error
    if count < 1:
        raise StorageError(f"MARS_REPLICAS must be >= 1, got {count}")
    return count


@dataclass(frozen=True)
class ReplicaStats:
    """Read/write distribution and failure counters of one backend."""

    replica_count: int
    live_replicas: int
    #: Reads answered per replica (successful attempts only).
    reads_per_replica: Tuple[int, ...]
    #: Read attempts that raised ``StorageError`` and moved to the next
    #: replica (dead replicas skipped without an attempt count too).
    failovers: int
    #: Write operations applied (each one reached every live replica).
    writes_applied: int
    #: Replicas fenced (closed) because a write failed on them.
    fenced: int
    #: Dead replicas replaced with freshly provisioned copies
    #: (:meth:`ReplicatedBackend.adopt_replica`).
    repaired: int
    selector: str


class ReplicatedBackend(StorageBackend):
    """K replica engines behind one :class:`StorageBackend` interface."""

    backend_name = "replicated"

    def __init__(
        self,
        replicas: Optional[int] = None,
        child: Optional[ChildSpec] = None,
        children: Optional[Sequence[ChildSpec]] = None,
        selector: Union[str, ReplicaSelector, None] = None,
    ):
        if children is not None:
            specs = list(children)
            if not specs:
                raise StorageError("replicated backend needs at least one replica")
            if replicas is not None and replicas != len(specs):
                raise StorageError(
                    f"replicas={replicas} does not match the {len(specs)} "
                    "child specifications"
                )
            if child is not None:
                raise StorageError("pass either child= or children=, not both")
        else:
            count = replicas if replicas is not None else default_replica_count()
            if count < 1:
                raise StorageError(
                    f"replicated backend needs replicas >= 1, got {count}"
                )
            specs = [child if child is not None else "memory"] * count
        self._replicas: List[StorageBackend] = []
        try:
            for spec in specs:
                self._replicas.append(self._create_replica(spec))
        except Exception:
            for replica in self._replicas:
                if not replica.closed:
                    replica.close()
            raise
        self.replica_count = len(self._replicas)
        self.selector = create_selector(selector)
        self._lock = threading.Lock()
        self._loads = [0] * self.replica_count
        self._reads = [0] * self.replica_count
        self._failovers = 0
        self._writes = 0
        self._fenced = 0
        self._repairs = 0
        self._catalog = None
        self._closed = False
        #: Optional structured event log; the publishing service installs
        #: its own via :meth:`set_event_log` (clones inherit it).
        self.events: Optional[EventLog] = None

    def set_event_log(self, events: Optional[EventLog]) -> None:
        """Install the log fencing and failover events are recorded to."""
        self.events = events

    @staticmethod
    def _create_replica(spec: ChildSpec) -> StorageBackend:
        if spec == "replicated" or (
            isinstance(spec, type) and issubclass(spec, ReplicatedBackend)
        ):
            raise StorageError("replicated backends cannot nest replicated children")
        if isinstance(spec, StorageBackend):
            return spec
        # Replicas are read from arbitrary threads (pool checkouts, the
        # scatter/gather workers above a sharded parent), so SQLite
        # replicas must be thread-portable.
        try:
            return create_backend(spec, check_same_thread=False)
        except TypeError:
            return create_backend(spec)

    # ------------------------------------------------------------------
    @property
    def replicas(self) -> Tuple[StorageBackend, ...]:
        """The replica engines (including any fenced/closed ones)."""
        return tuple(self._replicas)

    def _require_open(self) -> None:
        if self._closed:
            raise StorageError(
                "ReplicatedBackend has been closed; create a new backend instead"
            )

    def _live(self) -> List[StorageBackend]:
        live = [replica for replica in self._replicas if not replica.closed]
        if not live:
            raise StorageError("no live replica remains")
        return live

    def _first_live(self) -> StorageBackend:
        self._require_open()
        return self._live()[0]

    # ------------------------------------------------------------------
    # Reads: selector order with failover
    # ------------------------------------------------------------------
    def _read(self, action: Callable[[StorageBackend], T]) -> T:
        self._require_open()
        with self._lock:
            loads = tuple(self._loads)
        order = self.selector.order(self.replica_count, loads)
        profile = current_profile()
        last_error: Optional[StorageError] = None
        for index in order:
            replica = self._replicas[index]
            if replica.closed:
                continue
            with self._lock:
                self._loads[index] += 1
            span = current_span().child(
                "replica.read", replica=index, engine=replica.backend_name
            )
            # One replica-read node per *attempt*: a failed attempt stays
            # in the tree annotated failover=True, so the profile shows
            # exactly which copy served the read and which were tried.
            node = (
                profile.child(
                    REPLICA_READ,
                    f"replica{index}",
                    replica=index,
                    engine=replica.backend_name,
                    selector=self.selector.name,
                )
                if profile
                else None
            )
            try:
                with span:
                    if node is not None:
                        with node:
                            result = action(replica)
                    else:
                        result = action(replica)
            except StorageError as error:
                # The engine failed (killed replica, closed connection):
                # try the next copy.  Query errors (EvaluationError and
                # friends) are deterministic and propagate unchanged.
                last_error = error
                if node is not None:
                    node.annotate(failover=True)
                with self._lock:
                    self._loads[index] -= 1
                    self._failovers += 1
                if self.events is not None:
                    self.events.record(
                        REPLICA_FAILOVER,
                        replica=index,
                        engine=replica.backend_name,
                        error=str(error),
                    )
                continue
            except BaseException:
                with self._lock:
                    self._loads[index] -= 1
                raise
            if node is not None and isinstance(result, (list, tuple)):
                node.actual_rows = len(result)
            with self._lock:
                self._loads[index] -= 1
                self._reads[index] += 1
            return result
        if last_error is not None:
            raise StorageError(
                f"all {self.replica_count} replicas failed the read"
            ) from last_error
        raise StorageError("no live replica remains")

    def execute(self, query: Query, distinct: bool = True) -> List[Row]:
        return self._read(lambda replica: replica.execute(query, distinct=distinct))

    def execute_union(self, union: Query, distinct: bool = True) -> List[Row]:
        return self._read(
            lambda replica: replica.execute_union(union, distinct=distinct)
        )

    def rows(self, name: str) -> Sequence[Row]:
        return self._read(lambda replica: replica.rows(name))

    def cardinalities(self) -> Dict[str, int]:
        return self._read(lambda replica: replica.cardinalities())

    def cardinality(self, name: str) -> int:
        return self._read(lambda replica: replica.cardinality(name))

    def collect_statistics(self):
        """One replica's catalog describes them all (copies are identical)."""
        return self._read(lambda replica: replica.collect_statistics())

    def refresh_statistics(self, access_weights=None):
        """Refresh statistics on every live replica; return one catalog.

        Replicas holding routed engines (a sharded child) re-feed their
        routers' cost models; plain replicas just measure.  Every live
        replica is refreshed so the copies keep routing identically.
        """
        catalog = None
        for replica in self._live():
            refresh = getattr(replica, "refresh_statistics", None)
            if refresh is not None:
                measured = refresh(access_weights=access_weights)
            else:
                measured = replica.collect_statistics()
                for relation, weight in (access_weights or {}).items():
                    measured.set_weight(relation, weight)
            if catalog is None:
                catalog = measured
        self._catalog = catalog
        return catalog

    @property
    def statistics_catalog(self):
        """The catalog of the last :meth:`refresh_statistics` (or ``None``)."""
        return self._catalog

    def explain(self, query: Query) -> str:
        """Describe the read decision, then the serving replica's own plan.

        The header names the replica the selector would actually route
        this read to (the first live entry of the selector's current
        order) rather than a generic "some replica" — the same decision
        :meth:`_read` makes, rendered instead of re-derived by hand.
        """
        self._require_open()
        with self._lock:
            loads = tuple(self._loads)
        order = self.selector.order(self.replica_count, loads)
        serving = next(
            (index for index in order if not self._replicas[index].closed), None
        )
        if serving is None:
            raise StorageError("no live replica remains")
        replica = self._replicas[serving]
        fenced = [
            index
            for index in order
            if self._replicas[index].closed
        ]
        header = (
            f"replicated over {self.replica_count} replicas "
            f"({self.selector.name} reads, failover on StorageError):"
        )
        decision = (
            f"  read served by replica {serving} ({replica.backend_name}); "
            f"failover order {list(order)}"
        )
        if fenced:
            decision += f"; fenced replicas {fenced} skipped"
        body = replica.explain(query)
        return "\n".join(
            [header, decision] + [f"  {line}" for line in body.splitlines()]
        )

    # ------------------------------------------------------------------
    # Writes: every live replica, fencing on failure
    # ------------------------------------------------------------------
    def _write(self, action: Callable[[StorageBackend], T]) -> T:
        self._require_open()
        result: Optional[T] = None
        first = True
        errors: List[Exception] = []
        for replica in self._live():
            try:
                value = action(replica)
            except StorageError as error:
                # The engine failed (killed mid-write): the replica may
                # have missed the write and must never serve reads again —
                # fence it and keep writing to the survivors.
                errors.append(error)
                if not replica.closed:
                    replica.close()
                with self._lock:
                    self._fenced += 1
                self._record_fence(replica, error)
                continue
            except Exception as error:
                # A non-engine error (bad changeset, unstorable value) on
                # the *first* replica, before anything was applied, is a
                # clean failure: no copy diverged, propagate untouched.
                # After any replica applied the write, a failing replica
                # has missed it — engines disagree on what they accept —
                # and an unfenced divergent copy is worse than a smaller
                # replica set: fence it too.
                if first and not errors:
                    raise
                errors.append(error)
                if not replica.closed:
                    replica.close()
                with self._lock:
                    self._fenced += 1
                self._record_fence(replica, error)
                continue
            if first:
                result, first = value, False
        if first:
            raise StorageError(
                "write failed on every live replica"
            ) from (errors[-1] if errors else None)
        with self._lock:
            self._writes += 1
        return result  # type: ignore[return-value]

    def _record_fence(self, replica: StorageBackend, error: Exception) -> None:
        if self.events is not None:
            self.events.record(
                REPLICA_FENCED,
                replica=self._replicas.index(replica),
                engine=replica.backend_name,
                live_replicas=sum(
                    1 for each in self._replicas if not each.closed
                ),
                error=str(error),
            )

    def adopt_replica(self, index: int, replacement: StorageBackend) -> None:
        """Swap the dead replica at *index* for a provisioned *replacement*.

        The repairer (:class:`~repro.replica.repair.ReplicaRepairer`)
        calls this as its cutover step, after *replacement* has been
        brought differentially identical to the live copies.  The slot
        must currently hold a closed (fenced/killed) replica — adopting
        over a live copy would discard acknowledged state — and the
        replacement must itself be open.
        """
        self._require_open()
        if replacement.closed:
            raise StorageError("cannot adopt a closed replacement replica")
        with self._lock:
            if not 0 <= index < len(self._replicas):
                raise StorageError(
                    f"replica index {index} out of range "
                    f"(0..{len(self._replicas) - 1})"
                )
            old = self._replicas[index]
            if not old.closed:
                raise StorageError(
                    f"replica {index} is still live; only dead replicas "
                    "can be replaced"
                )
            self._replicas[index] = replacement
            self._repairs += 1

    def create_table(
        self, name: str, arity: int, attributes: Optional[Sequence[str]] = None
    ) -> None:
        self._write(lambda replica: replica.create_table(name, arity, attributes))

    def clear_table(self, name: str) -> None:
        self._write(lambda replica: replica.clear_table(name))

    def insert_many(self, name: str, rows: Iterable[Sequence[object]]) -> None:
        prepared = [tuple(row) for row in rows]
        self._write(lambda replica: replica.insert_many(name, prepared))

    def delete_many(self, name: str, rows: Iterable[Sequence[object]]) -> int:
        prepared = [tuple(row) for row in rows]
        return self._write(lambda replica: replica.delete_many(name, prepared))

    def apply(self, changeset: ChangeSet) -> None:
        self._write(lambda replica: replica.apply(changeset))

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def table_names(self) -> Tuple[str, ...]:
        return self._first_live().table_names

    def has_table(self, name: str) -> bool:
        return self._first_live().has_table(name)

    def stats(self) -> ReplicaStats:
        with self._lock:
            reads = tuple(self._reads)
            failovers = self._failovers
            writes = self._writes
            fenced = self._fenced
            repaired = self._repairs
        live = sum(1 for replica in self._replicas if not replica.closed)
        return ReplicaStats(
            replica_count=self.replica_count,
            live_replicas=live,
            reads_per_replica=reads,
            failovers=failovers,
            writes_applied=writes,
            fenced=fenced,
            repaired=repaired,
            selector=self.selector.name,
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def clone_is_snapshot(self) -> bool:
        return all(
            replica.clone_is_snapshot
            for replica in self._replicas
            if not replica.closed
        )

    @property
    def has_mixed_snapshot_children(self) -> bool:
        """See ``ShardedBackend.has_mixed_snapshot_children``."""
        live = [replica for replica in self._replicas if not replica.closed]
        kinds = {replica.clone_is_snapshot for replica in live}
        if len(kinds) > 1:
            return True
        return any(
            getattr(replica, "has_mixed_snapshot_children", False)
            for replica in live
        )

    def close(self) -> None:
        """Close every live replica; double close raises."""
        if self._closed:
            raise StorageError("ReplicatedBackend.close() called twice")
        self._closed = True
        for replica in self._replicas:
            if not replica.closed:
                replica.close()

    def clone(self) -> "ReplicatedBackend":
        """A replicated backend over clones of every *live* replica.

        Dead (fenced/killed) replicas are skipped, so pools built after a
        failure clone only the healthy copies; the clone's replica count
        shrinks accordingly.
        """
        self._require_open()
        clones: List[StorageBackend] = []
        try:
            for replica in self._replicas:
                if replica.closed:
                    continue
                clones.append(replica.clone())
        except Exception:
            for cloned in clones:
                if not cloned.closed:
                    cloned.close()
            raise
        if not clones:
            raise StorageError("cannot clone: no live replica remains")
        clone = ReplicatedBackend.__new__(ReplicatedBackend)
        clone._replicas = clones
        clone.replica_count = len(clones)
        clone.selector = create_selector(self.selector.name)
        clone._lock = threading.Lock()
        clone._loads = [0] * clone.replica_count
        clone._reads = [0] * clone.replica_count
        clone._failovers = 0
        clone._writes = 0
        clone._fenced = 0
        clone._repairs = 0
        clone._catalog = self._catalog
        clone._closed = False
        clone.events = self.events
        return clone
