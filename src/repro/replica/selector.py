"""Replica selection policies: which copy answers a read.

A :class:`ReplicaSelector` turns the replica count and a snapshot of the
per-replica in-flight load into a *preference order*: the replicated
backend tries the replicas in that order and fails over to the next one
when a replica raises :class:`~repro.errors.StorageError` (killed engine,
closed connection).  Two policies ship:

* :class:`RoundRobinSelector` — rotate the starting replica per read, so
  repeated reads spread evenly regardless of timing;
* :class:`LeastLoadedSelector` — prefer the replica with the fewest reads
  currently in flight (the live analogue of pool ``in_use`` stats), with
  a rotating tie-break so idle replicas still alternate.

Selectors are stateless apart from their rotation counter and are safe to
share between threads.
"""

from __future__ import annotations

import abc
import itertools
import threading
from typing import List, Sequence, Union

from ..errors import StorageError


class ReplicaSelector(abc.ABC):
    """Orders the replicas a read should be attempted on."""

    #: Registry name of the policy ("round_robin", "least_loaded").
    name: str = "abstract"

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._rotation = itertools.count()

    def _next_offset(self, count: int) -> int:
        with self._lock:
            return next(self._rotation) % count

    @abc.abstractmethod
    def order(self, count: int, loads: Sequence[int]) -> List[int]:
        """Replica indices in preference order (all of ``range(count)``)."""


class RoundRobinSelector(ReplicaSelector):
    """Start each read at the next replica in rotation."""

    name = "round_robin"

    def order(self, count: int, loads: Sequence[int]) -> List[int]:
        offset = self._next_offset(count)
        return [(offset + index) % count for index in range(count)]


class LeastLoadedSelector(ReplicaSelector):
    """Prefer the replica with the fewest in-flight reads right now."""

    name = "least_loaded"

    def order(self, count: int, loads: Sequence[int]) -> List[int]:
        offset = self._next_offset(count)
        return sorted(
            range(count),
            key=lambda index: (loads[index], (index - offset) % count),
        )


_SELECTORS = {
    RoundRobinSelector.name: RoundRobinSelector,
    LeastLoadedSelector.name: LeastLoadedSelector,
}


def create_selector(spec: Union[str, ReplicaSelector, None]) -> ReplicaSelector:
    """Resolve a selector name (or pass an instance through)."""
    if spec is None:
        return RoundRobinSelector()
    if isinstance(spec, ReplicaSelector):
        return spec
    try:
        return _SELECTORS[spec]()
    except KeyError as error:
        raise StorageError(
            f"unknown replica selector {spec!r}; "
            f"available: {', '.join(sorted(_SELECTORS))}"
        ) from error
