"""Abstract syntax for the behaved XQuery fragment MARS accepts.

Paper section 2.1: MARS splits an XQuery into its navigation part (captured
by XBind queries) and its tagging template.  The AST here models the FLWR
fragment the paper's examples use: ``for``/``let`` clauses binding variables
to path expressions, a ``where`` clause of (in)equalities, and a ``return``
clause building new elements whose content mixes variables and nested,
correlated FLWR subqueries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

from ..errors import ParseError
from ..logical.terms import Constant, Variable
from ..xmlmodel.xpath import XPath, parse_xpath


@dataclass(frozen=True)
class PathExpression:
    """A path rooted either at the document (absolute) or at a bound variable."""

    path: XPath
    source: Optional[str] = None  # variable name, None for absolute paths
    document: Optional[str] = None
    distinct: bool = False

    def __init__(
        self,
        path: Union[XPath, str],
        source: Optional[str] = None,
        document: Optional[str] = None,
        distinct: bool = False,
    ):
        if isinstance(path, str):
            path = parse_xpath(path)
        object.__setattr__(self, "path", path)
        object.__setattr__(self, "source", source)
        object.__setattr__(self, "document", document)
        object.__setattr__(self, "distinct", distinct)

    def __str__(self) -> str:
        prefix = f"${self.source}" if self.source else ""
        text = f"{prefix}{self.path}"
        if self.distinct:
            text = f"distinct({text})"
        return text


@dataclass(frozen=True)
class ForClause:
    """``for $variable in expression``."""

    variable: str
    expression: PathExpression


@dataclass(frozen=True)
class LetClause:
    """``let $variable := expression``."""

    variable: str
    expression: PathExpression


@dataclass(frozen=True)
class Comparison:
    """A ``where`` conjunct: equality or inequality between values.

    Operands are variable names (strings) or constants.
    """

    left: Union[str, Constant]
    right: Union[str, Constant]
    negated: bool = False

    def __str__(self) -> str:
        operator = "!=" if self.negated else "="
        left = f"${self.left}" if isinstance(self.left, str) else str(self.left)
        right = f"${self.right}" if isinstance(self.right, str) else str(self.right)
        return f"{left} {operator} {right}"


@dataclass(frozen=True)
class VariableRef:
    """A reference to a bound variable inside a return template."""

    name: str

    def __str__(self) -> str:
        return f"${self.name}"


@dataclass(frozen=True)
class TextLiteral:
    """Literal character data inside a constructed element."""

    value: str


@dataclass(frozen=True)
class ElementConstructor:
    """``<tag attr=...>content</tag>`` with mixed content."""

    tag: str
    children: Tuple[object, ...] = ()
    attributes: Tuple[Tuple[str, Union[str, VariableRef]], ...] = ()

    def __init__(
        self,
        tag: str,
        children: Sequence[object] = (),
        attributes: Sequence[Tuple[str, Union[str, VariableRef]]] = (),
    ):
        object.__setattr__(self, "tag", tag)
        object.__setattr__(self, "children", tuple(children))
        object.__setattr__(self, "attributes", tuple(attributes))


@dataclass(frozen=True)
class FLWRExpr:
    """A for/let/where/return expression."""

    for_clauses: Tuple[ForClause, ...]
    let_clauses: Tuple[LetClause, ...]
    where: Tuple[Comparison, ...]
    return_expr: object  # ElementConstructor | VariableRef | FLWRExpr | TextLiteral

    def __init__(
        self,
        for_clauses: Sequence[ForClause] = (),
        let_clauses: Sequence[LetClause] = (),
        where: Sequence[Comparison] = (),
        return_expr: object = None,
    ):
        if return_expr is None:
            raise ParseError("a FLWR expression needs a return clause")
        object.__setattr__(self, "for_clauses", tuple(for_clauses))
        object.__setattr__(self, "let_clauses", tuple(let_clauses))
        object.__setattr__(self, "where", tuple(where))
        object.__setattr__(self, "return_expr", return_expr)

    def bound_variables(self) -> Tuple[str, ...]:
        names = [clause.variable for clause in self.for_clauses]
        names.extend(clause.variable for clause in self.let_clauses)
        return tuple(names)


XQueryExpr = Union[FLWRExpr, ElementConstructor, VariableRef, TextLiteral]


def xquery(
    for_clauses: Sequence[Tuple[str, PathExpression]] = (),
    where: Sequence[Comparison] = (),
    return_expr: object = None,
    let_clauses: Sequence[Tuple[str, PathExpression]] = (),
) -> FLWRExpr:
    """Convenience constructor taking ``(variable, expression)`` pairs."""
    return FLWRExpr(
        for_clauses=[ForClause(v, e) for v, e in for_clauses],
        let_clauses=[LetClause(v, e) for v, e in let_clauses],
        where=where,
        return_expr=return_expr,
    )
