"""The tagging phase: building output XML from binding tuples.

Paper section 2.1: MARS adopts the *sorted outer union* approach of
XPeranto [30] for the second, schema-independent phase of XQuery
evaluation.  Each decorrelated XBind block contributes a table of binding
tuples; tuples of an inner block carry the outer block's variables so they
can be grouped under the right outer element.  The tagger walks the tagging
template, groups the (outer-unioned) tuples by their correlation prefix and
emits the constructed elements in a deterministic (sorted) order.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import EvaluationError
from ..logical.terms import Variable
from ..xbind.query import XBindQuery
from ..xmlmodel.model import XMLDocument, XMLNode
from .decorrelate import DecorrelatedQuery, TemplateNode

Row = Tuple[object, ...]


class Tagger:
    """Applies a tagging template to the binding tables of the XBind blocks."""

    def __init__(self, decorrelated: DecorrelatedQuery):
        self.decorrelated = decorrelated

    # ------------------------------------------------------------------
    def tag(
        self,
        bindings: Mapping[str, Sequence[Row]],
        document_name: str = "result.xml",
    ) -> XMLDocument:
        """Build the output document from per-block binding tables.

        *bindings* maps each block name to the rows returned by evaluating
        (or reformulating and executing) that block; rows follow the block's
        head variable order.
        """
        template = self.decorrelated.template
        nodes = self._render(template, bindings, context=())
        if len(nodes) == 1 and isinstance(nodes[0], XMLNode):
            return XMLDocument(document_name, nodes[0])
        root = XMLNode("result")
        for node in nodes:
            if isinstance(node, XMLNode):
                root.append(node)
            else:
                root.add("value", str(node))
        return XMLDocument(document_name, root)

    # ------------------------------------------------------------------
    def _block_rows(
        self,
        block_name: str,
        bindings: Mapping[str, Sequence[Row]],
        context: Tuple[object, ...],
    ) -> List[Tuple[Row, Dict[str, object]]]:
        block = self.decorrelated.block(block_name)
        rows = bindings.get(block_name, ())
        matched: List[Tuple[Row, Dict[str, object]]] = []
        seen = set()
        for row in sorted(rows, key=lambda r: tuple(map(str, r))):
            if len(row) != len(block.head):
                raise EvaluationError(
                    f"block {block_name}: row arity {len(row)} does not match head"
                )
            if context and tuple(row[: len(context)]) != context:
                continue
            if row in seen:
                continue
            seen.add(row)
            values = {
                variable.name: value
                for variable, value in zip(block.head, row)
                if isinstance(variable, Variable)
            }
            matched.append((row, values))
        return matched

    def _render(
        self,
        node: TemplateNode,
        bindings: Mapping[str, Sequence[Row]],
        context: Tuple[object, ...],
        values: Optional[Dict[str, object]] = None,
    ) -> List[object]:
        values = values or {}
        if node.kind == "text":
            return [node.text]
        if node.kind == "variable":
            if node.variable not in values:
                raise EvaluationError(f"unbound template variable ${node.variable}")
            return [values[node.variable]]
        if node.kind == "block":
            results: List[object] = []
            for row, row_values in self._block_rows(node.block, bindings, context):
                merged = dict(values)
                merged.update(row_values)
                for child in node.children:
                    results.extend(self._render(child, bindings, tuple(row), merged))
            return results
        if node.kind == "element":
            element = XMLNode(node.tag)
            for name, value in node.attributes:
                if hasattr(value, "name"):
                    attr_value = values.get(value.name)
                else:
                    attr_value = value
                element.attributes[name] = str(attr_value)
            for child in node.children:
                for rendered in self._render(child, bindings, context, values):
                    if isinstance(rendered, XMLNode):
                        element.append(rendered)
                    else:
                        existing = element.text or ""
                        element.text = existing + str(rendered)
            return [element]
        raise EvaluationError(f"unknown template node kind {node.kind!r}")


def tag_results(
    decorrelated: DecorrelatedQuery,
    bindings: Mapping[str, Sequence[Row]],
    document_name: str = "result.xml",
) -> XMLDocument:
    """Convenience wrapper around :class:`Tagger`."""
    return Tagger(decorrelated).tag(bindings, document_name)


def evaluate_blocks(decorrelated: DecorrelatedQuery, storage) -> Dict[str, List[Row]]:
    """Naively evaluate every XBind block of a decorrelated query.

    Blocks are evaluated outermost first; each block's result is registered
    as a relation in the storage's database so inner (correlated) blocks can
    join against it, which is exactly how the decorrelated plan is meant to
    be executed.  Element-valued bindings are externalized to node
    identities, so only value-based correlation (the common case, as in the
    paper's Example 2.1) round-trips through this helper.
    """
    from ..xbind.evaluation import evaluate_xbind

    bindings: Dict[str, List[Row]] = {}
    for block in decorrelated.blocks:
        rows = evaluate_xbind(block, storage)
        bindings[block.name] = rows
        database = storage.database
        if not database.has_table(block.name):
            database.create_table(block.name, len(block.head))
        else:
            database.clear_table(block.name)
        database.insert_many(block.name, rows)
    return bindings
