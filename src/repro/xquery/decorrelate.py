"""Decorrelation: XQuery -> XBind queries + tagging template.

Paper section 2.1 (Example 2.1): instead of evaluating nested, correlated
return subqueries with nested loops, MARS breaks the query into decorrelated
XBind queries -- one per FLWR block -- where an inner block's query repeats
the outer block's query as its first atom and returns the outer variables it
correlates on.  Only the XBind queries depend on the schema correspondence
and get reformulated; the tagging template is applied afterwards (see
:mod:`repro.xquery.tagger`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import CompilationError
from ..logical.atoms import EqualityAtom, InequalityAtom, RelationalAtom
from ..logical.terms import Constant, Variable
from ..xbind.atoms import PathAtom
from ..xbind.query import XBindQuery
from .ast import (
    Comparison,
    ElementConstructor,
    FLWRExpr,
    PathExpression,
    TextLiteral,
    VariableRef,
)


@dataclass
class TemplateNode:
    """One node of the tagging template tree.

    ``kind`` is ``"element"``, ``"text"`` or ``"variable"``.  Element nodes
    carry the name of the XBind block whose bindings drive their repetition;
    nested blocks correlate on the variables listed in ``correlation``.
    """

    kind: str
    tag: Optional[str] = None
    variable: Optional[str] = None
    text: Optional[str] = None
    block: Optional[str] = None
    attributes: Tuple[Tuple[str, object], ...] = ()
    children: List["TemplateNode"] = field(default_factory=list)


@dataclass
class DecorrelatedQuery:
    """The result of decorrelating one XQuery."""

    blocks: List[XBindQuery]
    template: TemplateNode

    @property
    def block_names(self) -> List[str]:
        return [block.name for block in self.blocks]

    def block(self, name: str) -> XBindQuery:
        for block in self.blocks:
            if block.name == name:
                return block
        raise CompilationError(f"unknown XBind block {name!r}")


class Decorrelator:
    """Turns FLWR expressions into decorrelated XBind queries plus a template."""

    def __init__(self, name: str = "Xb", default_document: Optional[str] = None):
        self.name = name
        self.default_document = default_document
        self._counter = 0
        self._blocks: List[XBindQuery] = []

    # ------------------------------------------------------------------
    def decorrelate(self, expression: object) -> DecorrelatedQuery:
        """Decorrelate *expression* (an FLWR or an element constructor)."""
        self._counter = 0
        self._blocks = []
        template = self._process(expression, outer_block=None, outer_vars=())
        return DecorrelatedQuery(blocks=list(self._blocks), template=template)

    # ------------------------------------------------------------------
    def _fresh_block_name(self) -> str:
        name = f"{self.name}{self._counter}"
        self._counter += 1
        return name

    def _clause_atoms(self, flwr: FLWRExpr) -> List[object]:
        atoms: List[object] = []
        for clause in list(flwr.for_clauses) + list(flwr.let_clauses):
            expression = clause.expression
            target = Variable(clause.variable)
            if expression.source is None:
                atoms.append(
                    PathAtom(
                        expression.path,
                        target,
                        document=expression.document or self.default_document,
                    )
                )
            else:
                atoms.append(
                    PathAtom(
                        expression.path,
                        target,
                        source=Variable(expression.source),
                        document=expression.document,
                    )
                )
        for comparison in flwr.where:
            left = (
                Variable(comparison.left)
                if isinstance(comparison.left, str)
                else comparison.left
            )
            right = (
                Variable(comparison.right)
                if isinstance(comparison.right, str)
                else comparison.right
            )
            if comparison.negated:
                atoms.append(InequalityAtom(left, right))
            else:
                atoms.append(EqualityAtom(left, right))
        return atoms

    def _process(
        self,
        expression: object,
        outer_block: Optional[XBindQuery],
        outer_vars: Tuple[Variable, ...],
    ) -> TemplateNode:
        if isinstance(expression, ElementConstructor):
            node = TemplateNode(
                kind="element",
                tag=expression.tag,
                attributes=expression.attributes,
                block=outer_block.name if outer_block else None,
            )
            for child in expression.children:
                node.children.append(self._process(child, outer_block, outer_vars))
            return node
        if isinstance(expression, VariableRef):
            return TemplateNode(
                kind="variable",
                variable=expression.name,
                block=outer_block.name if outer_block else None,
            )
        if isinstance(expression, TextLiteral):
            return TemplateNode(kind="text", text=expression.value)
        if isinstance(expression, FLWRExpr):
            return self._process_flwr(expression, outer_block, outer_vars)
        raise CompilationError(f"unsupported XQuery fragment: {expression!r}")

    def _process_flwr(
        self,
        flwr: FLWRExpr,
        outer_block: Optional[XBindQuery],
        outer_vars: Tuple[Variable, ...],
    ) -> TemplateNode:
        block_name = self._fresh_block_name()
        bound = tuple(Variable(v) for v in flwr.bound_variables())
        head: Tuple[Variable, ...] = outer_vars + bound
        atoms: List[object] = []
        if outer_block is not None:
            # Decorrelation: repeat the outer block as the first atom so that
            # the correlation between outer and inner bindings is preserved.
            atoms.append(RelationalAtom(outer_block.name, outer_block.head))
        atoms.extend(self._clause_atoms(flwr))
        block = XBindQuery(block_name, head, atoms)
        self._blocks.append(block)
        node = self._process(flwr.return_expr, block, head)
        wrapper = TemplateNode(kind="block", block=block_name)
        wrapper.children.append(node)
        return wrapper


def decorrelate(
    expression: object, name: str = "Xb", default_document: Optional[str] = None
) -> DecorrelatedQuery:
    """Convenience wrapper around :class:`Decorrelator`."""
    return Decorrelator(name, default_document).decorrelate(expression)
