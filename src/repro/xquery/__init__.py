"""XQuery front-end: FLWR AST, decorrelation into XBind queries, tagging."""

from .ast import (
    Comparison,
    ElementConstructor,
    FLWRExpr,
    ForClause,
    LetClause,
    PathExpression,
    TextLiteral,
    VariableRef,
    xquery,
)
from .decorrelate import DecorrelatedQuery, Decorrelator, TemplateNode, decorrelate
from .tagger import Tagger, evaluate_blocks, tag_results

__all__ = [
    "Comparison",
    "DecorrelatedQuery",
    "Decorrelator",
    "ElementConstructor",
    "FLWRExpr",
    "ForClause",
    "LetClause",
    "PathExpression",
    "Tagger",
    "TemplateNode",
    "TextLiteral",
    "VariableRef",
    "decorrelate",
    "evaluate_blocks",
    "tag_results",
    "xquery",
]
