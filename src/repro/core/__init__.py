"""MARS system facade: configuration, reformulation and execution."""

from .configuration import MarsConfiguration
from .executor import ExecutionComparison, MarsExecutor
from .reformulation import MarsReformulation
from .system import MarsSystem

__all__ = [
    "ExecutionComparison",
    "MarsConfiguration",
    "MarsExecutor",
    "MarsReformulation",
    "MarsSystem",
]
