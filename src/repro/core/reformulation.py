"""Result objects returned by :class:`~repro.core.system.MarsSystem`."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..engine.cb import CBResult
from ..logical.queries import ConjunctiveQuery
from ..xbind.query import XBindQuery


@dataclass
class MarsReformulation:
    """The outcome of reformulating one XBind query.

    ``best`` is the cheapest minimal reformulation according to the plug-in
    cost estimator; ``initial`` is the (generally redundant) reformulation
    obtained without backchase minimization; ``minimal`` lists every minimal
    reformulation found, which the paper's completeness theorem guarantees to
    be all of them for the supported fragment.

    When the system ranks with a statistics-fed
    :class:`~repro.cost.model.CostModel` (the default), ``cost_estimate``
    carries the structured estimate of the chosen plan and
    ``candidate_costs`` the ``(name, cost)`` of every ranked candidate,
    cheapest first — both travel with the plan through the plan cache.
    """

    query: XBindQuery
    compiled_query: ConjunctiveQuery
    universal_plan: ConjunctiveQuery
    initial: Optional[ConjunctiveQuery]
    minimal: List[ConjunctiveQuery]
    best: Optional[ConjunctiveQuery]
    best_cost: float
    sql: Optional[str]
    time_to_universal_plan: float
    time_to_initial: float
    time_to_best: float
    chase_steps: int
    subqueries_inspected: int
    cost_estimate: Optional[object] = None
    candidate_costs: Tuple[Tuple[str, float], ...] = ()

    @property
    def found(self) -> bool:
        """Did any reformulation against the proprietary schema exist?"""
        return self.best is not None

    @property
    def minimization_time(self) -> float:
        """Extra time spent minimizing past the initial reformulation."""
        return max(0.0, self.time_to_best - self.time_to_initial)

    @property
    def reformulation_count(self) -> int:
        return len(self.minimal)

    @classmethod
    def from_cb_result(
        cls,
        query: XBindQuery,
        compiled_query: ConjunctiveQuery,
        result: CBResult,
        sql: Optional[str],
    ) -> "MarsReformulation":
        return cls(
            query=query,
            compiled_query=compiled_query,
            universal_plan=result.universal_plan,
            initial=result.initial_reformulation,
            minimal=list(result.minimal_reformulations),
            best=result.best,
            best_cost=result.best_cost,
            sql=sql,
            time_to_universal_plan=result.time_to_universal_plan,
            time_to_initial=result.time_to_initial,
            time_to_best=result.time_to_best,
            chase_steps=getattr(result.chase_statistics, "steps_applied", 0),
            subqueries_inspected=result.subqueries_inspected,
        )
