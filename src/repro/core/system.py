"""The MARS system facade: reformulating client queries end to end.

:class:`MarsSystem` wires a :class:`~repro.core.configuration.MarsConfiguration`
into the C&B engine (paper Figure 3): it compiles client XBind queries over
the public schema into conjunctive queries over GReX, chases them with the
compiled schema correspondence, XICs, TIX and relational constraints, and
backchases to find the minimal reformulations over the proprietary schema.
The finished candidates are ranked by the statistics-fed
:class:`~repro.cost.model.CostModel` (declared statistics by default;
:meth:`MarsSystem.attach_statistics` swaps in a catalog measured from a
live backend), unless the caller injects its own estimator.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Sequence

from ..cost.model import CostModel
from ..cost.statistics import StatisticsCatalog
from ..engine.cb import CBConfig, CBEngine
from ..engine.cost import CostEstimator, SimpleCostEstimator
from ..errors import ReformulationError
from ..logical.dependencies import DED
from ..logical.queries import ConjunctiveQuery
from ..plan import (
    CanonicalFormError,
    PlanStore,
    canonical_reformulation,
    configuration_fingerprint,
    plan_identity,
    reformulation_from_canonical,
)
from ..storage.sql import render_sql
from ..xbind.query import XBindQuery
from .configuration import MarsConfiguration
from .reformulation import MarsReformulation


class MarsSystem:
    """Reformulates queries over the public schema into proprietary queries."""

    def __init__(
        self,
        configuration: MarsConfiguration,
        estimator: Optional[CostEstimator] = None,
        cb_config: Optional[CBConfig] = None,
        plan_cache: Optional[object] = None,
        plan_store: Optional[PlanStore] = None,
    ):
        self.configuration = configuration
        self.cb_config = cb_config or CBConfig()
        # An optional LRU cache of finished reformulations (any object with
        # thread-safe get/put, normally a repro.serve.cache.PlanCache),
        # keyed on the client query's structural fingerprint plus the
        # configuration version.  With a cache attached, a repeated query
        # skips compilation, chase and backchase entirely.  None (the
        # default) preserves uncached behaviour.
        self.plan_cache = plan_cache
        # An optional disk-backed repro.plan.PlanStore consulted between
        # the in-process cache and the C&B engine.  A store hit decodes
        # the canonical artifact, re-ranks it under the current cost
        # model and re-renders SQL — no chase, no backchase; a fresh
        # compile is written back as an artifact.  Damage degrades to a
        # recompile, never to a wrong plan.
        self.plan_store = plan_store
        # Entries into the C&B engine (chase + backchase runs).  Cache and
        # store hits do not count: the restart-warm acceptance check — and
        # anyone measuring what the store actually saves — keys on this.
        self.engine_invocations = 0
        # Two estimators play different roles.  The *engine* estimator must
        # be cheap AND monotone: the backchase estimates the cost of every
        # candidate subquery and prunes supersets of expensive ones, which
        # is only sound when adding atoms never lowers the estimate.  The
        # *cost model* is the statistics-fed, join-order-aware model of
        # repro.cost: not monotone, so it never steers the pruning — it
        # re-ranks the finished minimal reformulations (and prices routing
        # decisions elsewhere).  An injected estimator replaces both: it
        # survives recompilation and suppresses the cost-model re-ranking,
        # so a caller's estimator fully owns plan choice.
        self._estimator_injected = estimator is not None
        self._statistics_attached = False
        if self._estimator_injected:
            self.catalog: Optional[StatisticsCatalog] = None
            self.cost_model: Optional[CostModel] = None
            self.estimator = estimator
        else:
            self._rebuild_from_catalog(
                StatisticsCatalog.from_configuration(configuration)
            )
        # Compiled artifacts are derived once per configuration version and
        # reused across queries; _recompile() refreshes them (and flushes
        # stale cached plans) when the configuration is edited afterwards.
        self._compile_artifacts()

    def _rebuild_from_catalog(self, catalog: StatisticsCatalog) -> None:
        """Derive the ranking model and the engine estimator from *catalog*.

        The single place both estimators are built, so every path
        (construction, recompilation, attach) plans with a consistent
        pair.  Never called on a system with an injected estimator.
        """
        self.catalog = catalog
        self.cost_model = CostModel(catalog)
        self.estimator = SimpleCostEstimator(catalog.to_table_statistics())

    def _compile_artifacts(self) -> None:
        """Derive (or re-derive) every compiled artifact of the configuration."""
        configuration = self.configuration
        self._compiler = configuration.compiler()
        self._dependencies: List[DED] = configuration.dependencies()
        self._target_relations = configuration.target_relations()
        self._specs = configuration.closure_specs()
        self._engine = CBEngine(
            config=self.cb_config, estimator=self.estimator, specs=self._specs
        )
        # Engines for per-call `minimize` overrides, built lazily and cached:
        # rebuilding a CBEngine per reformulate() call is wasteful.
        self._override_engines: Dict[bool, CBEngine] = {}
        self._compiled_version = configuration.version
        # The content fingerprint of what was just compiled: plan-artifact
        # identities embed it, so artifacts from an older correspondence
        # are unreachable by construction.
        self._configuration_digest = configuration_fingerprint(
            configuration.version,
            self._dependencies,
            self._target_relations,
            self.cb_config,
        )

    def _recompile(self) -> None:
        """React to a configuration edit: refresh artifacts, flush stale plans.

        Views and constraints shape every reformulation, so cached plans
        computed under an older configuration version must not survive the
        edit.  Keys embed the version (a stale entry can never be *hit*);
        this additionally evicts the dead entries so they stop occupying
        LRU slots.
        """
        if not self._estimator_injected and not self._statistics_attached:
            # Re-derive declared statistics; an attached (collected) catalog
            # describes live instance data that a schema edit did not change,
            # so it is kept until the owner re-attaches a fresh one.
            self._rebuild_from_catalog(
                StatisticsCatalog.from_configuration(self.configuration)
            )
        self._compile_artifacts()
        current = self._compiled_version
        evict = getattr(self.plan_cache, "evict_where", None)
        if evict is not None:
            evict(lambda key: key[0] != current)
        if self.plan_store is not None:
            # On-disk artifacts of the old correspondence are already
            # unreachable (identities embed the configuration digest);
            # pruning reclaims the directory.
            self.plan_store.prune_stale(self._configuration_digest)

    def attach_statistics(self, catalog: StatisticsCatalog) -> None:
        """Plan against *catalog* (normally collected from a live backend).

        Replaces the declared statistics the system was constructed with:
        the engine estimator and the ranking cost model are rebuilt from
        the catalog, and every cached plan is flushed — a plan chosen
        under the old statistics may no longer be the cheapest.  A
        :class:`~repro.serve.PublishingService` calls this at startup with
        the catalog measured from its freshly built backend.  No-op effect
        on systems constructed with an injected estimator would be
        surprising, so that combination raises instead.
        """
        if self._estimator_injected:
            raise ReformulationError(
                "cannot attach statistics: this MarsSystem uses an injected "
                "cost estimator that owns plan ranking"
            )
        self._rebuild_from_catalog(catalog)
        self._statistics_attached = True
        self._compile_artifacts()
        evict = getattr(self.plan_cache, "evict_where", None)
        if evict is not None:
            evict(lambda key: True)

    # ------------------------------------------------------------------
    @property
    def configuration_digest(self) -> str:
        """The content fingerprint of the compiled configuration.

        Plan-artifact identities embed it; the golden-plan tooling reads
        it to label which correspondence a golden was compiled under.
        """
        return self._configuration_digest

    @property
    def dependencies(self) -> List[DED]:
        """The compiled DEDs of the configuration (TIX, XICs, views, keys)."""
        return list(self._dependencies)

    @property
    def target_relations(self):
        return set(self._target_relations)

    def compile_query(self, query: XBindQuery) -> ConjunctiveQuery:
        """Compile a client XBind query into a conjunctive query over GReX."""
        return self._compiler.compile_xbind(query)

    # ------------------------------------------------------------------
    def _rank_and_render(self, best, minimal, engine_best_cost):
        """Price the candidate field and render SQL for the winner.

        The one place plan selection happens, shared by fresh compiles
        and store loads: with the statistics-fed cost model, every
        minimal reformulation is ranked and the cheapest wins; with an
        injected estimator the engine's (or, for a loaded plan, the
        estimator's own) cost stands.  Returns ``(best, best_cost,
        cost_estimate, candidate_costs, sql)``.
        """
        best_cost = engine_best_cost
        cost_estimate = None
        candidate_costs: tuple = ()
        if best is not None:
            if self.cost_model is not None:
                # Final plan selection: rank every minimal reformulation
                # with the statistics-fed cost model.  The engine's
                # monotone estimator already guided the backchase
                # pruning; this pass is where join selectivities and
                # access weights pick the winner among the survivors
                # (stable on ties, so the incoming order breaks them
                # deterministically).
                pool = list(minimal) or [best]
                ranked = self.cost_model.rank(pool)
                cost_estimate, best = ranked[0]
                best_cost = cost_estimate.total
                candidate_costs = tuple(
                    (candidate.name, estimate.total)
                    for estimate, candidate in ranked
                )
            elif engine_best_cost is None:
                # Injected estimator pricing a loaded plan: the artifact
                # carries no costs, so ask the estimator directly.
                best_cost = self.estimator.estimate(best)
        sql = None
        if best is not None:
            sql = render_sql(best, self.configuration.relational_schema)
        return best, best_cost, cost_estimate, candidate_costs, sql

    def _load_from_store(
        self, identity: str, query: XBindQuery
    ) -> Optional[MarsReformulation]:
        """Rebuild a servable reformulation from the plan store, or ``None``.

        A decodable artifact comes back re-ranked under the *current*
        cost model and with freshly rendered SQL — the store persists
        what the compile proved, never what yesterday's statistics
        preferred.  An artifact whose JSON parsed but whose body cannot
        be rebuilt is quarantined exactly like torn bytes.
        """
        artifact = self.plan_store.load(identity)
        if artifact is None:
            return None
        try:
            reformulation = reformulation_from_canonical(artifact, query)
        except CanonicalFormError as error:
            self.plan_store.mark_corrupt(identity, reason=str(error))
            return None
        best, best_cost, cost_estimate, candidate_costs, sql = (
            self._rank_and_render(reformulation.best, reformulation.minimal, None)
        )
        reformulation.best = best
        reformulation.best_cost = 0.0 if best_cost is None else best_cost
        reformulation.cost_estimate = cost_estimate
        reformulation.candidate_costs = candidate_costs
        reformulation.sql = sql
        return reformulation

    def _save_to_store(
        self, identity: str, reformulation: MarsReformulation, minimize: bool
    ) -> None:
        """Persist a freshly compiled plan as a canonical artifact."""
        artifact = canonical_reformulation(reformulation)
        artifact["configuration"] = self._configuration_digest
        artifact["query_digest"] = reformulation.query.fingerprint_digest()
        artifact["minimize"] = bool(minimize)
        self.plan_store.save(identity, artifact)

    # ------------------------------------------------------------------
    def reformulate(
        self,
        query: XBindQuery,
        minimize: Optional[bool] = None,
    ) -> MarsReformulation:
        """Reformulate *query* against the proprietary schema.

        When *minimize* is ``False`` only the initial reformulation is
        produced (the paper's "switch off the backchase" mode); the default
        follows the engine configuration.

        With the default (non-injected) estimator, the minimal
        reformulations are ranked by the statistics-fed
        :class:`~repro.cost.model.CostModel`: ``best``/``best_cost`` come
        from that ranking, ``cost_estimate`` carries the structured
        estimate of the winner and ``candidate_costs`` the full priced
        field, cheapest first.

        With a :attr:`plan_cache` attached, the finished
        :class:`MarsReformulation` is memoized on the configuration
        version, the query fingerprint and the effective minimize mode;
        cached results are returned as-is (they are treated as immutable).
        Editing the configuration (new views, constraints, relations) bumps
        its version: the next call recompiles the derived artifacts and
        flushes every cache entry of the older version, so a stale plan
        cannot survive a configuration edit.

        With a :attr:`plan_store` attached, a cache miss consults the
        disk-backed store before compiling: the content-derived identity
        (query fingerprint digest + configuration fingerprint + minimize
        mode) addresses a canonical artifact that decodes into the same
        plan a fresh compile would produce — re-ranked under the current
        cost model, with freshly rendered SQL, and without entering the
        C&B engine (:attr:`engine_invocations` does not move).  Fresh
        compiles are written back; stale or damaged artifacts fall back
        to compilation.
        """
        if self.configuration.version != self._compiled_version:
            self._recompile()
        effective_minimize = (
            self.cb_config.minimize if minimize is None else minimize
        )
        cache_key = None
        if self.plan_cache is not None:
            cache_key = (
                self._compiled_version,
                query.fingerprint(),
                effective_minimize,
            )
            cached = self.plan_cache.get(cache_key)
            if cached is not None:
                return cached
        identity = None
        if self.plan_store is not None:
            # The identity is a function of the compile's *inputs* — this
            # lookup costs a digest and a file read, never a compile.
            identity = plan_identity(
                query.fingerprint_digest(),
                self._configuration_digest,
                effective_minimize,
            )
            loaded = self._load_from_store(identity, query)
            if loaded is not None:
                if cache_key is not None:
                    self.plan_cache.put(cache_key, loaded)
                return loaded
        compiled = self.compile_query(query)
        engine = self._engine
        if minimize is not None and minimize != self.cb_config.minimize:
            engine = self._override_engines.get(minimize)
            if engine is None:
                config = replace(self.cb_config, minimize=minimize)
                engine = CBEngine(
                    config=config, estimator=self.estimator, specs=self._specs
                )
                self._override_engines[minimize] = engine
        self.engine_invocations += 1
        result = engine.reformulate(
            compiled, self._dependencies, target_relations=self._target_relations
        )
        best, best_cost, cost_estimate, candidate_costs, sql = (
            self._rank_and_render(
                result.best, result.minimal_reformulations, result.best_cost
            )
        )
        reformulation = MarsReformulation.from_cb_result(query, compiled, result, sql)
        reformulation.best = best
        reformulation.best_cost = best_cost
        reformulation.cost_estimate = cost_estimate
        reformulation.candidate_costs = candidate_costs
        if identity is not None:
            self._save_to_store(identity, reformulation, effective_minimize)
        if cache_key is not None:
            # Negative results are cached too: "no reformulation exists" is
            # just as expensive to recompute.
            self.plan_cache.put(cache_key, reformulation)
        return reformulation

    def reformulate_or_fail(self, query: XBindQuery) -> MarsReformulation:
        """Like :meth:`reformulate` but raise when no reformulation exists."""
        reformulation = self.reformulate(query)
        if not reformulation.found:
            raise ReformulationError(
                f"no reformulation of {query.name} against the proprietary schema exists"
            )
        return reformulation

    def reformulate_all(
        self, queries: Sequence[XBindQuery]
    ) -> List[MarsReformulation]:
        """Reformulate a batch of decorrelated XBind queries (one client XQuery)."""
        return [self.reformulate(query) for query in queries]

    # ------------------------------------------------------------------
    def executor(self, backend: Optional[object] = None) -> "MarsExecutor":
        """Build a :class:`MarsExecutor` for this configuration.

        *backend* selects the storage backend running reformulations
        (``"memory"``, ``"sqlite"``, a backend class or instance); ``None``
        defers to ``configuration.backend``.
        """
        from .executor import MarsExecutor

        return MarsExecutor(self.configuration, backend=backend)

    def service(self, **kwargs: object) -> "PublishingService":
        """Build a thread-safe :class:`~repro.serve.PublishingService`.

        The service reuses this system (and attaches a plan cache to it if
        none is present); keyword arguments are forwarded — ``backend``,
        ``pool_size``, ``cache_size``, ``strategy``, ...
        """
        from ..serve import PublishingService

        return PublishingService(self.configuration, system=self, **kwargs)
