"""The MARS system facade: reformulating client queries end to end.

:class:`MarsSystem` wires a :class:`~repro.core.configuration.MarsConfiguration`
into the C&B engine (paper Figure 3): it compiles client XBind queries over
the public schema into conjunctive queries over GReX, chases them with the
compiled schema correspondence, XICs, TIX and relational constraints, and
backchases to find the minimal reformulations over the proprietary schema,
ranked by the plug-in cost estimator.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Sequence

from ..engine.cb import CBConfig, CBEngine
from ..engine.cost import CostEstimator, SimpleCostEstimator
from ..errors import ReformulationError
from ..logical.dependencies import DED
from ..logical.queries import ConjunctiveQuery
from ..storage.sql import render_sql
from ..xbind.query import XBindQuery
from .configuration import MarsConfiguration
from .reformulation import MarsReformulation


class MarsSystem:
    """Reformulates queries over the public schema into proprietary queries."""

    def __init__(
        self,
        configuration: MarsConfiguration,
        estimator: Optional[CostEstimator] = None,
        cb_config: Optional[CBConfig] = None,
        plan_cache: Optional[object] = None,
    ):
        self.configuration = configuration
        self.cb_config = cb_config or CBConfig()
        # An optional LRU cache of finished reformulations (any object with
        # thread-safe get/put, normally a repro.serve.cache.PlanCache),
        # keyed on the client query's structural fingerprint plus the
        # configuration version.  With a cache attached, a repeated query
        # skips compilation, chase and backchase entirely.  None (the
        # default) preserves uncached behaviour.
        self.plan_cache = plan_cache
        # The default estimator must be cheap: the backchase estimates the cost
        # of every candidate subquery.  The join-order-aware DP estimator can
        # be plugged in explicitly for final plan ranking.  An injected
        # estimator survives recompilation; the default one is rebuilt from
        # fresh statistics when the configuration changes.
        self._estimator_injected = estimator is not None
        self.estimator = estimator or SimpleCostEstimator(
            configuration.build_statistics()
        )
        # Compiled artifacts are derived once per configuration version and
        # reused across queries; _recompile() refreshes them (and flushes
        # stale cached plans) when the configuration is edited afterwards.
        self._compile_artifacts()

    def _compile_artifacts(self) -> None:
        """Derive (or re-derive) every compiled artifact of the configuration."""
        configuration = self.configuration
        self._compiler = configuration.compiler()
        self._dependencies: List[DED] = configuration.dependencies()
        self._target_relations = configuration.target_relations()
        self._specs = configuration.closure_specs()
        self._engine = CBEngine(
            config=self.cb_config, estimator=self.estimator, specs=self._specs
        )
        # Engines for per-call `minimize` overrides, built lazily and cached:
        # rebuilding a CBEngine per reformulate() call is wasteful.
        self._override_engines: Dict[bool, CBEngine] = {}
        self._compiled_version = configuration.version

    def _recompile(self) -> None:
        """React to a configuration edit: refresh artifacts, flush stale plans.

        Views and constraints shape every reformulation, so cached plans
        computed under an older configuration version must not survive the
        edit.  Keys embed the version (a stale entry can never be *hit*);
        this additionally evicts the dead entries so they stop occupying
        LRU slots.
        """
        if not self._estimator_injected:
            self.estimator = SimpleCostEstimator(self.configuration.build_statistics())
        self._compile_artifacts()
        current = self._compiled_version
        evict = getattr(self.plan_cache, "evict_where", None)
        if evict is not None:
            evict(lambda key: key[0] != current)

    # ------------------------------------------------------------------
    @property
    def dependencies(self) -> List[DED]:
        """The compiled DEDs of the configuration (TIX, XICs, views, keys)."""
        return list(self._dependencies)

    @property
    def target_relations(self):
        return set(self._target_relations)

    def compile_query(self, query: XBindQuery) -> ConjunctiveQuery:
        """Compile a client XBind query into a conjunctive query over GReX."""
        return self._compiler.compile_xbind(query)

    # ------------------------------------------------------------------
    def reformulate(
        self,
        query: XBindQuery,
        minimize: Optional[bool] = None,
    ) -> MarsReformulation:
        """Reformulate *query* against the proprietary schema.

        When *minimize* is ``False`` only the initial reformulation is
        produced (the paper's "switch off the backchase" mode); the default
        follows the engine configuration.

        With a :attr:`plan_cache` attached, the finished
        :class:`MarsReformulation` is memoized on the configuration
        version, the query fingerprint and the effective minimize mode;
        cached results are returned as-is (they are treated as immutable).
        Editing the configuration (new views, constraints, relations) bumps
        its version: the next call recompiles the derived artifacts and
        flushes every cache entry of the older version, so a stale plan
        cannot survive a configuration edit.
        """
        if self.configuration.version != self._compiled_version:
            self._recompile()
        cache_key = None
        if self.plan_cache is not None:
            effective_minimize = (
                self.cb_config.minimize if minimize is None else minimize
            )
            cache_key = (
                self._compiled_version,
                query.fingerprint(),
                effective_minimize,
            )
            cached = self.plan_cache.get(cache_key)
            if cached is not None:
                return cached
        compiled = self.compile_query(query)
        engine = self._engine
        if minimize is not None and minimize != self.cb_config.minimize:
            engine = self._override_engines.get(minimize)
            if engine is None:
                config = replace(self.cb_config, minimize=minimize)
                engine = CBEngine(
                    config=config, estimator=self.estimator, specs=self._specs
                )
                self._override_engines[minimize] = engine
        result = engine.reformulate(
            compiled, self._dependencies, target_relations=self._target_relations
        )
        sql = None
        if result.best is not None:
            sql = render_sql(result.best, self.configuration.relational_schema)
        reformulation = MarsReformulation.from_cb_result(query, compiled, result, sql)
        if cache_key is not None:
            # Negative results are cached too: "no reformulation exists" is
            # just as expensive to recompute.
            self.plan_cache.put(cache_key, reformulation)
        return reformulation

    def reformulate_or_fail(self, query: XBindQuery) -> MarsReformulation:
        """Like :meth:`reformulate` but raise when no reformulation exists."""
        reformulation = self.reformulate(query)
        if not reformulation.found:
            raise ReformulationError(
                f"no reformulation of {query.name} against the proprietary schema exists"
            )
        return reformulation

    def reformulate_all(
        self, queries: Sequence[XBindQuery]
    ) -> List[MarsReformulation]:
        """Reformulate a batch of decorrelated XBind queries (one client XQuery)."""
        return [self.reformulate(query) for query in queries]

    # ------------------------------------------------------------------
    def executor(self, backend: Optional[object] = None) -> "MarsExecutor":
        """Build a :class:`MarsExecutor` for this configuration.

        *backend* selects the storage backend running reformulations
        (``"memory"``, ``"sqlite"``, a backend class or instance); ``None``
        defers to ``configuration.backend``.
        """
        from .executor import MarsExecutor

        return MarsExecutor(self.configuration, backend=backend)

    def service(self, **kwargs: object) -> "PublishingService":
        """Build a thread-safe :class:`~repro.serve.PublishingService`.

        The service reuses this system (and attaches a plan cache to it if
        none is present); keyword arguments are forwarded — ``backend``,
        ``pool_size``, ``cache_size``, ``strategy``, ...
        """
        from ..serve import PublishingService

        return PublishingService(self.configuration, system=self, **kwargs)
