"""MARS configurations: schemas, views and constraints of one deployment.

A :class:`MarsConfiguration` gathers everything the administrator declares
(paper Figure 3, left column):

* the **public schema**: the virtual XML documents clients query;
* the **proprietary schema**: stored XML documents and relational tables
  (including redundant materialized views and caches);
* the **schema correspondence**: GAV and LAV views relating the two sides;
* **integrity constraints**: XICs on the XML data and DEDs (keys, foreign
  keys, arbitrary dependencies) on the relational data.

From these declarations the configuration derives the compiled artifacts
the C&B engine needs: the per-document GReX schemas, the TIX axioms, the
compiled views/XICs, the set of proprietary (target) relations a
reformulation may use, and cardinality statistics for the cost estimator.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from ..compile.grex import GrexSchema
from ..compile.tix import tix_for_documents
from ..compile.view_compiler import IdentityView, RelationalView, XMLView
from ..compile.xbind_compiler import GrexCompiler
from ..compile.xic import XIC, compile_xics
from ..engine.shortcut import ClosureSpec
from ..errors import SchemaError
from ..logical.dependencies import DED
from ..logical.schema import RelationalSchema
from ..storage.backends import default_backend_name
from ..storage.statistics import TableStatistics
from ..xmlmodel.model import XMLDocument

DEFAULT_XML_ACCESS_WEIGHT = 5.0


def _env_int(name: str) -> Optional[int]:
    """An integer environment knob; unset or non-numeric means None."""
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return None
    try:
        return int(raw)
    except ValueError:
        return None


class MarsConfiguration:
    """The declarative input of a MARS deployment."""

    def __init__(self, name: str = "mars"):
        self.name = name
        self.public_documents: Dict[str, Optional[XMLDocument]] = {}
        self.proprietary_documents: Dict[str, Optional[XMLDocument]] = {}
        self.relational_schema = RelationalSchema(f"{name}_storage")
        self.relational_data: Dict[str, List[Tuple[object, ...]]] = {}
        self.relational_views: List[RelationalView] = []
        self.xml_views: List[XMLView] = []
        self.identity_views: List[IdentityView] = []
        self.xics: List[XIC] = []
        self.extra_dependencies: List[DED] = []
        self.statistics = TableStatistics()
        self.xml_access_weight = DEFAULT_XML_ACCESS_WEIGHT
        self.include_disjunctive_tix = False
        # Name of the storage backend executing reformulations ("memory",
        # "sqlite", "sharded", ...); examples and benchmarks flip engines
        # with this flag.  The default honours the MARS_BACKEND environment
        # variable, so the test suite can run its entire matrix per engine.
        self.backend: str = default_backend_name()
        # Sharded-backend defaults (used when backend == "sharded"):
        # shard_count None defers to the MARS_SHARDS environment variable;
        # partition_keys maps table name -> partition-key column (tables not
        # listed are broadcast to every shard); shard_children optionally
        # names the child engine(s), one spec or one per shard.
        self.shard_count: Optional[int] = None
        self.partition_keys: Dict[str, object] = {}
        self.shard_children: Optional[object] = None
        # Replicated-backend defaults (used when backend == "replicated"):
        # replica_count None defers to the MARS_REPLICAS environment
        # variable; replica_child names the engine each replica runs
        # ("memory", "sqlite", or "sharded" to replicate a whole sharded
        # store built from the sharding declarations above);
        # replica_selector picks the read-fan-out policy.
        self.replica_count: Optional[int] = None
        self.replica_child: Optional[object] = None
        self.replica_selector: Optional[object] = None
        # Serving defaults used by repro.serve.PublishingService: how many
        # pooled connections to hand out and how many cached plans to keep.
        self.pool_size: int = 4
        self.plan_cache_size: int = 128
        # Durability of the write path.  With log_dir set (or the
        # MARS_LOG_DIR environment variable), the service spools its
        # mutation log(s) to append-only segment files under that
        # directory and recovers acknowledged updates from them on
        # restart; None keeps the log in memory (updates die with the
        # process).  log_fsync picks the flush policy per appended record
        # ("always" survives power loss, "off" survives process death);
        # log_segment_bytes caps a segment file before it is sealed and
        # becomes eligible for checkpoint-gated compaction.
        self.log_dir: Optional[str] = os.environ.get("MARS_LOG_DIR") or None
        self.log_fsync: str = "always"
        self.log_segment_bytes: int = 1 << 20
        # Persistent plan artifacts.  With plan_dir set (or the
        # MARS_PLAN_DIR environment variable), compiled reformulations are
        # written to that directory as canonical plan artifacts
        # (repro.plan) and a restarted service serves previously compiled
        # queries without re-entering the C&B engine; None keeps plans
        # in-process only.
        self.plan_dir: Optional[str] = os.environ.get("MARS_PLAN_DIR") or None
        # Operational surface (repro.obs.http / audit / slo).  admin_port
        # None keeps the admin HTTP endpoint off; 0 binds an ephemeral
        # port (published as service.admin_port after start); the
        # MARS_ADMIN_PORT environment variable overrides.  audit_dir (or
        # MARS_AUDIT_DIR) enables the durable JSONL audit log of every
        # acknowledged publish/update; audit_fsync follows the mutation
        # log's policy vocabulary ("always" | "off").  slo_target_p99
        # None disables SLO tracking; set it to a seconds budget to get
        # per-query error-budget burn over slo_window_seconds.
        self.admin_port: Optional[int] = _env_int("MARS_ADMIN_PORT")
        self.audit_dir: Optional[str] = os.environ.get("MARS_AUDIT_DIR") or None
        self.audit_fsync: str = "off"
        self.audit_max_bytes: int = 1 << 20
        self.slo_target_p99: Optional[float] = None
        self.slo_window_seconds: float = 300.0
        # Monotonic declaration version.  Every mutation of the schema
        # correspondence (views, constraints, relations) bumps it; the plan
        # cache keys on it, and MarsSystem recompiles its derived artifacts
        # and flushes stale cached plans when it observes a newer version.
        self.version: int = 0

    # ------------------------------------------------------------------
    # Declarations
    # ------------------------------------------------------------------
    def _bump_version(self) -> None:
        """Record that the declared schema correspondence changed.

        Cached reformulation plans embed the version they were computed
        under, so bumping it makes every previously cached plan stale (see
        ``MarsSystem.reformulate``).
        """
        self.version += 1

    def add_public_document(
        self, name: str, instance: Optional[XMLDocument] = None
    ) -> None:
        """Declare a published (virtual) document, optionally with an instance."""
        self.public_documents[name] = instance
        self._bump_version()

    def add_proprietary_document(
        self, name: str, instance: Optional[XMLDocument] = None
    ) -> None:
        """Declare a stored native-XML document."""
        self.proprietary_documents[name] = instance
        self._bump_version()

    def publish_document_as_is(
        self, name: str, instance: Optional[XMLDocument] = None
    ) -> None:
        """Declare a stored document that is published unchanged (IdMap style)."""
        self.add_proprietary_document(name, instance)
        self.add_public_document(name, instance)

    def add_relation(
        self,
        name: str,
        attributes: Sequence[str],
        rows: Optional[Iterable[Sequence[object]]] = None,
    ) -> None:
        """Declare a proprietary relational table, optionally with data."""
        self.relational_schema.add_relation(name, attributes)
        if rows is not None:
            self.relational_data[name] = [tuple(row) for row in rows]
        self._bump_version()

    def set_partition_key(self, relation: str, column: object) -> None:
        """Declare the column the ``sharded`` backend splits *relation* on.

        *column* is an attribute name or a 0-based position.  Relations
        without a partition key are broadcast to every shard, so only the
        large, shardable tables need a declaration.  (Partitioning is a
        physical-layout hint: it does not change the schema correspondence,
        so it does not invalidate cached plans.)
        """
        self.partition_keys[relation] = column

    def add_key(self, relation: str, attributes: Sequence[str]) -> None:
        self.relational_schema.add_key(relation, attributes)
        self._bump_version()

    def add_foreign_key(
        self,
        source: str,
        source_attributes: Sequence[str],
        target: str,
        target_attributes: Sequence[str],
    ) -> None:
        self.relational_schema.add_foreign_key(
            source, source_attributes, target, target_attributes
        )
        self._bump_version()

    def add_relational_view(
        self, view: RelationalView, attributes: Optional[Sequence[str]] = None
    ) -> None:
        """Declare a materialized relational view (LAV redundancy for tuning)."""
        self.relational_views.append(view)
        if view.name not in self.relational_schema:
            names = attributes or [f"c{i}" for i in range(view.arity)]
            self.relational_schema.add_relation(view.name, names)
        self._bump_version()

    def add_xml_view(self, view: XMLView, published: bool = True) -> None:
        """Declare an XML-producing view.

        With ``published=True`` the output document becomes part of the public
        schema (GAV mapping); otherwise it is a stored cache document (LAV),
        and should also be registered as a proprietary document.
        """
        self.xml_views.append(view)
        if published:
            self.public_documents.setdefault(view.output_document, None)
        self._bump_version()

    def add_identity_view(self, view: IdentityView) -> None:
        self.identity_views.append(view)
        self._bump_version()

    def add_xic(self, xic: XIC) -> None:
        self.xics.append(xic)
        self._bump_version()

    def add_dependency(self, dependency: DED) -> None:
        self.extra_dependencies.append(dependency)
        self._bump_version()

    # ------------------------------------------------------------------
    # Storage backend factory
    # ------------------------------------------------------------------
    def create_backend(self, spec: Optional[object] = None, **kwargs: object):
        """Instantiate the storage backend executing this deployment's queries.

        *spec* overrides the configuration's :attr:`backend` name; it may be
        a registry name, a backend class, or a ready instance (see
        :func:`repro.storage.backends.create_backend`).  When the resolved
        spec is the ``sharded`` backend, the configuration's sharding
        declarations (:attr:`shard_count`, :attr:`partition_keys`,
        :attr:`shard_children`) are threaded through as defaults, so a
        deployment flips to horizontal partitioning by setting
        ``backend = "sharded"`` and declaring partition keys.
        """
        from ..storage.backends import create_backend

        spec = spec if spec is not None else self.backend
        if spec in ("sharded", "replicated"):
            # Composite backends build their own children thread-portable
            # and do not take check_same_thread; dropping it here (instead
            # of letting the constructor raise TypeError) matters because
            # the replicated-over-sharded expansion below constructs real
            # child stores — a raise-and-retry would leak them.
            kwargs.pop("check_same_thread", None)
        if spec == "sharded":
            kwargs.setdefault("shards", self.shard_count)
            kwargs.setdefault("partition_keys", dict(self.partition_keys))
            if self.shard_children is not None:
                kwargs.setdefault("children", self.shard_children)
        elif spec == "replicated":
            kwargs.setdefault("replicas", self.replica_count)
            if self.replica_selector is not None:
                kwargs.setdefault("selector", self.replica_selector)
            if "children" not in kwargs:
                child = kwargs.setdefault("child", self.replica_child)
                if child == "sharded":
                    # Each replica must be an independent sharded store
                    # built from this configuration's sharding declarations
                    # (partition keys, shard count), not a bare default —
                    # so the instances are constructed here, recursively.
                    from ..replica.backend import default_replica_count

                    count = kwargs.get("replicas") or default_replica_count()
                    kwargs.pop("child")
                    kwargs["replicas"] = count
                    kwargs["children"] = [
                        self.create_backend("sharded") for _ in range(count)
                    ]
        return create_backend(spec, **kwargs)

    # ------------------------------------------------------------------
    # Derived artifacts
    # ------------------------------------------------------------------
    def document_names(self) -> Tuple[str, ...]:
        seen: Dict[str, None] = {}
        for name in self.public_documents:
            seen.setdefault(name, None)
        for name in self.proprietary_documents:
            seen.setdefault(name, None)
        return tuple(seen)

    def grex_schemas(self) -> Dict[str, GrexSchema]:
        return {name: GrexSchema(name) for name in self.document_names()}

    def compiler(self) -> GrexCompiler:
        schemas = self.grex_schemas()
        default = None
        if len(schemas) == 1:
            default = next(iter(schemas))
        return GrexCompiler(schemas, default_document=default)

    def closure_specs(self) -> Tuple[ClosureSpec, ...]:
        return tuple(schema.closure_spec() for schema in self.grex_schemas().values())

    def dependencies(self) -> List[DED]:
        """Every DED the chase will use: TIX, XICs, views, relational constraints."""
        schemas = self.grex_schemas()
        compiler = self.compiler()
        dependencies: List[DED] = []
        dependencies.extend(
            tix_for_documents(schemas.values(), self.include_disjunctive_tix)
        )
        dependencies.extend(compile_xics(self.xics, compiler))
        for view in self.relational_views:
            dependencies.extend(view.compile(compiler))
        for view in self.xml_views:
            target = schemas.get(view.output_document)
            if target is None:
                raise SchemaError(
                    f"XML view {view.name}: output document {view.output_document!r} "
                    "is not declared"
                )
            dependencies.extend(view.compile(compiler, target))
        for view in self.identity_views:
            source = schemas.get(view.document)
            published = schemas.get(view.published_as)
            if source is None or published is None:
                raise SchemaError(
                    f"identity view {view.name}: documents {view.document!r} / "
                    f"{view.published_as!r} must both be declared"
                )
            if view.document != view.published_as:
                dependencies.extend(view.compile(source, published))
        dependencies.extend(self.relational_schema.dependencies())
        dependencies.extend(self.extra_dependencies)
        return dependencies

    def target_relations(self) -> Set[str]:
        """Relations a reformulation may mention: the proprietary schema."""
        schemas = self.grex_schemas()
        target: Set[str] = set()
        for name in self.proprietary_documents:
            target.update(schemas[name].relation_names())
        target.update(self.relational_schema.relation_names)
        return target

    def build_statistics(self) -> TableStatistics:
        """Cardinality statistics with native-XML access weighted as more expensive."""
        stats = TableStatistics(
            cardinalities=dict(self.statistics.cardinalities),
            access_weights=dict(self.statistics.access_weights),
        )
        schemas = self.grex_schemas()
        for name, instance in self.proprietary_documents.items():
            schema = schemas[name]
            node_count = instance.node_count() if instance is not None else None
            for relation in schema.relation_names():
                stats.access_weights.setdefault(relation, self.xml_access_weight)
                if node_count is not None and relation not in stats.cardinalities:
                    stats.cardinalities[relation] = float(node_count)
        for name, rows in self.relational_data.items():
            stats.cardinalities.setdefault(name, float(len(rows)))
        # Materialized views without instance data get a modest default size:
        # they are maintained copies of published data, so they are expected
        # to be far cheaper to scan than navigating the native XML documents.
        for view in self.relational_views:
            stats.cardinalities.setdefault(view.name, 200.0)
        return stats
