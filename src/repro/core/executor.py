"""Execution of original and reformulated queries against instance data.

MARS proper stops at producing executable reformulations; real engines run
them.  The reproduction needs to *verify* reformulations (they must return
the same answers as the original query over the published documents) and to
*measure* execution-time savings (paper section 4.2), so this module builds
actual instances of both sides of a configuration and runs queries against
them:

* the **published side**: instance documents for the public schema, either
  registered explicitly or materialized by evaluating the XML views over the
  proprietary data;
* the **proprietary side**: an in-memory database holding the relational
  tables, the GReX encodings of stored XML documents, and the extents of the
  materialized relational views.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..compile.view_compiler import RelationalView
from ..errors import EvaluationError
from ..logical.queries import ConjunctiveQuery
from ..storage.evaluation import evaluate_query
from ..storage.relational_db import InMemoryDatabase
from ..xbind.evaluation import MixedStorage, evaluate_xbind
from ..xbind.query import XBindQuery
from ..xmlmodel.model import XMLDocument
from .configuration import MarsConfiguration

Row = Tuple[object, ...]


@dataclass
class ExecutionComparison:
    """Timing and answers of original-vs-reformulated execution."""

    original_rows: List[Row]
    reformulated_rows: List[Row]
    original_seconds: float
    reformulated_seconds: float

    @property
    def net_saving_seconds(self) -> float:
        return self.original_seconds - self.reformulated_seconds

    @property
    def speedup(self) -> float:
        if self.reformulated_seconds == 0:
            return float("inf")
        return self.original_seconds / self.reformulated_seconds

    @property
    def answers_match(self) -> bool:
        return sorted(map(repr, self.original_rows)) == sorted(
            map(repr, self.reformulated_rows)
        )


class MarsExecutor:
    """Builds instance data for a configuration and runs queries against it."""

    def __init__(self, configuration: MarsConfiguration):
        self.configuration = configuration
        self.public_storage = MixedStorage()
        self.proprietary_storage = MixedStorage()
        self.database = InMemoryDatabase()
        self.proprietary_storage.database = self.database
        self._build()

    # ------------------------------------------------------------------
    def _build(self) -> None:
        configuration = self.configuration
        # Proprietary relational tables and their data.
        for relation in configuration.relational_schema.relations:
            if not self.database.has_table(relation.name):
                self.database.create_table(
                    relation.name, relation.arity, relation.attributes
                )
            rows = configuration.relational_data.get(relation.name)
            if rows:
                self.database.table(relation.name).insert_many(rows)
        # Proprietary XML documents: keep them navigable and materialize GReX.
        schemas = configuration.grex_schemas()
        for name, instance in configuration.proprietary_documents.items():
            if instance is None:
                continue
            self.proprietary_storage.add_document(instance)
            schemas[name].materialize(instance, self.database)
        # Published documents: explicit instances, stored documents published
        # as-is, or materializations of the XML views.
        for name, instance in configuration.public_documents.items():
            if instance is not None:
                self.public_storage.add_document(instance)
            elif name in configuration.proprietary_documents and (
                configuration.proprietary_documents[name] is not None
            ):
                self.public_storage.add_document(
                    configuration.proprietary_documents[name]
                )
        for view in configuration.xml_views:
            if view.output_document in self.public_storage.documents:
                continue
            source = self._view_source_storage()
            document = view.materialize(source)
            self.public_storage.add_document(document)
        # Materialized relational views: their extents are computed over the
        # published data (they are LAV views of the public schema).
        for view in configuration.relational_views:
            self._materialize_relational_view(view)

    def _view_source_storage(self) -> MixedStorage:
        """Storage visible to view definitions: proprietary docs + relational data."""
        storage = MixedStorage(
            documents=dict(self.proprietary_storage.documents), database=self.database
        )
        for name, document in self.public_storage.documents.items():
            storage.documents.setdefault(name, document)
        return storage

    def _materialize_relational_view(self, view: RelationalView) -> None:
        storage = MixedStorage(
            documents=dict(self.public_storage.documents), database=self.database
        )
        rows = evaluate_xbind(view.definition, storage)
        if not self.database.has_table(view.name):
            self.database.create_table(view.name, view.arity)
        table = self.database.table(view.name)
        table.clear()
        table.insert_many(rows)

    # ------------------------------------------------------------------
    def execute_original(self, query: XBindQuery) -> List[Row]:
        """Evaluate the client query directly over the published documents."""
        storage = MixedStorage(
            documents=dict(self.public_storage.documents), database=self.database
        )
        return evaluate_xbind(query, storage)

    def execute_reformulation(self, query: ConjunctiveQuery) -> List[Row]:
        """Evaluate a reformulation over the proprietary storage."""
        return evaluate_query(query, self.database)

    def compare(
        self, original: XBindQuery, reformulation: ConjunctiveQuery, repeat: int = 1
    ) -> ExecutionComparison:
        """Run both versions, compare answers and wall-clock time."""
        start = time.perf_counter()
        original_rows: List[Row] = []
        for _ in range(max(1, repeat)):
            original_rows = self.execute_original(original)
        original_seconds = (time.perf_counter() - start) / max(1, repeat)
        start = time.perf_counter()
        reformulated_rows: List[Row] = []
        for _ in range(max(1, repeat)):
            reformulated_rows = self.execute_reformulation(reformulation)
        reformulated_seconds = (time.perf_counter() - start) / max(1, repeat)
        return ExecutionComparison(
            original_rows=original_rows,
            reformulated_rows=reformulated_rows,
            original_seconds=original_seconds,
            reformulated_seconds=reformulated_seconds,
        )

    def statistics(self):
        """Refresh table statistics from the actual instance data."""
        stats = self.configuration.build_statistics()
        for name, count in self.database.cardinalities().items():
            stats.cardinalities[name] = float(count)
        return stats
