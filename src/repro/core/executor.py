"""Execution of original and reformulated queries against instance data.

MARS proper stops at producing executable reformulations; real engines run
them.  The reproduction needs to *verify* reformulations (they must return
the same answers as the original query over the published documents) and to
*measure* execution-time savings (paper section 4.2), so this module builds
actual instances of both sides of a configuration and runs queries against
them:

* the **published side**: instance documents for the public schema, either
  registered explicitly or materialized by evaluating the XML views over the
  proprietary data;
* the **proprietary side**: a pluggable :class:`~repro.storage.backends.StorageBackend`
  holding the relational tables, the GReX encodings of stored XML documents,
  and the extents of the materialized relational views.  The default
  ``memory`` backend is the original in-memory evaluator; the ``sqlite``
  backend executes the generated SQL on a real relational engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple, Type, Union

from ..compile.view_compiler import RelationalView
from ..logical.queries import ConjunctiveQuery, UnionQuery
from ..obs.timer import timer
from ..profile import current_profile
from ..storage.backends import StorageBackend
from ..xbind.evaluation import MixedStorage, evaluate_xbind
from ..xbind.query import XBindQuery
from .configuration import MarsConfiguration

Row = Tuple[object, ...]
BackendSpec = Union[None, str, StorageBackend, Type[StorageBackend]]


@dataclass
class ExecutionComparison:
    """Timing and answers of original-vs-reformulated execution."""

    original_rows: List[Row]
    reformulated_rows: List[Row]
    original_seconds: float
    reformulated_seconds: float

    @property
    def net_saving_seconds(self) -> float:
        return self.original_seconds - self.reformulated_seconds

    @property
    def speedup(self) -> float:
        if self.reformulated_seconds == 0:
            return float("inf")
        return self.original_seconds / self.reformulated_seconds

    @property
    def answers_match(self) -> bool:
        return sorted(map(repr, self.original_rows)) == sorted(
            map(repr, self.reformulated_rows)
        )


class MarsExecutor:
    """Builds instance data for a configuration and runs queries against it.

    *backend* selects the engine holding the proprietary relational storage:
    ``None`` defers to ``configuration.backend`` (default ``"memory"``), a
    string is resolved through the backend registry, and an existing
    :class:`StorageBackend` instance is used as-is.
    """

    def __init__(
        self, configuration: MarsConfiguration, backend: BackendSpec = None
    ):
        self.configuration = configuration
        # Resolution goes through the configuration so that a string spec
        # picks up deployment defaults (e.g. "sharded" gets the declared
        # shard count and partition keys); instances pass through untouched.
        self.backend = configuration.create_backend(backend)
        # Only close backends this executor created; an injected instance
        # may be shared with other executors and stays the caller's to close.
        self._owns_backend = self.backend is not backend
        # Backwards-compatible alias: the proprietary relational store.  For
        # the memory backend this is the wrapped InMemoryDatabase; other
        # backends implement the same store interface themselves.
        self.database = getattr(self.backend, "database", self.backend)
        self.public_storage = MixedStorage()
        self.proprietary_storage = MixedStorage(database=self.backend)
        self._build()

    # ------------------------------------------------------------------
    def _build(self) -> None:
        configuration = self.configuration
        backend = self.backend
        # Proprietary relational tables and their data.  Pre-existing tables
        # (a reused backend instance or an on-disk SQLite file) are cleared so
        # rebuilding an executor is idempotent.
        for relation in configuration.relational_schema.relations:
            if not backend.has_table(relation.name):
                backend.create_table(
                    relation.name, relation.arity, relation.attributes
                )
            else:
                backend.clear_table(relation.name)
            rows = configuration.relational_data.get(relation.name)
            if rows:
                backend.insert_many(relation.name, rows)
        # Proprietary XML documents: keep them navigable and materialize GReX.
        schemas = configuration.grex_schemas()
        for name, instance in configuration.proprietary_documents.items():
            if instance is None:
                continue
            self.proprietary_storage.add_document(instance)
            schemas[name].materialize(instance, backend)
        # Published documents: explicit instances, stored documents published
        # as-is, or materializations of the XML views.
        for name, instance in configuration.public_documents.items():
            if instance is not None:
                self.public_storage.add_document(instance)
            elif name in configuration.proprietary_documents and (
                configuration.proprietary_documents[name] is not None
            ):
                self.public_storage.add_document(
                    configuration.proprietary_documents[name]
                )
        for view in configuration.xml_views:
            if view.output_document in self.public_storage.documents:
                continue
            source = self._view_source_storage()
            document = view.materialize(source)
            self.public_storage.add_document(document)
        # Materialized relational views: their extents are computed over the
        # published data (they are LAV views of the public schema).
        for view in configuration.relational_views:
            self._materialize_relational_view(view)
        # A sharded backend routes by modeled cost once statistics exist;
        # collect them now that every table is loaded (the access weights
        # keep pricing native-XML navigation above relational scans).
        refresh = getattr(backend, "refresh_statistics", None)
        if refresh is not None:
            refresh(access_weights=configuration.build_statistics().access_weights)

    def _view_source_storage(self) -> MixedStorage:
        """Storage visible to view definitions: proprietary docs + relational data."""
        storage = MixedStorage(
            documents=dict(self.proprietary_storage.documents), database=self.backend
        )
        for name, document in self.public_storage.documents.items():
            storage.documents.setdefault(name, document)
        return storage

    def _materialize_relational_view(self, view: RelationalView) -> None:
        storage = MixedStorage(
            documents=dict(self.public_storage.documents), database=self.backend
        )
        rows = evaluate_xbind(view.definition, storage)
        if not self.backend.has_table(view.name):
            self.backend.create_table(view.name, view.arity)
        else:
            self.backend.clear_table(view.name)
        self.backend.insert_many(view.name, rows)

    # ------------------------------------------------------------------
    def execute_original(self, query: XBindQuery) -> List[Row]:
        """Evaluate the client query directly over the published documents."""
        storage = MixedStorage(
            documents=dict(self.public_storage.documents), database=self.backend
        )
        return evaluate_xbind(query, storage)

    def execute_reformulation(
        self, query: Union[ConjunctiveQuery, UnionQuery]
    ) -> List[Row]:
        """Execute a reformulation over the proprietary storage backend.

        A whole :class:`UnionQuery` is pushed through the backend's batch
        entry point, which real engines run as a single ``UNION`` statement
        (one round trip) rather than one execution per disjunct.
        """
        profile = current_profile()
        if profile:
            profile.annotate(
                plan=getattr(query, "name", "<query>"),
                engine=self.backend.backend_name,
                disjuncts=len(tuple(query)) if isinstance(query, UnionQuery) else 1,
            )
        if isinstance(query, UnionQuery):
            return self.backend.execute_union(query)
        return self.backend.execute(query)

    def explain_reformulation(self, query: Union[ConjunctiveQuery, UnionQuery]) -> str:
        """The backend's account of how it would run *query*."""
        return self.backend.explain(query)

    def compare(
        self, original: XBindQuery, reformulation: ConjunctiveQuery, repeat: int = 1
    ) -> ExecutionComparison:
        """Run both versions, compare answers and wall-clock time."""
        clock = timer()
        original_rows: List[Row] = []
        for _ in range(max(1, repeat)):
            original_rows = self.execute_original(original)
        original_seconds = clock.elapsed / max(1, repeat)
        clock = timer()
        reformulated_rows: List[Row] = []
        for _ in range(max(1, repeat)):
            reformulated_rows = self.execute_reformulation(reformulation)
        reformulated_seconds = clock.elapsed / max(1, repeat)
        return ExecutionComparison(
            original_rows=original_rows,
            reformulated_rows=reformulated_rows,
            original_seconds=original_seconds,
            reformulated_seconds=reformulated_seconds,
        )

    def statistics(self):
        """Refresh table statistics from the actual instance data."""
        stats = self.configuration.build_statistics()
        for name, count in self.backend.cardinalities().items():
            stats.cardinalities[name] = float(count)
        return stats

    def collect_statistics(self):
        """Measure a statistics catalog from the built backend, *now*.

        The backend profiles its own tables (the SQLite backend via
        ``ANALYZE``/``sqlite_stat1``, the sharded backend by merging its
        children); the configuration's access weights are layered on top
        so stored-XML relations keep costing more than relational scans.
        Feed the result to :meth:`MarsSystem.attach_statistics` to plan
        against the live data instead of the declarations — after bulk
        loads this is the call that re-measures, and on a sharded backend
        it also re-feeds the router's cost model in the same pass.
        """
        weights = self.configuration.build_statistics().access_weights
        refresh = getattr(self.backend, "refresh_statistics", None)
        if refresh is not None:
            return refresh(access_weights=weights)
        catalog = self.backend.collect_statistics()
        for relation, weight in weights.items():
            catalog.set_weight(relation, weight)
        return catalog

    def close(self) -> None:
        """Release the backend's resources (e.g. the SQLite connection).

        A backend instance passed in by the caller is left open — it may be
        shared — and must be closed by whoever created it.  Idempotent:
        services tear executors down from multiple exit paths.
        """
        if self._owns_backend and not self.backend.closed:
            self.backend.close()
