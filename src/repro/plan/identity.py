"""Content-derived plan identity.

A plan artifact's identity answers one question: *would compiling this
query, against this configuration, in this mode, produce this plan?*  It
is a hash over exactly the **inputs** of the compile —

* the client query's structural fingerprint (variable-name independent),
* the configuration fingerprint: its declaration version plus the full
  compiled dependency set (views, XICs, TIX, keys/foreign keys) and the
  target-relation set — the things that shape every reformulation,
* the engine configuration (minimize mode and the C&B knobs),
* the artifact format version,

and over nothing else.  Derived artifacts — cost annotations, statistics,
timings, rendered SQL — are deliberately outside the identity: attaching
fresh statistics re-ranks a loaded plan, it does not orphan it.  Editing
a view or constraint, on the other hand, changes the configuration
fingerprint, so every artifact compiled under the old correspondence
simply stops being addressable: a stale plan can be *pruned*, but it can
never be *served*.

Because the identity depends only on inputs, a store lookup happens
before any compilation work — the whole point of the plan store.
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Any, Iterable, Sequence

from ..logical.dependencies import DED
from .canonical import ARTIFACT_FORMAT, canonical_ded
from .stable_json import stable_dumps

__all__ = [
    "configuration_fingerprint",
    "fingerprint_digest",
    "plan_identity",
]


def _digest(text: str) -> str:
    return hashlib.sha256(text.encode("ascii")).hexdigest()


def fingerprint_digest(fingerprint: Any) -> str:
    """A stable hex digest of a structural query fingerprint.

    The fingerprint tuples of :meth:`~repro.xbind.query.XBindQuery
    .fingerprint` encode through stable JSON (tuples as arrays), so the
    digest survives pickling and ``repr`` changes — safe for artifact
    filenames and audit labels.
    """
    return _digest(stable_dumps(fingerprint))


def _encode_config(value: Any) -> Any:
    """Dataclass config objects (CBConfig and friends) as plain JSON."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: _encode_config(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
    return value


def configuration_fingerprint(
    version: int,
    dependencies: Iterable[DED],
    target_relations: Iterable[str],
    cb_config: Any = None,
) -> str:
    """The content fingerprint of one compiled configuration.

    Dependencies are canonicalized and sorted, target relations sorted —
    declaration iteration order never reaches the hash.  The declaration
    *version* is included alongside the content: two configurations with
    identical content but different edit histories are still the same
    deployment state, but a version bump whose content digest did not
    move (an edit and its exact revert) is treated conservatively as a
    new state.
    """
    encoded_dependencies = sorted(
        stable_dumps(canonical_ded(dependency)) for dependency in dependencies
    )
    payload = stable_dumps(
        {
            "version": version,
            "dependencies": encoded_dependencies,
            "target_relations": sorted(target_relations),
            "cb_config": _encode_config(cb_config),
        }
    )
    return _digest(payload)


def plan_identity(
    query_digest: str,
    configuration_digest: str,
    minimize: bool,
) -> str:
    """The content-derived identity of one plan artifact.

    Two compiles share an identity exactly when they were given the same
    query fingerprint, the same compiled configuration and the same
    minimize mode under the same artifact format — which is when the
    determinism suite guarantees they produce byte-identical canonical
    artifacts.
    """
    payload = stable_dumps(
        {
            "format": ARTIFACT_FORMAT,
            "query": query_digest,
            "configuration": configuration_digest,
            "minimize": bool(minimize),
        }
    )
    return _digest(payload)
