"""Byte-stable JSON encoding for plan artifacts.

Canonical plan artifacts are compared and hashed as *bytes*: two
processes compiling the same query against the same configuration must
serialize the identical document, or the content-derived identity (and
every golden-plan test built on it) falls apart.  ``json.dumps`` is
deterministic only if it is pinned down, so this module is the single
place the pinning happens:

* keys are sorted, so dict insertion order (the thing ``PYTHONHASHSEED``
  shuffles indirectly through set/dict iteration) never leaks into the
  output;
* separators are compact and fixed — no whitespace for a formatter to
  disagree about;
* output is pure ASCII (``ensure_ascii``), so the bytes are the same
  regardless of locale or the writer's encoding defaults;
* ``NaN``/``Infinity`` are rejected outright: they are not JSON, they
  do not round-trip, and a timing-derived float sneaking into an
  artifact is exactly the bug the canonical form exists to exclude;
* dict keys must already be strings — ``json`` silently coerces int
  keys, which would make ``{1: "a"}`` and ``{"1": "a"}`` collide.

Every artifact byte written or hashed by :mod:`repro.plan` goes through
:func:`stable_dumps`.
"""

from __future__ import annotations

import json
import math
from typing import Any

__all__ = ["stable_dumps", "stable_loads"]


def _validate(value: Any) -> None:
    """Reject values that would serialize ambiguously or lossily."""
    if isinstance(value, dict):
        for key, item in value.items():
            if not isinstance(key, str):
                raise TypeError(
                    f"stable JSON requires string keys, got {type(key).__name__} "
                    f"key {key!r}"
                )
            _validate(item)
    elif isinstance(value, (list, tuple)):
        for item in value:
            _validate(item)
    elif isinstance(value, float):
        if math.isnan(value) or math.isinf(value):
            raise ValueError(
                f"stable JSON cannot encode non-finite float {value!r}"
            )
    elif isinstance(value, bool) or value is None or isinstance(value, (int, str)):
        pass
    else:
        raise TypeError(
            f"stable JSON cannot encode {type(value).__name__}: {value!r}"
        )


def stable_dumps(value: Any) -> str:
    """Serialize *value* to the one canonical JSON text for its content.

    Sorted keys, compact separators, ASCII-only, finite numbers only.
    Tuples encode as arrays (they decode back as lists — canonical forms
    never rely on the distinction).
    """
    _validate(value)
    return json.dumps(
        value,
        sort_keys=True,
        separators=(",", ":"),
        ensure_ascii=True,
        allow_nan=False,
    )


def stable_loads(text: str) -> Any:
    """Parse a canonical JSON document (plain :func:`json.loads`)."""
    return json.loads(text)
