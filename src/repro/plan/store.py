"""The disk-backed plan store: compiled reformulations as durable artifacts.

Every process restart used to pay the full Chase & Backchase for every
query it serves — the plan cache is an in-process structure and dies with
the process.  :class:`PlanStore` turns a finished compile into a file:
one ``<identity>.json`` artifact per plan under a store directory, where
the identity is the content-derived hash of the compile's *inputs* (see
:mod:`repro.plan.identity`) and the body is the canonical form of its
*output* (see :mod:`repro.plan.canonical`).  A restarted service pointed
at the same directory — or a fleet member sharing it — answers previously
compiled queries without ever entering the C&B engine.

Durability discipline follows the mutation log's:

* **writes are tmp + rename**: an artifact is visible under its final
  name only once its bytes are complete, so a crashed writer leaves a
  ``.tmp`` straggler, never a half-readable plan;
* **loads are corruption-tolerant**: unreadable bytes, malformed JSON, a
  wrong embedded identity or an unknown format version all count and
  quarantine the file (renamed aside as ``.corrupt``), and the caller
  falls back to a fresh compile — a damaged store degrades to cold
  starts, it never serves a wrong plan and never takes serving down;
* **stale artifacts are unreachable by construction**: a view/constraint
  edit changes the configuration fingerprint and therefore every
  identity, so old artifacts simply stop being addressed;
  :meth:`prune_stale` deletes them once a new configuration is compiled.

The store is safe for concurrent writers on one filesystem (renames are
atomic; last writer wins with byte-identical content, by the determinism
guarantee).  Counters are surfaced through :meth:`stats` and, when the
owning service wires one in, every load outcome is recorded on the
:attr:`events` log as ``plan_store.loaded`` / ``plan_store.stale`` /
``plan_store.corrupt``.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional

from ..errors import StorageError
from .canonical import ARTIFACT_FORMAT
from .stable_json import stable_dumps, stable_loads

#: Event kinds the store records (mirrored in ``repro.obs.events``).
PLAN_LOADED = "plan_store.loaded"
PLAN_STALE = "plan_store.stale"
PLAN_CORRUPT = "plan_store.corrupt"

_IDENTITY_CHARS = frozenset("0123456789abcdef")


@dataclass(frozen=True)
class PlanStoreStats:
    """Lifetime counters plus the on-disk artifact count."""

    directory: str
    #: Artifacts currently on disk (counted at snapshot time).
    artifacts: int
    #: Loads that returned a valid artifact.
    hits: int
    #: Loads that found no artifact under the identity.
    misses: int
    #: Artifacts written (tmp + rename completions).
    writes: int
    #: Writes that failed (disk full, permissions); serving continues cold.
    write_errors: int
    #: Artifacts quarantined because their bytes could not be trusted.
    corrupt: int
    #: Artifacts deleted by :meth:`PlanStore.prune_stale`.
    invalidations: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "directory": self.directory,
            "artifacts": self.artifacts,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "writes": self.writes,
            "write_errors": self.write_errors,
            "corrupt": self.corrupt,
            "invalidations": self.invalidations,
        }


class PlanStore:
    """A directory of canonical plan artifacts keyed by content identity."""

    def __init__(self, directory: os.PathLike, events: Optional[Any] = None):
        self.directory = Path(directory)
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
        except OSError as error:
            raise StorageError(
                f"cannot create plan store directory {self.directory}: {error}"
            ) from error
        #: An ``EventLog``-shaped recorder (``record(kind, **details)``);
        #: the owning service points this at its own log.
        self.events = events
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._writes = 0
        self._write_errors = 0
        self._corrupt = 0
        self._invalidations = 0

    # ------------------------------------------------------------------
    def _path(self, identity: str) -> Path:
        if not identity or not set(identity) <= _IDENTITY_CHARS:
            raise StorageError(
                f"malformed plan identity {identity!r} (expected lowercase hex)"
            )
        return self.directory / f"{identity}.json"

    def _record(self, kind: str, **details: Any) -> None:
        if self.events is not None:
            self.events.record(kind, **details)

    # ------------------------------------------------------------------
    def load(self, identity: str) -> Optional[Dict[str, Any]]:
        """The artifact body stored under *identity*, or ``None``.

        A missing file is a plain miss.  Bytes that fail to parse, parse
        to a non-dict, carry the wrong embedded identity or an unknown
        format version are quarantined (``mark_corrupt``) and reported as
        a miss — the caller recompiles and overwrites.
        """
        path = self._path(identity)
        try:
            text = path.read_text(encoding="ascii")
        except FileNotFoundError:
            with self._lock:
                self._misses += 1
            return None
        except OSError as error:
            self.mark_corrupt(identity, reason=str(error))
            return None
        try:
            artifact = stable_loads(text)
        except ValueError as error:
            self.mark_corrupt(identity, reason=f"malformed JSON: {error}")
            return None
        if not isinstance(artifact, dict):
            self.mark_corrupt(identity, reason="artifact body is not an object")
            return None
        if artifact.get("identity") != identity:
            self.mark_corrupt(
                identity,
                reason=f"embedded identity {artifact.get('identity')!r} "
                "does not match the filename",
            )
            return None
        if artifact.get("format") != ARTIFACT_FORMAT:
            # A future (or ancient) format is not damage — but it is not
            # servable by this build either.  Treat it as stale: delete,
            # recompile, rewrite in today's format.
            try:
                path.unlink()
            except OSError:
                pass
            with self._lock:
                self._misses += 1
                self._invalidations += 1
            self._record(
                PLAN_STALE,
                identity=identity,
                format=artifact.get("format"),
                reason="artifact format version mismatch",
            )
            return None
        with self._lock:
            self._hits += 1
        self._record(PLAN_LOADED, identity=identity, bytes=len(text))
        return artifact

    def save(self, identity: str, artifact: Dict[str, Any]) -> bool:
        """Write *artifact* under *identity*; returns whether it landed.

        The body is serialized through stable JSON, written to a
        per-writer ``.tmp`` file and renamed into place, so readers only
        ever observe complete artifacts.  A failed write is counted, the
        straggler removed, and serving continues uncached — the store is
        an accelerator, never a point of failure.
        """
        path = self._path(identity)
        stamped = dict(artifact)
        stamped["identity"] = identity
        tmp = path.with_suffix(
            f".{os.getpid()}.{threading.get_ident()}.tmp"
        )
        try:
            tmp.write_text(stable_dumps(stamped), encoding="ascii")
            os.replace(tmp, path)
        except OSError:
            with self._lock:
                self._write_errors += 1
            try:
                tmp.unlink()
            except OSError:
                pass
            return False
        with self._lock:
            self._writes += 1
        return True

    def mark_corrupt(self, identity: str, reason: str = "") -> None:
        """Quarantine the artifact under *identity* (rename to ``.corrupt``).

        Also the hook for the system's decode path: an artifact whose
        JSON parsed but whose body cannot be rebuilt into a plan is just
        as untrustworthy as torn bytes.
        """
        path = self._path(identity)
        try:
            os.replace(path, path.with_suffix(".corrupt"))
        except OSError:
            pass
        with self._lock:
            self._corrupt += 1
            self._misses += 1
        self._record(PLAN_CORRUPT, identity=identity, reason=reason)

    # ------------------------------------------------------------------
    def prune_stale(self, configuration_digest: str) -> int:
        """Delete artifacts not compiled under *configuration_digest*.

        Stale artifacts are already unreachable (their identities embed
        the old fingerprint); pruning reclaims the disk and keeps the
        directory listing honest.  Returns how many were deleted.
        """
        pruned = 0
        for path in sorted(self.directory.glob("*.json")):
            try:
                artifact = stable_loads(path.read_text(encoding="ascii"))
                stale = (
                    not isinstance(artifact, dict)
                    or artifact.get("configuration") != configuration_digest
                )
            except (OSError, ValueError):
                # Unreadable artifacts are dealt with on load; pruning
                # only handles well-formed strangers.
                continue
            if stale:
                try:
                    path.unlink()
                except OSError:
                    continue
                pruned += 1
                self._record(
                    PLAN_STALE,
                    identity=path.stem,
                    reason="configuration fingerprint changed",
                )
        if pruned:
            with self._lock:
                self._invalidations += pruned
        return pruned

    def identities(self) -> List[str]:
        """The identities of every artifact currently on disk, sorted."""
        return sorted(path.stem for path in self.directory.glob("*.json"))

    def __len__(self) -> int:
        return len(self.identities())

    def stats(self) -> PlanStoreStats:
        with self._lock:
            return PlanStoreStats(
                directory=str(self.directory),
                artifacts=len(list(self.directory.glob("*.json"))),
                hits=self._hits,
                misses=self._misses,
                writes=self._writes,
                write_errors=self._write_errors,
                corrupt=self._corrupt,
                invalidations=self._invalidations,
            )
