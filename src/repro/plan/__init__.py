"""Canonical plan artifacts and the persistent plan store.

Compiling one reformulation runs the full Chase & Backchase — orders of
magnitude more than executing it — and until this package existed the
result lived only in an in-process LRU cache: every restart of every
fleet member recompiled every plan from scratch.  This package makes a
compiled plan a *durable, shareable artifact* with a stable identity:

* :mod:`~repro.plan.stable_json` — the byte-deterministic JSON encoding
  (sorted keys, fixed separators, ASCII, finite numbers only) every
  artifact is serialized and hashed through;
* :mod:`~repro.plan.canonical` — the normative canonical form of
  queries and reformulations: positional variable renaming, sorted atom
  order, symmetric-atom normalization, derived artifacts (timings, cost
  annotations, SQL) excluded;
* :mod:`~repro.plan.identity` — the content-derived identity hash over
  the compile's *inputs* (query fingerprint, configuration fingerprint,
  engine mode, format version), computable before any compile work;
* :mod:`~repro.plan.store` — the disk-backed :class:`PlanStore`
  (``<identity>.json`` artifacts, tmp+rename writes, corruption-
  tolerant loads, stale pruning).

``MarsSystem.reformulate`` consults an attached store between the plan
cache and the C&B engine; ``PublishingService(plan_dir=...)`` (or the
``MARS_PLAN_DIR`` environment variable) wires one in, so a restarted
service serves warm plans with zero engine entries.  The golden-plan
suite (``tests/test_plan_determinism.py`` + ``tests/golden_plans/``)
locks the canonical identities of the workload queries across refactors.
"""

from .canonical import (
    ARTIFACT_FORMAT,
    CanonicalFormError,
    canonical_ded,
    canonical_query,
    canonical_reformulation,
    canonical_xbind,
    query_from_canonical,
    reformulation_from_canonical,
    xbind_from_canonical,
)
from .identity import (
    configuration_fingerprint,
    fingerprint_digest,
    plan_identity,
)
from .stable_json import stable_dumps, stable_loads
from .store import (
    PLAN_CORRUPT,
    PLAN_LOADED,
    PLAN_STALE,
    PlanStore,
    PlanStoreStats,
)

__all__ = [
    "ARTIFACT_FORMAT",
    "CanonicalFormError",
    "PLAN_CORRUPT",
    "PLAN_LOADED",
    "PLAN_STALE",
    "PlanStore",
    "PlanStoreStats",
    "canonical_ded",
    "canonical_query",
    "canonical_reformulation",
    "canonical_xbind",
    "configuration_fingerprint",
    "fingerprint_digest",
    "plan_identity",
    "query_from_canonical",
    "reformulation_from_canonical",
    "stable_dumps",
    "stable_loads",
    "xbind_from_canonical",
]
