"""The normative canonical form of compiled plans.

A compiled :class:`~repro.core.reformulation.MarsReformulation` is full of
incidental detail: variable names minted by whichever counter ran first,
body atoms in whatever order the chase emitted them, wall-clock timings,
cost annotations priced under whatever statistics happened to be attached.
None of that is *the plan*.  The canonical form strips a reformulation
down to what two independent compiles of the same query against the same
configuration must agree on:

* **variables** are renamed positionally — ``v0, v1, ...`` by first
  occurrence scanning the head, then the body — so the fresh-variable
  counters of the chase leave no trace;
* **body atoms** are sorted by a rename-independent structural signature:
  variables are first partitioned by Weisfeiler–Lehman-style color
  refinement (head positions, then iterated occurrence profiles), and
  atoms sort by their encoding under those colors.  Because the colors
  depend only on the body's structure — never on variable names or the
  incoming atom order — canonicalization is *idempotent*: re-encoding a
  decoded artifact reproduces it byte for byte;
* **symmetric atoms** (``=``, ``!=``) order their two sides canonically;
* **derived artifacts are excluded**: no timings, no cost estimates, no
  candidate rankings, no rendered SQL.  Those are recomputed when an
  artifact is loaded (see ``MarsSystem``) — a plan store must never pin
  yesterday's statistics to tomorrow's data.

Deterministic *integer* compile facts (chase steps, subqueries inspected)
are kept: they are properties of the compile, not of the clock, and the
golden-plan suite deliberately locks them so an engine refactor that
changes search behaviour shows up as a golden drift instead of slipping
by.

Everything here encodes to plain JSON-able values and serializes through
:func:`~repro.plan.stable_json.stable_dumps`.
"""

from __future__ import annotations

import hashlib
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from ..errors import StorageError
from ..logical.atoms import (
    Atom,
    EqualityAtom,
    InequalityAtom,
    RelationalAtom,
)
from ..logical.dependencies import DED
from ..logical.queries import ConjunctiveQuery
from ..logical.terms import Constant, Term, Variable, is_variable
from ..xbind.atoms import PathAtom
from ..xbind.query import XBindQuery
from .stable_json import stable_dumps

class CanonicalFormError(StorageError):
    """A canonical document could not be decoded back into a plan."""


# ----------------------------------------------------------------------
# Terms
# ----------------------------------------------------------------------
def _encode_term(term: Term, numbering: Dict[Variable, int]) -> List[Any]:
    if is_variable(term):
        index = numbering.get(term)
        if index is None:
            index = numbering[term] = len(numbering)
        return ["v", index]
    value = term.value
    return ["c", type(value).__name__, value]


def _decode_term(encoded: Sequence[Any]) -> Term:
    kind = encoded[0]
    if kind == "v":
        return Variable(f"v{encoded[1]}")
    if kind == "c":
        _kind, type_name, value = encoded
        if type_name == "int":
            return Constant(int(value))
        if type_name == "float":
            return Constant(float(value))
        if type_name == "str":
            return Constant(str(value))
        raise CanonicalFormError(
            f"unsupported constant type {type_name!r} in canonical term"
        )
    raise CanonicalFormError(f"unknown canonical term kind {kind!r}")


def _sorted_pair(left: List[Any], right: List[Any]) -> Tuple[List[Any], List[Any]]:
    """Order the two sides of a symmetric atom canonically."""
    if stable_dumps(left) <= stable_dumps(right):
        return left, right
    return right, left


# ----------------------------------------------------------------------
# Atoms
# ----------------------------------------------------------------------
def _encode_atom(atom: Atom, numbering: Dict[Variable, int]) -> List[Any]:
    """Encode a relational/equality/inequality/path atom."""
    if isinstance(atom, RelationalAtom):
        return [
            "rel",
            atom.relation,
            [_encode_term(t, numbering) for t in atom.terms],
        ]
    if isinstance(atom, EqualityAtom):
        left = _encode_term(atom.left, numbering)
        right = _encode_term(atom.right, numbering)
        return ["eq", *_sorted_pair(left, right)]
    if isinstance(atom, InequalityAtom):
        left = _encode_term(atom.left, numbering)
        right = _encode_term(atom.right, numbering)
        return ["neq", *_sorted_pair(left, right)]
    if isinstance(atom, PathAtom):
        source = (
            None
            if atom.source is None
            else _encode_term(atom.source, numbering)
        )
        return [
            "path",
            str(atom.path),
            atom.document,
            source,
            _encode_term(atom.target, numbering),
        ]
    raise CanonicalFormError(
        f"cannot canonicalize atom of type {type(atom).__name__}"
    )


def _decode_atom(encoded: Sequence[Any]) -> Any:
    kind = encoded[0]
    if kind == "rel":
        _kind, relation, terms = encoded
        return RelationalAtom(relation, tuple(_decode_term(t) for t in terms))
    if kind == "eq":
        return EqualityAtom(_decode_term(encoded[1]), _decode_term(encoded[2]))
    if kind == "neq":
        return InequalityAtom(_decode_term(encoded[1]), _decode_term(encoded[2]))
    if kind == "path":
        _kind, path, document, source, target = encoded
        return PathAtom(
            path,
            _decode_term(target),
            None if source is None else _decode_term(source),
            document,
        )
    raise CanonicalFormError(f"unknown canonical atom kind {kind!r}")


# ----------------------------------------------------------------------
# Variable colors (Weisfeiler–Lehman-style refinement)
# ----------------------------------------------------------------------
def _occurrences(atom: Atom) -> Iterator[Tuple[Variable, int]]:
    """Each variable occurrence in *atom*, with a position tag.

    Symmetric atoms tag both sides identically — the two sides of an
    (in)equality are interchangeable and must color identically when
    swapped.
    """
    if isinstance(atom, RelationalAtom):
        for index, term in enumerate(atom.terms):
            if is_variable(term):
                yield term, index
    elif isinstance(atom, (EqualityAtom, InequalityAtom)):
        for term in (atom.left, atom.right):
            if is_variable(term):
                yield term, -1
    elif isinstance(atom, PathAtom):
        if atom.source is not None and is_variable(atom.source):
            yield atom.source, 0
        if is_variable(atom.target):
            yield atom.target, 1


def _atom_signature(atom: Atom, colors: Dict[Variable, str]) -> List[Any]:
    """*atom* encoded with variables replaced by their refinement colors.

    The result depends only on the body's structure — never on variable
    names or atom order — which is what makes the final sort idempotent.
    """

    def term_signature(term: Term) -> List[Any]:
        if is_variable(term):
            return ["v", colors[term]]
        value = term.value
        return ["c", type(value).__name__, value]

    if isinstance(atom, RelationalAtom):
        return ["rel", atom.relation, [term_signature(t) for t in atom.terms]]
    if isinstance(atom, EqualityAtom):
        return ["eq", *_sorted_pair(term_signature(atom.left), term_signature(atom.right))]
    if isinstance(atom, InequalityAtom):
        return ["neq", *_sorted_pair(term_signature(atom.left), term_signature(atom.right))]
    if isinstance(atom, PathAtom):
        source = None if atom.source is None else term_signature(atom.source)
        return ["path", str(atom.path), atom.document, source, term_signature(atom.target)]
    raise CanonicalFormError(
        f"cannot canonicalize atom of type {type(atom).__name__}"
    )


def _color_digest(payload: Any) -> str:
    return hashlib.sha256(stable_dumps(payload).encode("ascii")).hexdigest()[:16]


def _refine_colors(
    head: Sequence[Term], body: Sequence[Any]
) -> Dict[Variable, str]:
    """Partition the body's variables by structural role.

    Initial colors come from head positions (an exported variable is
    distinguishable from an existential one); each refinement round
    folds in the sorted profile of the variable's occurrences — the
    signatures, under current colors, of every atom it appears in and
    where.  Refinement only ever splits color classes, so it stabilizes
    within ``len(variables)`` rounds; iteration stops as soon as a round
    creates no new class.
    """
    variables: Dict[Variable, None] = {}
    head_positions: Dict[Variable, List[int]] = {}
    for index, term in enumerate(head):
        if is_variable(term):
            variables.setdefault(term, None)
            head_positions.setdefault(term, []).append(index)
    for atom in body:
        for variable, _position in _occurrences(atom):
            variables.setdefault(variable, None)
    colors = {
        v: _color_digest(["head", head_positions.get(v, [])]) for v in variables
    }
    distinct = len(set(colors.values()))
    for _round in range(max(len(variables), 1)):
        profiles: Dict[Variable, List[List[Any]]] = {v: [] for v in variables}
        for atom in body:
            signature = stable_dumps(_atom_signature(atom, colors))
            for variable, position in _occurrences(atom):
                profiles[variable].append([signature, position])
        colors = {
            v: _color_digest([colors[v], sorted(profiles[v], key=stable_dumps)])
            for v in variables
        }
        refined = len(set(colors.values()))
        if refined == distinct:
            break
        distinct = refined
    return colors


# ----------------------------------------------------------------------
# Queries
# ----------------------------------------------------------------------
def _encode_query_parts(
    head: Sequence[Term], body: Sequence[Any]
) -> Tuple[List[Any], List[Any]]:
    """The ordering + renaming pipeline shared by every query-shaped object.

    Atoms sort by their color signature — a pure function of the body's
    structure — and variables then number by first occurrence over
    (head, sorted body).  Because neither step reads variable names or
    the incoming order (beyond stable-sort tie-breaking of structurally
    identical atoms), re-canonicalizing canonical output is the
    identity.
    """
    ordered = list(body)
    if len(ordered) > 1:
        colors = _refine_colors(head, ordered)
        ordered.sort(key=lambda atom: stable_dumps(_atom_signature(atom, colors)))
    numbering: Dict[Variable, int] = {}
    encoded_head = [_encode_term(t, numbering) for t in head]
    encoded_body = [_encode_atom(a, numbering) for a in ordered]
    return encoded_head, encoded_body


def canonical_query(query: ConjunctiveQuery) -> Dict[str, Any]:
    """The canonical document of one conjunctive query."""
    head, body = _encode_query_parts(query.head, query.body)
    return {"name": query.name, "head": head, "body": body}


def query_from_canonical(document: Dict[str, Any]) -> ConjunctiveQuery:
    """Rebuild a conjunctive query from its canonical document.

    Variables come back with their canonical names (``v0, v1, ...``);
    execution semantics do not depend on variable names, so the decoded
    plan computes exactly the rows the encoded plan did.
    """
    try:
        return ConjunctiveQuery(
            document["name"],
            tuple(_decode_term(t) for t in document["head"]),
            tuple(_decode_atom(a) for a in document["body"]),
        )
    except (KeyError, IndexError, TypeError, ValueError) as error:
        raise CanonicalFormError(
            f"malformed canonical query document: {error}"
        ) from error


def canonical_xbind(query: XBindQuery) -> Dict[str, Any]:
    """The canonical document of one client XBind query."""
    head, body = _encode_query_parts(query.head, query.body)
    return {"name": query.name, "head": head, "body": body}


def xbind_from_canonical(document: Dict[str, Any]) -> XBindQuery:
    try:
        return XBindQuery(
            document["name"],
            tuple(_decode_term(t) for t in document["head"]),
            tuple(_decode_atom(a) for a in document["body"]),
        )
    except (KeyError, IndexError, TypeError, ValueError) as error:
        raise CanonicalFormError(
            f"malformed canonical XBind document: {error}"
        ) from error


# ----------------------------------------------------------------------
# Dependencies (encode-only: used by the configuration fingerprint)
# ----------------------------------------------------------------------
def canonical_ded(dependency: DED) -> Dict[str, Any]:
    """The canonical document of one DED.

    Universal variables are numbered over the (sorted) premise;
    existentials continue the numbering per disjunct.  Disjuncts are
    sorted by their encodings, so the fingerprint of a configuration does
    not depend on declaration-iteration order.
    """
    premise = list(dependency.premise)
    if len(premise) > 1:
        colors = _refine_colors((), premise)
        premise.sort(key=lambda atom: stable_dumps(_atom_signature(atom, colors)))
    numbering: Dict[Variable, int] = {}
    encoded_premise = [_encode_atom(a, numbering) for a in premise]
    disjuncts: List[List[Any]] = []
    for disjunct in dependency.disjuncts:
        scoped = dict(numbering)
        disjuncts.append([_encode_atom(a, scoped) for a in disjunct.atoms])
    disjuncts.sort(key=stable_dumps)
    return {
        "name": dependency.name,
        "premise": encoded_premise,
        "disjuncts": disjuncts,
    }


# ----------------------------------------------------------------------
# Reformulations
# ----------------------------------------------------------------------
#: Bumped whenever the artifact schema changes shape; old-format artifacts
#: are treated as misses (recompiled and rewritten), never mis-decoded.
ARTIFACT_FORMAT = 1


def canonical_reformulation(reformulation: Any) -> Dict[str, Any]:
    """The canonical artifact body of one compiled reformulation.

    Carries the complete compile outcome — client query, compiled query,
    universal plan, initial and minimal reformulations, the chosen best —
    plus the deterministic integer compile statistics.  Timings, cost
    estimates, candidate rankings and rendered SQL are *derived* and
    deliberately absent.
    """
    return {
        "format": ARTIFACT_FORMAT,
        "query": canonical_xbind(reformulation.query),
        "compiled": canonical_query(reformulation.compiled_query),
        "universal_plan": canonical_query(reformulation.universal_plan),
        "initial": (
            None
            if reformulation.initial is None
            else canonical_query(reformulation.initial)
        ),
        "minimal": [canonical_query(q) for q in reformulation.minimal],
        "best": (
            None
            if reformulation.best is None
            else canonical_query(reformulation.best)
        ),
        "chase_steps": int(reformulation.chase_steps),
        "subqueries_inspected": int(reformulation.subqueries_inspected),
    }


def reformulation_from_canonical(
    document: Dict[str, Any], query: Optional[XBindQuery] = None
) -> Any:
    """Rebuild a :class:`MarsReformulation` from an artifact body.

    *query* substitutes the caller's own query object for the canonical
    one (the service passes the query it is actually serving, so audit
    and feedback keep keying on the caller's names).  Timing fields are
    zero — a loaded plan did no chasing — and cost/SQL fields are left
    for the system to re-derive under its current statistics.
    """
    from ..core.reformulation import MarsReformulation

    if document.get("format") != ARTIFACT_FORMAT:
        raise CanonicalFormError(
            f"unsupported artifact format {document.get('format')!r} "
            f"(this build reads format {ARTIFACT_FORMAT})"
        )
    try:
        return MarsReformulation(
            query=(
                query
                if query is not None
                else xbind_from_canonical(document["query"])
            ),
            compiled_query=query_from_canonical(document["compiled"]),
            universal_plan=query_from_canonical(document["universal_plan"]),
            initial=(
                None
                if document["initial"] is None
                else query_from_canonical(document["initial"])
            ),
            minimal=[query_from_canonical(q) for q in document["minimal"]],
            best=(
                None
                if document["best"] is None
                else query_from_canonical(document["best"])
            ),
            best_cost=0.0,
            sql=None,
            time_to_universal_plan=0.0,
            time_to_initial=0.0,
            time_to_best=0.0,
            chase_steps=int(document["chase_steps"]),
            subqueries_inspected=int(document["subqueries_inspected"]),
        )
    except (KeyError, TypeError, ValueError) as error:
        raise CanonicalFormError(
            f"malformed canonical artifact: {error}"
        ) from error
