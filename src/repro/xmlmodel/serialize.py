"""Serialization of the XML document model back to text."""

from __future__ import annotations

from typing import List

from .model import XMLDocument, XMLNode

_ESCAPES = {"&": "&amp;", "<": "&lt;", ">": "&gt;"}
_ATTRIBUTE_ESCAPES = {**_ESCAPES, '"': "&quot;"}


def escape_text(value: str) -> str:
    """Escape character data for inclusion in element content."""
    return "".join(_ESCAPES.get(character, character) for character in value)


def escape_attribute(value: str) -> str:
    """Escape character data for inclusion in a double-quoted attribute."""
    return "".join(_ATTRIBUTE_ESCAPES.get(character, character) for character in value)


def serialize_node(node: XMLNode, indent: int = 0, pretty: bool = True) -> str:
    """Serialize a single element subtree."""
    pad = "  " * indent if pretty else ""
    attributes = "".join(
        f' {name}="{escape_attribute(value)}"' for name, value in node.attributes.items()
    )
    if not node.children and node.text is None:
        return f"{pad}<{node.tag}{attributes}/>"
    if not node.children:
        return f"{pad}<{node.tag}{attributes}>{escape_text(node.text)}</{node.tag}>"
    lines: List[str] = [f"{pad}<{node.tag}{attributes}>"]
    if node.text:
        lines.append(f"{pad}  {escape_text(node.text)}" if pretty else escape_text(node.text))
    for child in node.children:
        lines.append(serialize_node(child, indent + 1, pretty))
    lines.append(f"{pad}</{node.tag}>")
    separator = "\n" if pretty else ""
    return separator.join(lines)


def serialize(document: XMLDocument, pretty: bool = True, declaration: bool = False) -> str:
    """Serialize a whole document; optionally prepend the XML declaration."""
    body = serialize_node(document.root, 0, pretty)
    if declaration:
        return '<?xml version="1.0"?>\n' + body
    return body
