"""A small hand-written XML parser producing :class:`XMLDocument` trees.

Only the XML subset needed for the MARS scenarios is supported: elements,
attributes (single or double quoted), character data and comments.  There
is no support for namespaces, processing instructions, DTD internal subsets
or entity definitions beyond the five predefined entities.  The parser is
deliberately strict: malformed input raises :class:`~repro.errors.ParseError`
with a position, which the tests rely on.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..errors import ParseError
from .model import XMLDocument, XMLNode

_PREDEFINED_ENTITIES = {
    "lt": "<",
    "gt": ">",
    "amp": "&",
    "apos": "'",
    "quot": '"',
}


def _decode_entities(text: str, position: int) -> str:
    if "&" not in text:
        return text
    output: List[str] = []
    index = 0
    while index < len(text):
        character = text[index]
        if character != "&":
            output.append(character)
            index += 1
            continue
        end = text.find(";", index)
        if end == -1:
            raise ParseError("unterminated entity reference", position + index)
        name = text[index + 1 : end]
        if name.startswith("#x") or name.startswith("#X"):
            output.append(chr(int(name[2:], 16)))
        elif name.startswith("#"):
            output.append(chr(int(name[1:])))
        elif name in _PREDEFINED_ENTITIES:
            output.append(_PREDEFINED_ENTITIES[name])
        else:
            raise ParseError(f"unknown entity &{name};", position + index)
        index = end + 1
    return "".join(output)


class _Parser:
    def __init__(self, source: str):
        self.source = source
        self.position = 0

    # -- low-level helpers ------------------------------------------------
    def _error(self, message: str) -> ParseError:
        return ParseError(message, self.position)

    def _peek(self, offset: int = 0) -> str:
        index = self.position + offset
        return self.source[index] if index < len(self.source) else ""

    def _skip_whitespace(self) -> None:
        while self.position < len(self.source) and self.source[self.position].isspace():
            self.position += 1

    def _expect(self, literal: str) -> None:
        if not self.source.startswith(literal, self.position):
            raise self._error(f"expected {literal!r}")
        self.position += len(literal)

    def _read_name(self) -> str:
        start = self.position
        while self.position < len(self.source) and (
            self.source[self.position].isalnum()
            or self.source[self.position] in "_-.:"
        ):
            self.position += 1
        if self.position == start:
            raise self._error("expected a name")
        return self.source[start : self.position]

    # -- grammar ----------------------------------------------------------
    def parse_document(self) -> XMLNode:
        self._skip_prolog()
        self._skip_whitespace()
        root = self.parse_element()
        self._skip_whitespace()
        self._skip_misc()
        if self.position != len(self.source):
            raise self._error("content after document root")
        return root

    def _skip_prolog(self) -> None:
        self._skip_whitespace()
        if self.source.startswith("<?xml", self.position):
            end = self.source.find("?>", self.position)
            if end == -1:
                raise self._error("unterminated XML declaration")
            self.position = end + 2
        self._skip_misc()

    def _skip_misc(self) -> None:
        while True:
            self._skip_whitespace()
            if self.source.startswith("<!--", self.position):
                end = self.source.find("-->", self.position)
                if end == -1:
                    raise self._error("unterminated comment")
                self.position = end + 3
            elif self.source.startswith("<!DOCTYPE", self.position):
                end = self.source.find(">", self.position)
                if end == -1:
                    raise self._error("unterminated DOCTYPE")
                self.position = end + 1
            else:
                return

    def parse_element(self) -> XMLNode:
        self._expect("<")
        tag = self._read_name()
        attributes = self._parse_attributes()
        self._skip_whitespace()
        if self._peek() == "/":
            self._expect("/>")
            return XMLNode(tag, attributes)
        self._expect(">")
        node = XMLNode(tag, attributes)
        text_parts: List[str] = []
        while True:
            if self.position >= len(self.source):
                raise self._error(f"unterminated element <{tag}>")
            if self.source.startswith("<!--", self.position):
                end = self.source.find("-->", self.position)
                if end == -1:
                    raise self._error("unterminated comment")
                self.position = end + 3
            elif self.source.startswith("</", self.position):
                self.position += 2
                closing = self._read_name()
                if closing != tag:
                    raise self._error(f"mismatched closing tag </{closing}> for <{tag}>")
                self._skip_whitespace()
                self._expect(">")
                break
            elif self._peek() == "<":
                node.append(self.parse_element())
            else:
                start = self.position
                next_tag = self.source.find("<", self.position)
                if next_tag == -1:
                    raise self._error(f"unterminated element <{tag}>")
                raw = self.source[start:next_tag]
                text_parts.append(_decode_entities(raw, start))
                self.position = next_tag
        text = "".join(text_parts).strip()
        node.text = text if text else None
        return node

    def _parse_attributes(self) -> Dict[str, str]:
        attributes: Dict[str, str] = {}
        while True:
            self._skip_whitespace()
            if self._peek() in (">", "/", ""):
                return attributes
            name = self._read_name()
            self._skip_whitespace()
            self._expect("=")
            self._skip_whitespace()
            quote = self._peek()
            if quote not in ("'", '"'):
                raise self._error("attribute value must be quoted")
            self.position += 1
            end = self.source.find(quote, self.position)
            if end == -1:
                raise self._error("unterminated attribute value")
            attributes[name] = _decode_entities(
                self.source[self.position : end], self.position
            )
            self.position = end + 1


def parse_xml(source: str, name: str = "document") -> XMLDocument:
    """Parse *source* into an :class:`XMLDocument` called *name*."""
    root = _Parser(source).parse_document()
    return XMLDocument(name, root)
