"""Lightweight DTD-like schema descriptions of XML documents.

Schema specialization (paper section 5) exploits *regularity* in document
structure: parts of a document that follow a fixed tree pattern can be
modelled as tuples of a virtual relation.  To discover such patterns
automatically (as hybrid inlining [31] / STORED [7] would), we need a
description of the document structure.  :class:`DocumentType` is a minimal
stand-in for a DTD or XML Schema: for every element name it records which
child elements may appear, whether they are repeated, optional, or exactly
one, and whether the element carries text or attributes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import SchemaError
from .model import XMLDocument, XMLNode


class Occurrence(Enum):
    """How many times a child element may appear under its parent."""

    ONE = "one"
    OPTIONAL = "optional"
    MANY = "many"


@dataclass
class ElementDecl:
    """Declaration of one element name."""

    name: str
    children: Dict[str, Occurrence] = field(default_factory=dict)
    has_text: bool = False
    attributes: Tuple[str, ...] = ()

    def child_occurrence(self, child: str) -> Optional[Occurrence]:
        return self.children.get(child)

    def single_children(self) -> List[str]:
        """Child names guaranteed to occur at most once (ONE or OPTIONAL)."""
        return [
            name
            for name, occurrence in self.children.items()
            if occurrence in (Occurrence.ONE, Occurrence.OPTIONAL)
        ]


class DocumentType:
    """A collection of element declarations with a designated root element."""

    def __init__(self, root: str):
        self.root = root
        self._elements: Dict[str, ElementDecl] = {}

    # ------------------------------------------------------------------
    def declare(
        self,
        name: str,
        children: Optional[Dict[str, Occurrence]] = None,
        has_text: bool = False,
        attributes: Sequence[str] = (),
    ) -> ElementDecl:
        if name in self._elements:
            raise SchemaError(f"element {name!r} already declared")
        declaration = ElementDecl(name, dict(children or {}), has_text, tuple(attributes))
        self._elements[name] = declaration
        return declaration

    def element(self, name: str) -> ElementDecl:
        try:
            return self._elements[name]
        except KeyError as error:
            raise SchemaError(f"unknown element {name!r}") from error

    def __contains__(self, name: str) -> bool:
        return name in self._elements

    @property
    def element_names(self) -> Tuple[str, ...]:
        return tuple(self._elements)

    # ------------------------------------------------------------------
    @classmethod
    def infer(cls, document: XMLDocument) -> "DocumentType":
        """Infer a document type from an instance document.

        A child name that appears more than once under some parent of a
        given tag is declared ``MANY``; a child that is present under every
        occurrence of the parent is ``ONE``; otherwise ``OPTIONAL``.  This is
        the same style of structure discovery STORED performs on instance
        data, and it is what the specialization experiments use to derive
        their mappings automatically.
        """
        instance_counts: Dict[str, List[Dict[str, int]]] = {}
        has_text: Dict[str, bool] = {}
        attributes: Dict[str, set] = {}
        for node in document.nodes():
            counts: Dict[str, int] = {}
            for child in node.children:
                counts[child.tag] = counts.get(child.tag, 0) + 1
            instance_counts.setdefault(node.tag, []).append(counts)
            has_text[node.tag] = has_text.get(node.tag, False) or bool(node.text)
            attributes.setdefault(node.tag, set()).update(node.attributes)

        document_type = cls(document.root.tag)
        for tag, per_instance in instance_counts.items():
            children: Dict[str, Occurrence] = {}
            child_names = set()
            for counts in per_instance:
                child_names.update(counts)
            for child in child_names:
                occurrences = [counts.get(child, 0) for counts in per_instance]
                if any(count > 1 for count in occurrences):
                    children[child] = Occurrence.MANY
                elif all(count == 1 for count in occurrences):
                    children[child] = Occurrence.ONE
                else:
                    children[child] = Occurrence.OPTIONAL
            document_type.declare(
                tag,
                children,
                has_text=has_text.get(tag, False),
                attributes=tuple(sorted(attributes.get(tag, ()))),
            )
        return document_type

    # ------------------------------------------------------------------
    def validate(self, document: XMLDocument) -> List[str]:
        """Return a list of violations of this type by *document* (empty if valid)."""
        problems: List[str] = []
        if document.root.tag != self.root:
            problems.append(
                f"root element is <{document.root.tag}>, expected <{self.root}>"
            )
        for node in document.nodes():
            if node.tag not in self:
                problems.append(f"undeclared element <{node.tag}>")
                continue
            declaration = self.element(node.tag)
            counts: Dict[str, int] = {}
            for child in node.children:
                counts[child.tag] = counts.get(child.tag, 0) + 1
                if child.tag not in declaration.children:
                    problems.append(
                        f"<{node.tag}> contains undeclared child <{child.tag}>"
                    )
            for child, occurrence in declaration.children.items():
                count = counts.get(child, 0)
                if occurrence is Occurrence.ONE and count != 1:
                    problems.append(
                        f"<{node.tag}> must contain exactly one <{child}>, found {count}"
                    )
                elif occurrence is Occurrence.OPTIONAL and count > 1:
                    problems.append(
                        f"<{node.tag}> may contain at most one <{child}>, found {count}"
                    )
        return problems
