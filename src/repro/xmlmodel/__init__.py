"""XML substrate: document model, parsing, serialization, XPath and DTDs."""

from .dtd import DocumentType, ElementDecl, Occurrence
from .model import XMLDocument, XMLNode, build_document
from .parser import parse_xml
from .serialize import serialize, serialize_node
from .xpath import Axis, NodeTestKind, Step, XPath, evaluate_xpath, parse_xpath

__all__ = [
    "Axis",
    "DocumentType",
    "ElementDecl",
    "NodeTestKind",
    "Occurrence",
    "Step",
    "XMLDocument",
    "XMLNode",
    "XPath",
    "build_document",
    "evaluate_xpath",
    "parse_xml",
    "parse_xpath",
    "serialize",
    "serialize_node",
]
