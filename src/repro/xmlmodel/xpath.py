"""A small XPath fragment: parsing, representation and evaluation.

MARS expresses navigation with XPath predicates inside XBind queries and
XICs (paper section 2.1).  The fragment supported here covers what the
paper's examples and experiments use:

* absolute paths (``/site/people``), descendant shortcuts (``//person``),
* relative paths starting at a context node (``./name/last``),
* name tests and the wildcard ``*``,
* ``text()`` steps and attribute steps (``@id``).

The compilation of a path into GReX atoms lives in
:mod:`repro.compile.xbind_compiler`; this module only knows how to parse a
path and how to evaluate it directly against an :class:`XMLDocument`, which
is what the naive (unreformulated) query execution uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterable, List, Optional, Sequence, Tuple, Union

from ..errors import ParseError
from .model import XMLDocument, XMLNode


class Axis(Enum):
    """The navigation axes of the supported fragment."""

    CHILD = "child"
    DESCENDANT = "descendant"


class NodeTestKind(Enum):
    """What a step selects once the axis has been traversed."""

    NAME = "name"
    WILDCARD = "wildcard"
    TEXT = "text"
    ATTRIBUTE = "attribute"


@dataclass(frozen=True)
class Step:
    """One step of a path: an axis plus a node test."""

    axis: Axis
    kind: NodeTestKind
    name: Optional[str] = None

    def __str__(self) -> str:
        prefix = "//" if self.axis is Axis.DESCENDANT else "/"
        if self.kind is NodeTestKind.TEXT:
            return f"{prefix}text()"
        if self.kind is NodeTestKind.ATTRIBUTE:
            return f"{prefix}@{self.name}"
        if self.kind is NodeTestKind.WILDCARD:
            return f"{prefix}*"
        return f"{prefix}{self.name}"


@dataclass(frozen=True)
class XPath:
    """A parsed path: absolute (from the document root) or relative."""

    steps: Tuple[Step, ...]
    absolute: bool

    def __str__(self) -> str:
        text = "".join(str(step) for step in self.steps)
        if self.absolute:
            return text if text else "/"
        return "." + text

    @property
    def returns_value(self) -> bool:
        """True when the path ends in ``text()`` or an attribute step."""
        if not self.steps:
            return False
        return self.steps[-1].kind in (NodeTestKind.TEXT, NodeTestKind.ATTRIBUTE)


def parse_xpath(source: str) -> XPath:
    """Parse *source* into an :class:`XPath`; raise :class:`ParseError` if invalid."""
    text = source.strip()
    if not text:
        raise ParseError("empty XPath expression")
    absolute = True
    if text.startswith("."):
        absolute = False
        text = text[1:]
    elif not text.startswith("/"):
        # A bare name such as ``author`` is a relative child step.
        absolute = False
        text = "/" + text
    steps: List[Step] = []
    position = 0
    while position < len(text):
        if text.startswith("//", position):
            axis = Axis.DESCENDANT
            position += 2
        elif text.startswith("/", position):
            axis = Axis.CHILD
            position += 1
        else:
            raise ParseError(f"expected '/' in XPath {source!r}", position)
        start = position
        while position < len(text) and text[position] != "/":
            position += 1
        token = text[start:position]
        if not token:
            raise ParseError(f"empty step in XPath {source!r}", start)
        if token == "text()":
            steps.append(Step(axis, NodeTestKind.TEXT))
        elif token == "*":
            steps.append(Step(axis, NodeTestKind.WILDCARD))
        elif token.startswith("@"):
            if len(token) == 1:
                raise ParseError(f"missing attribute name in XPath {source!r}", start)
            steps.append(Step(axis, NodeTestKind.ATTRIBUTE, token[1:]))
        else:
            if not all(ch.isalnum() or ch in "_-." for ch in token):
                raise ParseError(f"invalid step {token!r} in XPath {source!r}", start)
            steps.append(Step(axis, NodeTestKind.NAME, token))
    return XPath(tuple(steps), absolute)


PathResult = Union[XMLNode, str]


class _DocumentStart:
    """Sentinel context for absolute paths: the virtual document node.

    Its only child is the document's top element, and its descendants are
    all elements of the document.  This mirrors the GReX encoding, in which
    the ``root`` relation holds a virtual node above the top element.
    """

    def __init__(self, document: XMLDocument):
        self.document = document

    def children_nodes(self) -> List[XMLNode]:
        return [self.document.root]

    def descendant_nodes(self) -> List[XMLNode]:
        return [self.document.root] + list(self.document.root.descendants())


def evaluate_xpath(
    path: Union[XPath, str],
    document: XMLDocument,
    context: Optional[XMLNode] = None,
) -> List[PathResult]:
    """Evaluate *path* against *document* (or from *context* for relative paths).

    Returns element nodes, or strings for paths ending in ``text()`` or an
    attribute step.  Duplicates are removed while preserving document order,
    matching the set semantics of the relational compilation.  The
    descendant axis is *descendant-or-self*, consistent with the reflexive
    ``desc`` relation of GReX/TIX.
    """
    if isinstance(path, str):
        path = parse_xpath(path)
    if path.absolute or context is None:
        current: List[Union[PathResult, _DocumentStart]] = [_DocumentStart(document)]
    else:
        current = [context]
    for step in path.steps:
        current = _apply_step(step, current)
        if not current:
            return []
    return [item for item in current if not isinstance(item, _DocumentStart)]


def _axis_candidates(
    step: Step, node: Union[XMLNode, _DocumentStart]
) -> List[XMLNode]:
    if isinstance(node, _DocumentStart):
        if step.axis is Axis.CHILD:
            return node.children_nodes()
        return node.descendant_nodes()
    if step.axis is Axis.CHILD:
        return list(node.children)
    return list(node.descendants(include_self=True))


def _apply_step(
    step: Step, nodes: Sequence[Union[PathResult, _DocumentStart]]
) -> List[Union[PathResult, _DocumentStart]]:
    output: List[Union[PathResult, _DocumentStart]] = []
    seen: set = set()

    def emit(item: PathResult) -> None:
        key = id(item) if isinstance(item, XMLNode) else ("value", item)
        if key not in seen:
            seen.add(key)
            output.append(item)

    for node in nodes:
        if isinstance(node, str):
            continue  # cannot navigate past a text/attribute value
        if step.kind is NodeTestKind.TEXT:
            if step.axis is Axis.CHILD:
                if isinstance(node, XMLNode) and node.text is not None:
                    emit(node.text)
            else:
                for candidate in _axis_candidates(step, node):
                    if candidate.text is not None:
                        emit(candidate.text)
        elif step.kind is NodeTestKind.ATTRIBUTE:
            if step.axis is Axis.CHILD:
                if isinstance(node, XMLNode) and step.name in node.attributes:
                    emit(node.attributes[step.name])
            else:
                for candidate in _axis_candidates(step, node):
                    if step.name in candidate.attributes:
                        emit(candidate.attributes[step.name])
        elif step.kind is NodeTestKind.WILDCARD:
            for candidate in _axis_candidates(step, node):
                emit(candidate)
        else:
            for candidate in _axis_candidates(step, node):
                if candidate.tag == step.name:
                    emit(candidate)
    return output
