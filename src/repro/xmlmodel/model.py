"""The XML document model used throughout the reproduction.

MARS treats XML documents as ordered, labelled trees whose nodes carry a
tag, optional attributes, optional text content and a node identity.  The
GReX relational encoding (``root``, ``el``, ``child``, ``desc``, ``tag``,
``attr``, ``id``, ``text``) is a direct image of this model; the
:meth:`XMLDocument.grex_facts` method materialises that encoding, which is
used both by the tests (to validate the compilation) and by the naive XBind
evaluator.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..errors import SchemaError


class XMLNode:
    """An element node of an XML tree."""

    __slots__ = ("tag", "attributes", "text", "children", "parent", "node_id")

    def __init__(
        self,
        tag: str,
        attributes: Optional[Dict[str, str]] = None,
        text: Optional[str] = None,
    ):
        self.tag = tag
        self.attributes: Dict[str, str] = dict(attributes or {})
        self.text = text
        self.children: List["XMLNode"] = []
        self.parent: Optional["XMLNode"] = None
        self.node_id: Optional[str] = None

    # ------------------------------------------------------------------
    def append(self, child: "XMLNode") -> "XMLNode":
        """Attach *child* as the last child of this node and return it."""
        child.parent = self
        self.children.append(child)
        return child

    def add(self, tag: str, text: Optional[str] = None, **attributes: str) -> "XMLNode":
        """Create a child element, attach it and return it."""
        return self.append(XMLNode(tag, attributes or None, text))

    # ------------------------------------------------------------------
    def descendants(self, include_self: bool = False) -> Iterator["XMLNode"]:
        """Yield descendants in document order."""
        if include_self:
            yield self
        for child in self.children:
            yield child
            yield from child.descendants()

    def ancestors(self, include_self: bool = False) -> Iterator["XMLNode"]:
        node = self if include_self else self.parent
        while node is not None:
            yield node
            node = node.parent

    def find_all(self, tag: str) -> List["XMLNode"]:
        """All descendants (not self) with the given tag, in document order."""
        return [node for node in self.descendants() if node.tag == tag]

    def child_elements(self, tag: Optional[str] = None) -> List["XMLNode"]:
        if tag is None:
            return list(self.children)
        return [child for child in self.children if child.tag == tag]

    def text_content(self) -> str:
        """The concatenation of this node's text and its descendants' text."""
        parts = [self.text] if self.text else []
        for child in self.children:
            parts.append(child.text_content())
        return "".join(part for part in parts if part)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.tag} id={self.node_id}>"


class XMLDocument:
    """A document: a name plus a root element, with stable node identities."""

    def __init__(self, name: str, root: Optional[XMLNode] = None):
        self.name = name
        self.root = root if root is not None else XMLNode("root")
        self._assign_ids()

    # ------------------------------------------------------------------
    def _assign_ids(self) -> None:
        counter = itertools.count()
        for node in self.nodes():
            node.node_id = f"{self.name}#{next(counter)}"

    def refresh_ids(self) -> None:
        """Re-assign node identities after structural modifications."""
        self._assign_ids()

    def nodes(self) -> Iterator[XMLNode]:
        """All element nodes of the document in document order (root first)."""
        yield self.root
        yield from self.root.descendants()

    def node_count(self) -> int:
        return sum(1 for _ in self.nodes())

    def find_all(self, tag: str) -> List[XMLNode]:
        """All elements with the given tag, including possibly the root."""
        return [node for node in self.nodes() if node.tag == tag]

    # ------------------------------------------------------------------
    @property
    def document_node_id(self) -> str:
        """Identity of the virtual document node sitting above the root element."""
        return f"{self.name}#doc"

    def grex_facts(self) -> Dict[str, List[Tuple[object, ...]]]:
        """The GReX relational encoding of the document.

        Returns a mapping from (unsuffixed) GReX relation names to lists of
        tuples; node identities are the ``node_id`` strings.  The ``root``
        relation holds a *virtual document node* whose only child is the top
        element, so that absolute paths such as ``/site`` select the top
        element itself.  ``desc`` is the reflexive-transitive closure of
        ``child``, matching the TIX axioms.
        """
        facts: Dict[str, List[Tuple[object, ...]]] = {
            "root": [],
            "el": [],
            "child": [],
            "desc": [],
            "tag": [],
            "attr": [],
            "id": [],
            "text": [],
        }
        document_node = self.document_node_id
        facts["root"].append((document_node,))
        facts["child"].append((document_node, self.root.node_id))
        facts["desc"].append((document_node, document_node))
        for node in self.nodes():
            facts["desc"].append((document_node, node.node_id))
            facts["el"].append((node.node_id,))
            facts["tag"].append((node.node_id, node.tag))
            facts["id"].append((node.node_id, node.node_id))
            if node.text is not None:
                facts["text"].append((node.node_id, node.text))
            for attribute, value in node.attributes.items():
                facts["attr"].append((node.node_id, attribute, value))
            for child in node.children:
                facts["child"].append((node.node_id, child.node_id))
            facts["desc"].append((node.node_id, node.node_id))
            for descendant in node.descendants():
                facts["desc"].append((node.node_id, descendant.node_id))
        return facts

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"XMLDocument({self.name!r}, {self.node_count()} nodes)"


def build_document(name: str, spec: object) -> XMLDocument:
    """Build a document from a nested-structure specification.

    The specification format is a tuple ``(tag, attrs, text, children)`` where
    ``attrs`` is a dict, ``text`` a string or None and ``children`` a list of
    specifications; shorter tuples are allowed (``(tag,)``, ``(tag, text)``,
    ``(tag, attrs, children)``...).  This keeps test fixtures and synthetic
    workload generators compact.
    """

    def build_node(node_spec: object) -> XMLNode:
        if isinstance(node_spec, XMLNode):
            return node_spec
        if isinstance(node_spec, str):
            return XMLNode(node_spec)
        if not isinstance(node_spec, (tuple, list)) or not node_spec:
            raise SchemaError(f"invalid document specification fragment: {node_spec!r}")
        tag = node_spec[0]
        attributes: Dict[str, str] = {}
        text: Optional[str] = None
        children: Sequence[object] = ()
        for part in node_spec[1:]:
            if isinstance(part, dict):
                attributes = part
            elif isinstance(part, str):
                text = part
            elif isinstance(part, (tuple, list)):
                children = part
            elif part is None:
                continue
            else:
                raise SchemaError(f"invalid document specification part: {part!r}")
        node = XMLNode(tag, attributes or None, text)
        for child_spec in children:
            node.append(build_node(child_spec))
        return node

    return XMLDocument(name, build_node(spec))
