"""repro: a reproduction of MARS (Deutsch & Tannen, VLDB 2003).

MARS publishes XML views of mixed (relational + XML) and redundant
proprietary storage and reformulates client XQueries/XBind queries against
the proprietary schema using the Chase & Backchase algorithm over a
relational compilation of queries, views and constraints.

Public entry points
-------------------
:class:`repro.core.MarsConfiguration`
    Declare public/proprietary schemas, views, constraints and data.
:class:`repro.core.MarsSystem`
    Reformulate XBind queries against the proprietary schema.
:class:`repro.core.MarsExecutor`
    Execute original and reformulated queries on instance data.
:class:`repro.engine.CBEngine`
    The underlying Chase & Backchase engine, usable on purely relational
    reformulation problems as well.
:class:`repro.serve.PublishingService`
    Thread-safe concurrent serving: plan cache + pooled backend connections.
:class:`repro.cost.CostModel` / :class:`repro.cost.StatisticsCatalog`
    Statistics-driven plan ranking and shard-routing cost comparisons.
"""

from .core import MarsConfiguration, MarsExecutor, MarsReformulation, MarsSystem
from .cost import CostModel, StatisticsCatalog
from .errors import (
    ChaseError,
    CompilationError,
    EvaluationError,
    MarsError,
    ParseError,
    ReformulationError,
    SchemaError,
    SpecializationError,
    StorageError,
)
from .serve import ConnectionPool, PlanCache, PoolExhaustedError, PublishingService
from .shard import ShardedBackend

__version__ = "1.0.0"

__all__ = [
    "ChaseError",
    "CompilationError",
    "ConnectionPool",
    "CostModel",
    "EvaluationError",
    "MarsConfiguration",
    "MarsError",
    "MarsExecutor",
    "MarsReformulation",
    "MarsSystem",
    "ParseError",
    "PlanCache",
    "PoolExhaustedError",
    "PublishingService",
    "ReformulationError",
    "SchemaError",
    "ShardedBackend",
    "SpecializationError",
    "StatisticsCatalog",
    "StorageError",
    "__version__",
]
