"""Terms of the relational logical framework: variables and constants.

The chase, backchase and containment machinery all manipulate *terms*.  A
term is either a :class:`Variable` or a :class:`Constant`.  Both are
immutable and hashable so they can be used freely as dictionary keys and
set members, which the homomorphism-finding code relies on heavily.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Union


@dataclass(frozen=True, order=True)
class Variable:
    """A logical variable, identified by its name."""

    name: str

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"?{self.name}"

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, order=True)
class Constant:
    """A constant value (string or number) appearing in a query or tuple."""

    value: Union[str, int, float]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"'{self.value}'"

    def __str__(self) -> str:
        return str(self.value)


Term = Union[Variable, Constant]


def is_variable(term: Term) -> bool:
    """Return ``True`` when *term* is a :class:`Variable`."""
    return isinstance(term, Variable)


def is_constant(term: Term) -> bool:
    """Return ``True`` when *term* is a :class:`Constant`."""
    return isinstance(term, Constant)


def term(value: Union[Term, str, int, float]) -> Term:
    """Coerce *value* into a term.

    Strings are treated as variable names; to build a string constant use
    :class:`Constant` explicitly or :func:`const`.
    """
    if isinstance(value, (Variable, Constant)):
        return value
    if isinstance(value, str):
        return Variable(value)
    return Constant(value)


def var(name: str) -> Variable:
    """Convenience constructor for a variable."""
    return Variable(name)


def const(value: Union[str, int, float]) -> Constant:
    """Convenience constructor for a constant."""
    return Constant(value)


class VariableFactory:
    """Generates globally fresh variables.

    The chase introduces existentially quantified variables whose names must
    not clash with any variable already present in the query being chased.
    A :class:`VariableFactory` hands out names with a fixed prefix and a
    monotonically increasing counter; the caller seeds it with the names
    already in use.
    """

    def __init__(self, prefix: str = "_v", used: Iterable[str] = ()):
        self._prefix = prefix
        self._used = set(used)
        self._counter = itertools.count()

    def reserve(self, names: Iterable[str]) -> None:
        """Mark *names* as already in use."""
        self._used.update(names)

    def fresh(self, hint: str = "") -> Variable:
        """Return a variable whose name has never been handed out before."""
        while True:
            index = next(self._counter)
            name = f"{self._prefix}{hint}{index}"
            if name not in self._used:
                self._used.add(name)
                return Variable(name)
