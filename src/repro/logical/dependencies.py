"""Disjunctive embedded dependencies (DEDs).

A DED has the shape::

    forall x1..xn  premise(x...)  ->  OR_j  exists y_j  conclusion_j(x..., y_j...)

where ``premise`` is a conjunction of relational/equality/inequality atoms
and each ``conclusion_j`` (a :class:`Disjunct`) is a conjunction of
relational and equality atoms over the universal variables plus fresh
existential variables.  Classical embedded dependencies are the special
case with a single disjunct; tuple-generating and equality-generating
dependencies are both representable.

DEDs are the common currency of MARS: compiled views, compiled XML
integrity constraints and the built-in TIX axioms are all DEDs over GReX.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Sequence, Tuple

from ..errors import SchemaError
from .atoms import (
    Atom,
    EqualityAtom,
    RelationalAtom,
    atom_variables,
)
from .terms import Term, Variable, VariableFactory


@dataclass(frozen=True)
class Disjunct:
    """One disjunct of a DED conclusion: optional existential variables + atoms."""

    atoms: Tuple[Atom, ...]

    def __init__(self, atoms: Sequence[Atom]):
        object.__setattr__(self, "atoms", tuple(atoms))

    def variables(self) -> Tuple[Variable, ...]:
        return atom_variables(self.atoms)

    def relational_atoms(self) -> Tuple[RelationalAtom, ...]:
        return tuple(a for a in self.atoms if isinstance(a, RelationalAtom))

    def equalities(self) -> Tuple[EqualityAtom, ...]:
        return tuple(a for a in self.atoms if isinstance(a, EqualityAtom))

    def substitute(self, mapping: Mapping[Term, Term]) -> "Disjunct":
        return Disjunct(tuple(a.substitute(mapping) for a in self.atoms))

    def __str__(self) -> str:
        return " & ".join(str(a) for a in self.atoms)


@dataclass(frozen=True)
class DED:
    """A disjunctive embedded dependency ``premise -> d1 | d2 | ...``.

    The universal variables are exactly the variables of the premise; any
    other variable occurring in a disjunct is existentially quantified in
    that disjunct.
    """

    name: str
    premise: Tuple[Atom, ...]
    disjuncts: Tuple[Disjunct, ...]

    def __init__(self, name: str, premise: Sequence[Atom], disjuncts: Sequence[Disjunct]):
        premise = tuple(premise)
        disjuncts = tuple(disjuncts)
        if not premise:
            raise SchemaError(f"DED {name}: empty premise")
        if not disjuncts:
            raise SchemaError(f"DED {name}: needs at least one disjunct")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "premise", premise)
        object.__setattr__(self, "disjuncts", disjuncts)

    # ------------------------------------------------------------------
    @property
    def is_disjunctive(self) -> bool:
        return len(self.disjuncts) > 1

    @property
    def is_egd(self) -> bool:
        """True when every disjunct consists only of equality atoms."""
        return all(
            all(isinstance(a, EqualityAtom) for a in d.atoms) for d in self.disjuncts
        )

    @property
    def is_full(self) -> bool:
        """True when no disjunct introduces existential variables."""
        universal = set(self.universal_variables())
        for disjunct in self.disjuncts:
            for variable in disjunct.variables():
                if variable not in universal:
                    return False
        return True

    def universal_variables(self) -> Tuple[Variable, ...]:
        return atom_variables(self.premise)

    def existential_variables(self) -> Tuple[Variable, ...]:
        universal = set(self.universal_variables())
        seen: Dict[Variable, None] = {}
        for disjunct in self.disjuncts:
            for variable in disjunct.variables():
                if variable not in universal:
                    seen.setdefault(variable, None)
        return tuple(seen)

    def premise_relational_atoms(self) -> Tuple[RelationalAtom, ...]:
        return tuple(a for a in self.premise if isinstance(a, RelationalAtom))

    def relation_names(self) -> frozenset:
        names = {a.relation for a in self.premise_relational_atoms()}
        for disjunct in self.disjuncts:
            names.update(a.relation for a in disjunct.relational_atoms())
        return frozenset(names)

    # ------------------------------------------------------------------
    def rename_existentials(self, factory: VariableFactory) -> "DED":
        """Rename existential variables with fresh ones from *factory*."""
        mapping: Dict[Term, Term] = {
            variable: factory.fresh() for variable in self.existential_variables()
        }
        if not mapping:
            return self
        return DED(
            self.name,
            self.premise,
            tuple(d.substitute(mapping) for d in self.disjuncts),
        )

    def __str__(self) -> str:
        premise_text = " & ".join(str(a) for a in self.premise)
        conclusion_text = " | ".join(f"({d})" for d in self.disjuncts)
        return f"[{self.name}] {premise_text} -> {conclusion_text}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return str(self)


def tgd(name: str, premise: Sequence[Atom], conclusion: Sequence[Atom]) -> DED:
    """Build a (non-disjunctive) tuple-generating dependency."""
    return DED(name, premise, [Disjunct(conclusion)])


def egd(name: str, premise: Sequence[Atom], left: Term, right: Term) -> DED:
    """Build an equality-generating dependency ``premise -> left = right``."""
    return DED(name, premise, [Disjunct([EqualityAtom(left, right)])])


def view_inclusion_dependencies(
    view_name: str,
    head: Sequence[Variable],
    body: Sequence[Atom],
) -> Tuple[DED, DED]:
    """The two DEDs modelling a conjunctive-query view (paper section 2.3).

    ``cV``: the defining query's result is contained in the view relation.
    ``bV``: every view tuple is witnessed by the defining query's body.
    """
    head = tuple(head)
    view_atom = RelationalAtom(view_name, head)
    containment = tgd(f"c_{view_name}", body, [view_atom])
    backward = tgd(f"b_{view_name}", [view_atom], list(body))
    return containment, backward


def dependencies_relation_names(dependencies: Iterable[DED]) -> frozenset:
    """The set of relation names mentioned by any dependency in the collection."""
    names = set()
    for dependency in dependencies:
        names.update(dependency.relation_names())
    return frozenset(names)
