"""Atoms of the relational logical framework.

Three kinds of atoms appear in conjunctive queries and dependencies:

* :class:`RelationalAtom` -- ``R(t1, ..., tk)`` over a named relation,
* :class:`EqualityAtom` -- ``t1 = t2``,
* :class:`InequalityAtom` -- ``t1 != t2``.

All atoms are immutable and hashable, and support substitution of terms,
which is the single operation the chase performs on them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping, Sequence, Tuple, Union

from .terms import Constant, Term, Variable, is_variable


@dataclass(frozen=True)
class RelationalAtom:
    """An atom ``relation(terms...)`` in a query body or dependency."""

    relation: str
    terms: Tuple[Term, ...]

    def __init__(self, relation: str, terms: Sequence[Term]):
        object.__setattr__(self, "relation", relation)
        object.__setattr__(self, "terms", tuple(terms))

    @property
    def arity(self) -> int:
        return len(self.terms)

    def variables(self) -> Iterator[Variable]:
        """Yield the variables occurring in the atom (with repetitions)."""
        for item in self.terms:
            if is_variable(item):
                yield item

    def constants(self) -> Iterator[Constant]:
        """Yield the constants occurring in the atom (with repetitions)."""
        for item in self.terms:
            if not is_variable(item):
                yield item

    def substitute(self, mapping: Mapping[Term, Term]) -> "RelationalAtom":
        """Return a copy with every term replaced according to *mapping*."""
        return RelationalAtom(
            self.relation, tuple(mapping.get(item, item) for item in self.terms)
        )

    def __str__(self) -> str:
        args = ", ".join(str(item) for item in self.terms)
        return f"{self.relation}({args})"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return str(self)


@dataclass(frozen=True)
class EqualityAtom:
    """An equality ``left = right`` between two terms."""

    left: Term
    right: Term

    def variables(self) -> Iterator[Variable]:
        for item in (self.left, self.right):
            if is_variable(item):
                yield item

    def substitute(self, mapping: Mapping[Term, Term]) -> "EqualityAtom":
        return EqualityAtom(
            mapping.get(self.left, self.left), mapping.get(self.right, self.right)
        )

    def is_trivial(self) -> bool:
        """Return ``True`` when both sides are syntactically identical."""
        return self.left == self.right

    def __str__(self) -> str:
        return f"{self.left} = {self.right}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return str(self)


@dataclass(frozen=True)
class InequalityAtom:
    """A non-equality ``left != right`` between two terms."""

    left: Term
    right: Term

    def variables(self) -> Iterator[Variable]:
        for item in (self.left, self.right):
            if is_variable(item):
                yield item

    def substitute(self, mapping: Mapping[Term, Term]) -> "InequalityAtom":
        return InequalityAtom(
            mapping.get(self.left, self.left), mapping.get(self.right, self.right)
        )

    def __str__(self) -> str:
        return f"{self.left} != {self.right}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return str(self)


Atom = Union[RelationalAtom, EqualityAtom, InequalityAtom]


def atom_variables(atoms: Sequence[Atom]) -> Tuple[Variable, ...]:
    """Return the variables of *atoms* in first-occurrence order, de-duplicated."""
    seen = {}
    for item in atoms:
        for variable in item.variables():
            seen.setdefault(variable, None)
    return tuple(seen)


def relational_atoms(atoms: Sequence[Atom]) -> Tuple[RelationalAtom, ...]:
    """Return only the relational atoms of *atoms*, preserving order."""
    return tuple(item for item in atoms if isinstance(item, RelationalAtom))


def equality_atoms(atoms: Sequence[Atom]) -> Tuple[EqualityAtom, ...]:
    """Return only the equality atoms of *atoms*, preserving order."""
    return tuple(item for item in atoms if isinstance(item, EqualityAtom))


def inequality_atoms(atoms: Sequence[Atom]) -> Tuple[InequalityAtom, ...]:
    """Return only the inequality atoms of *atoms*, preserving order."""
    return tuple(item for item in atoms if isinstance(item, InequalityAtom))
