"""Relational logical framework: terms, atoms, queries, dependencies, schemas."""

from .atoms import (
    Atom,
    EqualityAtom,
    InequalityAtom,
    RelationalAtom,
    atom_variables,
    equality_atoms,
    inequality_atoms,
    relational_atoms,
)
from .dependencies import DED, Disjunct, egd, tgd, view_inclusion_dependencies
from .queries import ConjunctiveQuery, UnionQuery, make_query
from .schema import ForeignKey, Key, Relation, RelationalSchema
from .terms import Constant, Term, Variable, VariableFactory, const, is_constant, is_variable, var

__all__ = [
    "Atom",
    "Constant",
    "ConjunctiveQuery",
    "DED",
    "Disjunct",
    "EqualityAtom",
    "ForeignKey",
    "InequalityAtom",
    "Key",
    "Relation",
    "RelationalAtom",
    "RelationalSchema",
    "Term",
    "UnionQuery",
    "Variable",
    "VariableFactory",
    "atom_variables",
    "const",
    "egd",
    "equality_atoms",
    "inequality_atoms",
    "is_constant",
    "is_variable",
    "make_query",
    "relational_atoms",
    "tgd",
    "var",
    "view_inclusion_dependencies",
]
