"""Relational schema declarations.

A :class:`RelationalSchema` is a named collection of :class:`Relation`
declarations plus integrity constraints (keys and foreign keys, which are
also exported as DEDs so that the chase can use them).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import SchemaError
from .atoms import EqualityAtom, RelationalAtom
from .dependencies import DED, Disjunct, egd, tgd
from .terms import Variable


@dataclass(frozen=True)
class Relation:
    """A relation declaration: a name and an ordered tuple of attribute names."""

    name: str
    attributes: Tuple[str, ...]

    def __init__(self, name: str, attributes: Sequence[str]):
        attributes = tuple(attributes)
        if len(set(attributes)) != len(attributes):
            raise SchemaError(f"relation {name}: duplicate attribute names")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "attributes", attributes)

    @property
    def arity(self) -> int:
        return len(self.attributes)

    def position(self, attribute: str) -> int:
        """Return the index of *attribute*, raising :class:`SchemaError` if absent."""
        try:
            return self.attributes.index(attribute)
        except ValueError as error:
            raise SchemaError(
                f"relation {self.name} has no attribute {attribute!r}"
            ) from error

    def atom(self, prefix: str = "") -> RelationalAtom:
        """A canonical atom over fresh variables named after the attributes."""
        return RelationalAtom(
            self.name, tuple(Variable(f"{prefix}{a}") for a in self.attributes)
        )

    def __str__(self) -> str:
        return f"{self.name}({', '.join(self.attributes)})"


@dataclass(frozen=True)
class Key:
    """A key constraint: *attributes* functionally determine the whole tuple."""

    relation: str
    attributes: Tuple[str, ...]

    def __init__(self, relation: str, attributes: Sequence[str]):
        object.__setattr__(self, "relation", relation)
        object.__setattr__(self, "attributes", tuple(attributes))


@dataclass(frozen=True)
class ForeignKey:
    """A foreign key from ``source.source_attributes`` to ``target.target_attributes``."""

    source: str
    source_attributes: Tuple[str, ...]
    target: str
    target_attributes: Tuple[str, ...]

    def __init__(
        self,
        source: str,
        source_attributes: Sequence[str],
        target: str,
        target_attributes: Sequence[str],
    ):
        source_attributes = tuple(source_attributes)
        target_attributes = tuple(target_attributes)
        if len(source_attributes) != len(target_attributes):
            raise SchemaError("foreign key: attribute lists must have the same length")
        object.__setattr__(self, "source", source)
        object.__setattr__(self, "source_attributes", source_attributes)
        object.__setattr__(self, "target", target)
        object.__setattr__(self, "target_attributes", target_attributes)


class RelationalSchema:
    """A collection of relations, keys and foreign keys."""

    def __init__(self, name: str = "schema"):
        self.name = name
        self._relations: Dict[str, Relation] = {}
        self._keys: List[Key] = []
        self._foreign_keys: List[ForeignKey] = []

    # ------------------------------------------------------------------
    # Declarations
    # ------------------------------------------------------------------
    def add_relation(self, name: str, attributes: Sequence[str]) -> Relation:
        if name in self._relations:
            raise SchemaError(f"relation {name} already declared")
        relation = Relation(name, attributes)
        self._relations[name] = relation
        return relation

    def add_key(self, relation: str, attributes: Sequence[str]) -> Key:
        self.relation(relation)  # validate existence
        key = Key(relation, attributes)
        self._keys.append(key)
        return key

    def add_foreign_key(
        self,
        source: str,
        source_attributes: Sequence[str],
        target: str,
        target_attributes: Sequence[str],
    ) -> ForeignKey:
        self.relation(source)
        self.relation(target)
        foreign_key = ForeignKey(source, source_attributes, target, target_attributes)
        self._foreign_keys.append(foreign_key)
        return foreign_key

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def relation(self, name: str) -> Relation:
        try:
            return self._relations[name]
        except KeyError as error:
            raise SchemaError(f"unknown relation {name!r} in schema {self.name}") from error

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    @property
    def relations(self) -> Tuple[Relation, ...]:
        return tuple(self._relations.values())

    @property
    def relation_names(self) -> Tuple[str, ...]:
        return tuple(self._relations)

    @property
    def keys(self) -> Tuple[Key, ...]:
        return tuple(self._keys)

    @property
    def foreign_keys(self) -> Tuple[ForeignKey, ...]:
        return tuple(self._foreign_keys)

    # ------------------------------------------------------------------
    # Constraint export
    # ------------------------------------------------------------------
    def key_dependencies(self) -> List[DED]:
        """Export key constraints as equality-generating dependencies."""
        dependencies: List[DED] = []
        for index, key in enumerate(self._keys):
            relation = self.relation(key.relation)
            left_vars = [Variable(f"k{index}_l_{a}") for a in relation.attributes]
            right_vars = [Variable(f"k{index}_r_{a}") for a in relation.attributes]
            for attribute in key.attributes:
                position = relation.position(attribute)
                right_vars[position] = left_vars[position]
            premise = [
                RelationalAtom(relation.name, left_vars),
                RelationalAtom(relation.name, right_vars),
            ]
            equalities = [
                EqualityAtom(left_vars[i], right_vars[i])
                for i, attribute in enumerate(relation.attributes)
                if attribute not in key.attributes
            ]
            if not equalities:
                continue
            dependencies.append(
                DED(f"key_{relation.name}_{index}", premise, [Disjunct(equalities)])
            )
        return dependencies

    def foreign_key_dependencies(self) -> List[DED]:
        """Export foreign keys as inclusion (tuple-generating) dependencies."""
        dependencies: List[DED] = []
        for index, foreign_key in enumerate(self._foreign_keys):
            source = self.relation(foreign_key.source)
            target = self.relation(foreign_key.target)
            source_vars = [Variable(f"f{index}_s_{a}") for a in source.attributes]
            target_vars = [Variable(f"f{index}_t_{a}") for a in target.attributes]
            for src_attr, tgt_attr in zip(
                foreign_key.source_attributes, foreign_key.target_attributes
            ):
                target_vars[target.position(tgt_attr)] = source_vars[
                    source.position(src_attr)
                ]
            dependency = tgd(
                f"fk_{source.name}_{target.name}_{index}",
                [RelationalAtom(source.name, source_vars)],
                [RelationalAtom(target.name, target_vars)],
            )
            dependencies.append(dependency)
        return dependencies

    def dependencies(self) -> List[DED]:
        """All constraints of the schema as DEDs."""
        return self.key_dependencies() + self.foreign_key_dependencies()

    def __str__(self) -> str:
        return f"schema {self.name}: " + ", ".join(str(r) for r in self.relations)
