"""Conjunctive queries and unions of conjunctive queries.

A :class:`ConjunctiveQuery` is the workhorse object of the whole system: the
compilation of XBind queries produces one, the chase rewrites one, the
backchase enumerates subqueries of one, and the in-memory engine evaluates
one against a database.

Queries are immutable; every transformation returns a new object.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Sequence, Tuple

from ..errors import SchemaError
from .atoms import (
    Atom,
    EqualityAtom,
    InequalityAtom,
    RelationalAtom,
    atom_variables,
    relational_atoms,
)
from .terms import Constant, Term, Variable, VariableFactory, is_variable


@dataclass(frozen=True)
class ConjunctiveQuery:
    """A conjunctive query ``name(head) :- body`` with optional inequalities.

    ``head`` is a tuple of terms (usually variables, constants allowed).
    ``body`` may contain relational, equality and inequality atoms.  The
    query is *safe* when every head variable occurs in some relational atom
    of the body or is equated (transitively) to one that does.
    """

    name: str
    head: Tuple[Term, ...]
    body: Tuple[Atom, ...]

    def __init__(self, name: str, head: Sequence[Term], body: Sequence[Atom]):
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "head", tuple(head))
        object.__setattr__(self, "body", tuple(body))

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def relational_body(self) -> Tuple[RelationalAtom, ...]:
        """The relational atoms of the body, in order."""
        return relational_atoms(self.body)

    @property
    def equalities(self) -> Tuple[EqualityAtom, ...]:
        return tuple(a for a in self.body if isinstance(a, EqualityAtom))

    @property
    def inequalities(self) -> Tuple[InequalityAtom, ...]:
        return tuple(a for a in self.body if isinstance(a, InequalityAtom))

    def head_variables(self) -> Tuple[Variable, ...]:
        """Head terms that are variables, de-duplicated, in order."""
        seen: Dict[Variable, None] = {}
        for item in self.head:
            if is_variable(item):
                seen.setdefault(item, None)
        return tuple(seen)

    def variables(self) -> Tuple[Variable, ...]:
        """All variables of the query (head first, then body), de-duplicated."""
        seen: Dict[Variable, None] = {}
        for item in self.head:
            if is_variable(item):
                seen.setdefault(item, None)
        for variable in atom_variables(self.body):
            seen.setdefault(variable, None)
        return tuple(seen)

    def body_variables(self) -> Tuple[Variable, ...]:
        return atom_variables(self.body)

    def existential_variables(self) -> Tuple[Variable, ...]:
        """Body variables that do not occur in the head."""
        head_vars = set(self.head_variables())
        return tuple(v for v in self.body_variables() if v not in head_vars)

    def constants(self) -> Tuple[Constant, ...]:
        seen: Dict[Constant, None] = {}
        for item in self.head:
            if not is_variable(item):
                seen.setdefault(item, None)
        for atom in self.relational_body:
            for value in atom.constants():
                seen.setdefault(value, None)
        return tuple(seen)

    def relation_names(self) -> FrozenSet[str]:
        """The set of relation names mentioned in the body."""
        return frozenset(a.relation for a in self.relational_body)

    def is_safe(self) -> bool:
        """Check range-restriction: every head variable appears in the body."""
        body_vars = set(self.body_variables())
        return all(v in body_vars for v in self.head_variables())

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def substitute(self, mapping: Mapping[Term, Term]) -> "ConjunctiveQuery":
        """Apply *mapping* to head and body, dropping trivial equalities."""
        new_head = tuple(mapping.get(item, item) for item in self.head)
        new_body = []
        for atom in self.body:
            replaced = atom.substitute(mapping)
            if isinstance(replaced, EqualityAtom) and replaced.is_trivial():
                continue
            new_body.append(replaced)
        return ConjunctiveQuery(self.name, new_head, new_body)

    def with_body(self, body: Sequence[Atom]) -> "ConjunctiveQuery":
        """Return a copy with the body replaced (same name and head)."""
        return ConjunctiveQuery(self.name, self.head, body)

    def with_name(self, name: str) -> "ConjunctiveQuery":
        return ConjunctiveQuery(name, self.head, self.body)

    def add_atoms(self, atoms: Iterable[Atom]) -> "ConjunctiveQuery":
        """Return a copy with *atoms* appended to the body (duplicates skipped)."""
        existing = set(self.body)
        new_body = list(self.body)
        for atom in atoms:
            if atom not in existing:
                new_body.append(atom)
                existing.add(atom)
        return ConjunctiveQuery(self.name, self.head, new_body)

    def dedupe(self) -> "ConjunctiveQuery":
        """Remove duplicate body atoms while preserving first-occurrence order."""
        seen = set()
        new_body = []
        for atom in self.body:
            if atom not in seen:
                new_body.append(atom)
                seen.add(atom)
        return ConjunctiveQuery(self.name, self.head, new_body)

    def subquery(self, atoms: Sequence[RelationalAtom]) -> "ConjunctiveQuery":
        """The subquery induced by *atoms*: same head, body restricted to them.

        Inequality atoms whose variables are still covered are retained, as
        they only filter results and are required for equivalence with the
        original query.
        """
        kept = set(atoms)
        covered = set(atom_variables(tuple(atoms)))
        new_body = []
        for atom in self.body:
            if isinstance(atom, RelationalAtom):
                if atom in kept:
                    new_body.append(atom)
            else:
                if all(v in covered for v in atom.variables()):
                    new_body.append(atom)
        return ConjunctiveQuery(self.name, self.head, new_body)

    def rename_apart(
        self, factory: Optional[VariableFactory] = None, avoid: Iterable[str] = ()
    ) -> Tuple["ConjunctiveQuery", Dict[Variable, Variable]]:
        """Rename all variables to fresh ones; return the query and the mapping."""
        if factory is None:
            factory = VariableFactory(prefix="_r", used=avoid)
        mapping: Dict[Variable, Variable] = {}
        for variable in self.variables():
            mapping[variable] = factory.fresh()
        renamed = self.substitute(mapping)
        return renamed, mapping

    def normalize_equalities(self) -> "ConjunctiveQuery":
        """Eliminate equality atoms by collapsing variables.

        Variables equated to constants become that constant; variables
        equated to variables are merged into a single representative.  An
        equality between two distinct constants makes the query
        unsatisfiable; in that case a query with an always-false body marker
        is *not* produced -- instead a :class:`SchemaError` is raised, since
        the compilation never generates such queries.
        """
        parent: Dict[Term, Term] = {}

        def find(item: Term) -> Term:
            root = item
            while parent.get(root, root) != root:
                root = parent[root]
            while parent.get(item, item) != item:
                parent[item], item = root, parent[item]
            return root

        def union(left: Term, right: Term) -> None:
            root_left, root_right = find(left), find(right)
            if root_left == root_right:
                return
            # Prefer constants as representatives, then head variables.
            if isinstance(root_left, Constant) and isinstance(root_right, Constant):
                raise SchemaError(
                    f"unsatisfiable equality {root_left} = {root_right} in {self.name}"
                )
            if isinstance(root_right, Constant):
                parent[root_left] = root_right
            elif isinstance(root_left, Constant):
                parent[root_right] = root_left
            elif root_left in head_vars and root_right not in head_vars:
                parent[root_right] = root_left
            else:
                parent[root_left] = root_right

        head_vars = set(self.head_variables())
        has_equalities = False
        for atom in self.body:
            if isinstance(atom, EqualityAtom):
                has_equalities = True
                union(atom.left, atom.right)
        if not has_equalities:
            return self
        mapping = {}
        for variable in self.variables():
            representative = find(variable)
            if representative != variable:
                mapping[variable] = representative
        collapsed = self.substitute(mapping)
        body = [a for a in collapsed.body if not isinstance(a, EqualityAtom)]
        return ConjunctiveQuery(self.name, collapsed.head, body).dedupe()

    # ------------------------------------------------------------------
    # Display
    # ------------------------------------------------------------------
    def __str__(self) -> str:
        head_args = ", ".join(str(item) for item in self.head)
        body_text = ", ".join(str(item) for item in self.body)
        return f"{self.name}({head_args}) :- {body_text}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return str(self)


@dataclass(frozen=True)
class UnionQuery:
    """A union of conjunctive queries sharing the same head arity."""

    name: str
    disjuncts: Tuple[ConjunctiveQuery, ...]

    def __init__(self, name: str, disjuncts: Sequence[ConjunctiveQuery]):
        disjuncts = tuple(disjuncts)
        if not disjuncts:
            raise SchemaError("a union query needs at least one disjunct")
        arity = len(disjuncts[0].head)
        for query in disjuncts:
            if len(query.head) != arity:
                raise SchemaError(
                    f"union {name}: head arity mismatch "
                    f"({len(query.head)} vs {arity})"
                )
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "disjuncts", disjuncts)

    @property
    def arity(self) -> int:
        return len(self.disjuncts[0].head)

    def __iter__(self):
        return iter(self.disjuncts)

    def __len__(self) -> int:
        return len(self.disjuncts)

    def __str__(self) -> str:
        return " UNION ".join(str(query) for query in self.disjuncts)


def make_query(
    name: str,
    head: Sequence[Term],
    body: Sequence[Atom],
) -> ConjunctiveQuery:
    """Build a conjunctive query and validate its safety."""
    query = ConjunctiveQuery(name, head, body)
    if not query.is_safe():
        missing = [
            str(v) for v in query.head_variables() if v not in set(query.body_variables())
        ]
        raise SchemaError(f"unsafe query {name}: head variables {missing} not in body")
    return query
