"""The cost model: cardinality and cost estimates for reformulation plans.

Built on a :class:`~repro.cost.statistics.StatisticsCatalog`, the
:class:`CostModel` prices a conjunctive query (or a union, per disjunct)
with the textbook System-R-style model:

* **cardinality** — the product of the relation row counts, reduced by one
  selectivity factor per constant selection (``1/distinct`` of the bound
  column) and per repeated join variable (``1/max(distinct)`` over the
  positions it joins); unknown distinct counts fall back to a default
  selectivity.
* **cost** — the weighted scan cost of every referenced relation plus the
  sum of intermediate-result cardinalities under a greedy smallest-first
  join order (a standard logical cost metric).

On top of the local estimate, the model prices the three sharded execution
modes so the :class:`~repro.shard.router.ShardRouter` can choose between
them: ``single`` (one shard's fragment plus a dispatch overhead),
``scatter`` (every shard runs the plan on its fragment), ``gather``
(fragments are shipped to the coordinator at a per-row transfer cost and
joined once).

The estimates returned here are *not* monotone (adding a selective atom can
reduce intermediate sizes by more than its scan cost), so the backchase
keeps its monotone scan-cost estimator for pruning; the
:class:`CostModel` ranks the finished minimal reformulations in
:meth:`repro.core.system.MarsSystem.reformulate` and prices routing
decisions, where non-monotonicity is harmless.

>>> from repro.cost import CostModel, StatisticsCatalog
>>> catalog = StatisticsCatalog.from_rows({
...     "orders": [(c, i) for c in ("c1", "c2") for i in range(5)],
... })
>>> CostModel(catalog).estimate_rows("orders")
10.0
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..engine.cost import CostEstimator
from ..logical.atoms import RelationalAtom
from ..logical.queries import ConjunctiveQuery, UnionQuery
from ..logical.terms import Variable, is_variable
from .statistics import StatisticsCatalog, TableStatistics

Query = Union[ConjunctiveQuery, UnionQuery]

MODE_LOCAL = "local"
MODE_SINGLE = "single"
MODE_SCATTER = "scatter"
MODE_GATHER = "gather"


@dataclass(frozen=True)
class CostParameters:
    """Tunable constants of the cost formulas."""

    #: Selectivity assumed for a selection/join on a column whose distinct
    #: count is unknown.
    default_selectivity: float = 0.1
    #: Fixed cost of dispatching one query (or fragment fetch) to a shard.
    per_shard_overhead: float = 2.0
    #: Cost of shipping one fragment row to the coordinator in gather mode.
    fetch_cost_per_row: float = 2.0


@dataclass(frozen=True)
class CostEstimate:
    """One priced plan: result size, cost components, and their sum."""

    mode: str
    cardinality: float
    scan_cost: float
    join_cost: float
    overhead: float = 0.0
    detail: Tuple[str, ...] = ()

    @property
    def total(self) -> float:
        return self.scan_cost + self.join_cost + self.overhead

    def describe(self) -> str:
        return (
            f"{self.mode}: cost {self.total:.1f} "
            f"(scan {self.scan_cost:.1f} + join {self.join_cost:.1f}"
            f" + overhead {self.overhead:.1f}), est. {self.cardinality:.1f} rows"
        )


class CostModel:
    """Prices conjunctive-query plans from a statistics catalog."""

    def __init__(
        self,
        catalog: Optional[StatisticsCatalog] = None,
        parameters: Optional[CostParameters] = None,
    ):
        self.catalog = catalog or StatisticsCatalog()
        self.parameters = parameters or CostParameters()

    # ------------------------------------------------------------------
    # Catalog access (with optional per-relation fragment scaling)
    # ------------------------------------------------------------------
    def _table(
        self, relation: str, scale: Optional[Mapping[str, float]]
    ) -> Optional[TableStatistics]:
        statistics = self.catalog.table(relation)
        if statistics is None or not scale:
            return statistics
        factor = scale.get(relation)
        if factor is None or factor >= 1.0:
            return statistics
        return statistics.scaled(factor)

    def estimate_rows(
        self, relation: str, scale: Optional[Mapping[str, float]] = None
    ) -> float:
        statistics = self._table(relation, scale)
        if statistics is None:
            return self.catalog.default_row_count
        return statistics.row_count

    def _distinct(
        self, relation: str, position: int, scale: Optional[Mapping[str, float]]
    ) -> Optional[float]:
        statistics = self._table(relation, scale)
        if statistics is None:
            return None
        return statistics.distinct(position)

    # ------------------------------------------------------------------
    # Selectivities
    # ------------------------------------------------------------------
    def _selection_factor(
        self, atom: RelationalAtom, scale: Optional[Mapping[str, float]]
    ) -> float:
        """Combined selectivity of the constants bound in *atom*."""
        factor = 1.0
        for position, term in enumerate(atom.terms):
            if is_variable(term):
                continue
            distinct = self._distinct(atom.relation, position, scale)
            factor *= (
                1.0 / distinct
                if distinct
                else self.parameters.default_selectivity
            )
        return factor

    def _variable_selectivities(
        self,
        atoms: Sequence[RelationalAtom],
        scale: Optional[Mapping[str, float]],
    ) -> Dict[Variable, float]:
        """Per join variable: ``1/max(distinct)`` over the positions it joins."""
        positions: Dict[Variable, List[Tuple[str, int]]] = {}
        for atom in atoms:
            for position, term in enumerate(atom.terms):
                if is_variable(term):
                    positions.setdefault(term, []).append((atom.relation, position))
        selectivities: Dict[Variable, float] = {}
        for variable, occurrences in positions.items():
            if len(occurrences) < 2:
                continue
            known = [
                self._distinct(relation, position, scale)
                for relation, position in occurrences
            ]
            known = [value for value in known if value]
            selectivities[variable] = (
                1.0 / max(known) if known else self.parameters.default_selectivity
            )
        return selectivities

    # ------------------------------------------------------------------
    # Estimation
    # ------------------------------------------------------------------
    def cardinality(
        self, query: Query, scale: Optional[Mapping[str, float]] = None
    ) -> float:
        """Estimated result rows of *query* (before projection/dedup)."""
        return self.estimate(query, scale=scale).cardinality

    def estimate(
        self, query: Query, scale: Optional[Mapping[str, float]] = None
    ) -> CostEstimate:
        """Price *query* as a local (coordinator/unsharded) execution.

        *scale* maps relation names to a fragment fraction in ``(0, 1]``;
        the routing estimates use it to reason about per-shard fragments.
        """
        if isinstance(query, UnionQuery):
            parts = [self.estimate(disjunct, scale=scale) for disjunct in query]
            return CostEstimate(
                mode=MODE_LOCAL,
                cardinality=sum(part.cardinality for part in parts),
                scan_cost=sum(part.scan_cost for part in parts),
                join_cost=sum(part.join_cost for part in parts),
                detail=tuple(part.describe() for part in parts),
            )
        normalized = query.normalize_equalities()
        atoms = normalized.relational_body
        if not atoms:
            return CostEstimate(
                mode=MODE_LOCAL, cardinality=1.0, scan_cost=0.0, join_cost=0.0
            )
        scan_cost = sum(
            self.estimate_rows(atom.relation, scale)
            * self.catalog.weight(atom.relation)
            for atom in atoms
        )
        effective = [
            max(
                1.0,
                self.estimate_rows(atom.relation, scale)
                * self._selection_factor(atom, scale),
            )
            for atom in atoms
        ]
        selectivities = self._variable_selectivities(atoms, scale)
        join_cost, cardinality, order = self._greedy_plan(
            atoms, effective, selectivities
        )
        detail = tuple(
            f"{step + 1}. {atoms[index].relation}" for step, index in enumerate(order)
        )
        return CostEstimate(
            mode=MODE_LOCAL,
            cardinality=cardinality,
            scan_cost=scan_cost,
            join_cost=join_cost,
            detail=detail,
        )

    def _greedy_plan(
        self,
        atoms: Sequence[RelationalAtom],
        effective: Sequence[float],
        selectivities: Mapping[Variable, float],
    ) -> Tuple[float, float, Tuple[int, ...]]:
        """Smallest-first greedy join order; returns (cost, cardinality, order).

        Cost is the sum of intermediate-result sizes after each join step.
        The per-step reduction applies one selectivity factor per repeated
        variable occurrence, so the final cardinality equals the
        order-independent product formula.
        """
        remaining = list(range(len(atoms)))
        remaining.sort(key=lambda index: (effective[index], index))
        first = remaining.pop(0)
        order = [first]
        bound = set(
            term for term in atoms[first].variables() if term in selectivities
        )
        cardinality = effective[first]
        join_cost = 0.0

        def joined(card: float, index: int) -> Tuple[float, List[Variable]]:
            step = card * effective[index]
            newly: List[Variable] = []
            local_bound = set(bound)
            for term in atoms[index].terms:
                if not is_variable(term) or term not in selectivities:
                    continue
                if term in local_bound:
                    step *= selectivities[term]
                else:
                    local_bound.add(term)
                    newly.append(term)
            return max(1.0, step), newly

        while remaining:
            best_position, best_value, best_newly = 0, None, []
            for position, index in enumerate(remaining):
                value, newly = joined(cardinality, index)
                if best_value is None or value < best_value:
                    best_position, best_value, best_newly = position, value, newly
            order.append(remaining.pop(best_position))
            cardinality = best_value
            join_cost += best_value
            bound.update(best_newly)
        return join_cost, cardinality, tuple(order)

    # ------------------------------------------------------------------
    # Routing estimates (used by the shard router)
    # ------------------------------------------------------------------
    def single_shard_estimate(
        self,
        query: Query,
        shard_count: int,
        partitioned: Mapping[str, int],
    ) -> CostEstimate:
        """One shard runs the plan over its 1/N fragments of partitioned tables."""
        scale = {relation: 1.0 / shard_count for relation in partitioned}
        local = self.estimate(query, scale=scale)
        return CostEstimate(
            mode=MODE_SINGLE,
            cardinality=local.cardinality,
            scan_cost=local.scan_cost,
            join_cost=local.join_cost,
            overhead=self.parameters.per_shard_overhead,
        )

    def scatter_estimate(
        self,
        query: Query,
        shard_count: int,
        partitioned: Mapping[str, int],
    ) -> CostEstimate:
        """Every shard runs the plan on its fragment; answers are merged.

        Broadcast tables are complete on each shard, so their scan cost is
        paid once *per shard* — the term that makes scattering a big
        broadcast join more expensive than gathering it.
        """
        scale = {relation: 1.0 / shard_count for relation in partitioned}
        per_shard = self.estimate(query, scale=scale)
        return CostEstimate(
            mode=MODE_SCATTER,
            cardinality=per_shard.cardinality * shard_count,
            scan_cost=per_shard.scan_cost * shard_count,
            join_cost=per_shard.join_cost * shard_count,
            overhead=self.parameters.per_shard_overhead * shard_count,
        )

    def gather_estimate(
        self,
        query: Query,
        fetch_shards: Sequence[Tuple[str, Tuple[int, ...]]],
        shard_count: int,
        partitioned: Mapping[str, int],
    ) -> CostEstimate:
        """Ship the (pruned) fragments to the coordinator and join once."""
        fetch_rows = 0.0
        touched = set()
        scale: Dict[str, float] = {}
        for table, shards in fetch_shards:
            touched.update(shards)
            if table in partitioned:
                fraction = len(shards) / float(shard_count)
                scale[table] = fraction
                fetch_rows += self.estimate_rows(table) * fraction
            else:
                fetch_rows += self.estimate_rows(table)
        local = self.estimate(query, scale=scale)
        overhead = (
            fetch_rows * self.parameters.fetch_cost_per_row
            + self.parameters.per_shard_overhead * max(1, len(touched))
        )
        return CostEstimate(
            mode=MODE_GATHER,
            cardinality=local.cardinality,
            scan_cost=local.scan_cost,
            join_cost=local.join_cost,
            overhead=overhead,
        )

    # ------------------------------------------------------------------
    def rank(
        self, queries: Sequence[ConjunctiveQuery]
    ) -> List[Tuple[CostEstimate, ConjunctiveQuery]]:
        """Price *queries* and return them cheapest first (stable on ties)."""
        scored = [(self.estimate(query), query) for query in queries]
        scored.sort(key=lambda pair: pair[0].total)
        return scored

    def as_estimator(self) -> "CostModelEstimator":
        """Adapt the model to the engine's :class:`CostEstimator` interface."""
        return CostModelEstimator(self)


class CostModelEstimator(CostEstimator):
    """A :class:`CostEstimator` view of a :class:`CostModel`.

    Suitable for *ranking finished plans*; not for the backchase's
    cost-based pruning, which requires a monotone estimator (see the
    module docstring).
    """

    def __init__(self, model: CostModel):
        self.model = model

    def estimate(self, query: ConjunctiveQuery) -> float:
        if query is None:
            return math.inf
        return self.model.estimate(query).total
