"""Statistics and cost estimation: pricing plans over mixed, sharded storage.

MARS claims to pick the *minimum-cost* reformulation among the C&B
rewritings (paper Figure 2 plugs in a cost estimator); this subsystem makes
that claim statistics-driven instead of heuristic.  Two halves:

* :mod:`repro.cost.statistics` — :class:`StatisticsCatalog` /
  :class:`TableStatistics`: per-relation row counts, per-column distinct
  counts, per-shard fragment sizes and access weights.  Catalogs are
  declared (``StatisticsCatalog.from_configuration``) or collected from a
  live backend (``StorageBackend.collect_statistics()`` — the SQLite
  backend via ``ANALYZE`` + ``sqlite_stat1``, the sharded backend by
  merging its children).
* :mod:`repro.cost.model` — :class:`CostModel` / :class:`CostEstimate`:
  System-R-style cardinality estimation and plan costs, plus prices for
  the sharded execution modes (single / scatter / gather).

Entry points: :meth:`repro.core.system.MarsSystem.attach_statistics` ranks
reformulations with a collected catalog,
:meth:`repro.shard.backend.ShardedBackend.refresh_statistics` feeds the
shard router, and ``repro.serve.PublishingService`` does both at startup.
See ``docs/COST_MODEL.md`` for the formulas and a worked example.
"""

from .model import (
    CostEstimate,
    CostModel,
    CostModelEstimator,
    CostParameters,
)
from .statistics import StatisticsCatalog, TableStatistics, profile_rows

__all__ = [
    "CostEstimate",
    "CostModel",
    "CostModelEstimator",
    "CostParameters",
    "StatisticsCatalog",
    "TableStatistics",
    "profile_rows",
]
