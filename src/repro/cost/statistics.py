"""Statistics catalogs: per-relation row counts and per-column distinct counts.

The cost subsystem separates *what is known about the data* from *how cost
is derived from it*.  This module is the first half: a
:class:`StatisticsCatalog` maps relation names to :class:`TableStatistics`
records (row count, per-column distinct-value counts, per-shard fragment
sizes) plus per-relation access weights (navigating native XML is more
expensive than scanning a relational table).

Catalogs come from two places:

* **declared** — :meth:`StatisticsCatalog.from_configuration` derives a
  catalog from a :class:`~repro.core.configuration.MarsConfiguration`'s
  declarations (relational data, document node counts, administrator
  overrides in ``configuration.statistics``).  This is what
  :class:`~repro.core.system.MarsSystem` plans with before any instance is
  built.
* **collected** — every
  :class:`~repro.storage.backends.base.StorageBackend` implements
  ``collect_statistics()`` returning a catalog measured from the live
  data: the memory backend profiles the rows its hash-join evaluator
  scans, the SQLite backend runs ``ANALYZE`` and reads ``sqlite_stat1``,
  and the sharded backend merges its children's catalogs (summing
  partitioned fragments, keeping one copy of broadcast tables).

The legacy :class:`repro.storage.statistics.TableStatistics` (cardinality +
weight only) remains the input of the engine-internal estimators;
:meth:`StatisticsCatalog.to_table_statistics` converts down to it.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Mapping, Optional, Tuple

from ..storage.statistics import TableStatistics as LegacyTableStatistics

DEFAULT_ROW_COUNT = 1000.0


@dataclass(frozen=True)
class TableStatistics:
    """What is known about one stored relation.

    ``distinct_counts`` holds one entry per column position; a value ``<= 0``
    (or a tuple shorter than the arity) means the distinct count of that
    column is unknown.  ``fragment_rows`` is filled by the sharded backend:
    the row count each shard holds (broadcast tables repeat the full count).
    """

    name: str
    row_count: float
    distinct_counts: Tuple[float, ...] = ()
    fragment_rows: Tuple[float, ...] = ()

    def distinct(self, position: int) -> Optional[float]:
        """Distinct values in column *position*, or ``None`` when unknown."""
        if 0 <= position < len(self.distinct_counts):
            value = self.distinct_counts[position]
            if value > 0:
                return value
        return None

    def scaled(self, factor: float) -> "TableStatistics":
        """Statistics of a uniform 1/*factor* fragment of this table.

        Used by the routing cost model to reason about per-shard fragments:
        row counts scale linearly, distinct counts scale but never above the
        scaled row count and never below 1.
        """
        rows = max(1.0, self.row_count * factor)
        distinct = tuple(
            min(rows, max(1.0, value * factor)) if value > 0 else value
            for value in self.distinct_counts
        )
        return replace(self, row_count=rows, distinct_counts=distinct)


class StatisticsCatalog:
    """Relation statistics plus access weights, consumed by the cost model."""

    def __init__(
        self,
        tables: Optional[Mapping[str, TableStatistics]] = None,
        access_weights: Optional[Mapping[str, float]] = None,
        default_row_count: float = DEFAULT_ROW_COUNT,
        default_weight: float = 1.0,
    ):
        self.tables: Dict[str, TableStatistics] = dict(tables or {})
        self.access_weights: Dict[str, float] = dict(access_weights or {})
        self.default_row_count = default_row_count
        self.default_weight = default_weight

    # -- construction ---------------------------------------------------
    def add(self, statistics: TableStatistics) -> None:
        self.tables[statistics.name] = statistics

    def set_weight(self, relation: str, weight: float) -> None:
        self.access_weights[relation] = float(weight)

    @classmethod
    def from_rows(cls, tables: Mapping[str, object]) -> "StatisticsCatalog":
        """Profile literal row collections: ``{name: [rows...]}``.

        >>> catalog = StatisticsCatalog.from_rows(
        ...     {"orders": [("c1", 1), ("c1", 2), ("c2", 3)]}
        ... )
        >>> catalog.row_count("orders")
        3.0
        >>> catalog.distinct("orders", 0)
        2.0
        """
        catalog = cls()
        for name, rows in tables.items():
            catalog.add(profile_rows(name, rows))
        return catalog

    @classmethod
    def from_configuration(cls, configuration: object) -> "StatisticsCatalog":
        """The declared statistics of a MARS configuration.

        Row counts and access weights reproduce
        ``MarsConfiguration.build_statistics()`` exactly (administrator
        overrides win, stored documents cost ``xml_access_weight`` per
        node, materialized views default to a modest size); on top of
        that, relations declared *with data* get exact per-column distinct
        counts computed from the declared rows — unless an override
        changed the row count, in which case the declared rows are no
        longer trusted to describe the table.
        """
        legacy = configuration.build_statistics()
        catalog = cls(
            access_weights=dict(legacy.access_weights),
            default_row_count=legacy.default_cardinality,
            default_weight=legacy.default_weight,
        )
        for name, cardinality in legacy.cardinalities.items():
            rows = configuration.relational_data.get(name)
            if rows is not None and float(len(rows)) == float(cardinality):
                catalog.add(profile_rows(name, rows))
            else:
                catalog.add(TableStatistics(name=name, row_count=float(cardinality)))
        return catalog

    # -- lookups --------------------------------------------------------
    def __contains__(self, relation: str) -> bool:
        return relation in self.tables

    def table(self, relation: str) -> Optional[TableStatistics]:
        return self.tables.get(relation)

    def row_count(self, relation: str) -> float:
        statistics = self.tables.get(relation)
        if statistics is None:
            return self.default_row_count
        return statistics.row_count

    def distinct(self, relation: str, position: int) -> Optional[float]:
        statistics = self.tables.get(relation)
        if statistics is None:
            return None
        return statistics.distinct(position)

    def weight(self, relation: str) -> float:
        return float(self.access_weights.get(relation, self.default_weight))

    def scan_cost(self, relation: str) -> float:
        """Cost of one full scan: row count times the access weight."""
        return self.row_count(relation) * self.weight(relation)

    # -- conversion -----------------------------------------------------
    def to_table_statistics(self) -> LegacyTableStatistics:
        """Down-convert for the engine-internal (monotone) estimators."""
        return LegacyTableStatistics(
            cardinalities={
                name: statistics.row_count
                for name, statistics in self.tables.items()
            },
            access_weights=dict(self.access_weights),
            default_cardinality=self.default_row_count,
            default_weight=self.default_weight,
        )

    def describe(self) -> str:
        lines = []
        for name in sorted(self.tables):
            statistics = self.tables[name]
            distinct = ", ".join(
                f"{value:g}" if value > 0 else "?"
                for value in statistics.distinct_counts
            )
            suffix = ""
            if statistics.fragment_rows:
                fragments = "/".join(f"{f:g}" for f in statistics.fragment_rows)
                suffix = f" fragments={fragments}"
            lines.append(
                f"{name}: {statistics.row_count:g} rows"
                f" distinct=({distinct})"
                f" weight={self.weight(name):g}{suffix}"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"StatisticsCatalog({len(self.tables)} tables)"


def profile_rows(name: str, rows: object) -> TableStatistics:
    """Exact statistics of an in-memory row collection."""
    materialized = [tuple(row) for row in rows]
    if not materialized:
        return TableStatistics(name=name, row_count=0.0)
    arity = len(materialized[0])
    distinct = tuple(
        float(len({row[position] for row in materialized}))
        for position in range(arity)
    )
    return TableStatistics(
        name=name, row_count=float(len(materialized)), distinct_counts=distinct
    )
