"""Schema specialization: tree patterns as virtual relations (paper section 5)."""

from .inlining import derive_specializations, derive_specializations_from_instance
from .mapping import SpecializationField, SpecializationMapping
from .specializer import (
    Specializer,
    expand_specialized_atoms,
    materialize_specialization,
)

__all__ = [
    "SpecializationField",
    "SpecializationMapping",
    "Specializer",
    "derive_specializations",
    "derive_specializations_from_instance",
    "expand_specialized_atoms",
    "materialize_specialization",
]
