"""Deriving specialization mappings automatically (hybrid-inlining style).

Paper section 5.1: specializations can be written by a domain expert or
inferred by the same tools that pick relational storage for XML (STORED,
hybrid inlining).  Corollary 5.2 notes that hybrid-inlining mappings satisfy
the restrictions that make specialization cheap.  This module implements the
inference: starting from a :class:`~repro.xmlmodel.dtd.DocumentType`
(declared or inferred from an instance), every element type whose
single-occurrence descendants form a non-trivial pattern receives a
specialized relation, with one column per inlined text-carrying descendant
reached exclusively through single-occurrence edges.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..xmlmodel.dtd import DocumentType, Occurrence
from ..xmlmodel.model import XMLDocument
from .mapping import SpecializationField, SpecializationMapping


def _inline_fields(
    document_type: DocumentType,
    element: str,
    prefix: Tuple[str, ...] = (),
    seen: Optional[frozenset] = None,
) -> List[SpecializationField]:
    """Collect the text-carrying descendants reachable via single-occurrence edges."""
    if seen is None:
        seen = frozenset((element,))
    fields: List[SpecializationField] = []
    declaration = document_type.element(element)
    for child in declaration.single_children():
        if child in seen or child not in document_type:
            continue
        child_declaration = document_type.element(child)
        path = prefix + (child,)
        if child_declaration.has_text and not child_declaration.children:
            name = "_".join(path)
            fields.append(SpecializationField(name, path))
        elif child_declaration.children:
            fields.extend(
                _inline_fields(document_type, child, path, seen | {child})
            )
    return fields


def derive_specializations(
    document_type: DocumentType,
    document_name: str,
    minimum_fields: int = 2,
    relation_prefix: str = "spec",
) -> List[SpecializationMapping]:
    """Derive specialization mappings for every sufficiently regular element type.

    ``minimum_fields`` filters out trivial patterns (a single text child is
    not worth a relation of its own -- the GReX atoms are already as small).
    """
    mappings: List[SpecializationMapping] = []
    for element in document_type.element_names:
        fields = _inline_fields(document_type, element)
        if len(fields) < minimum_fields:
            continue
        relation = f"{relation_prefix}_{element}"
        mappings.append(
            SpecializationMapping(relation, document_name, element, fields)
        )
    return mappings


def derive_specializations_from_instance(
    document: XMLDocument,
    minimum_fields: int = 2,
    relation_prefix: str = "spec",
) -> List[SpecializationMapping]:
    """Infer a document type from *document* and derive specializations from it."""
    document_type = DocumentType.infer(document)
    return derive_specializations(
        document_type, document.name, minimum_fields, relation_prefix
    )
