"""Specializing queries and dependencies, and post-processing the results.

Given a set of :class:`SpecializationMapping` objects, the specializer
rewrites conjunctions of GReX atoms: every occurrence of a specialized
element pattern (its ``tag`` atom, the ``child`` edge from its parent and
the child/tag/text chains of its fields) is collapsed into a single atom of
the virtual specialized relation.  Applied to the compiled client query and
to every DED of the configuration, this yields the smaller reformulation
problem of paper Figure 7; the reformulation found there is finally
post-processed by expanding any remaining specialized atoms back into GReX
atoms.

The rewrite is purely syntactic and runs in time polynomial in the query
size, which is the engineering content of Proposition 5.1 / Corollary 5.2.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from ..compile.grex import GrexSchema
from ..errors import SpecializationError
from ..logical.atoms import Atom, EqualityAtom, InequalityAtom, RelationalAtom
from ..logical.dependencies import DED, Disjunct
from ..logical.queries import ConjunctiveQuery
from ..logical.terms import Constant, Term, Variable, VariableFactory, is_variable
from ..xmlmodel.model import XMLDocument
from .mapping import SpecializationMapping


class Specializer:
    """Rewrites GReX conjunctions using a set of specialization mappings."""

    def __init__(self, mappings: Sequence[SpecializationMapping]):
        self.mappings = tuple(mappings)
        self._schemas: Dict[str, GrexSchema] = {
            mapping.document: GrexSchema(mapping.document) for mapping in mappings
        }

    # ------------------------------------------------------------------
    def specialized_relation_names(self) -> Tuple[str, ...]:
        return tuple(mapping.relation for mapping in self.mappings)

    def specialize_query(self, query: ConjunctiveQuery) -> ConjunctiveQuery:
        """Specialize the body of a conjunctive query."""
        atoms = self._specialize_atoms(list(query.body), [v.name for v in query.variables()])
        return ConjunctiveQuery(query.name, query.head, atoms)

    def specialize_dependency(self, dependency: DED) -> DED:
        """Specialize the premise and every disjunct of a DED."""
        used = [v.name for v in dependency.universal_variables()]
        used += [v.name for v in dependency.existential_variables()]
        premise = self._specialize_atoms(list(dependency.premise), used)
        disjuncts = [
            Disjunct(self._specialize_atoms(list(d.atoms), used))
            for d in dependency.disjuncts
        ]
        return DED(dependency.name, premise, disjuncts)

    def specialize_dependencies(self, dependencies: Sequence[DED]) -> List[DED]:
        """Specialize every dependency and add the specialized-relation keys.

        The ``id`` column of a specialized relation identifies the element it
        stands for, so it functionally determines every other column (this is
        the specialized image of the TIX key axioms on ``tag``/``text``/
        ``child``); the chase needs these dependencies to merge tuples coming
        from different views of the same element.
        """
        specialized = [self.specialize_dependency(d) for d in dependencies]
        specialized.extend(self.mapping_key_dependencies())
        return specialized

    def mapping_key_dependencies(self) -> List[DED]:
        """Key DEDs stating that ``id`` determines every specialized column."""
        dependencies: List[DED] = []
        for mapping in self.mappings:
            identifier = Variable("_id")
            left = [Variable(f"_l{i}") for i in range(mapping.arity - 1)]
            right = [Variable(f"_r{i}") for i in range(mapping.arity - 1)]
            premise = [
                RelationalAtom(mapping.relation, (identifier, *left)),
                RelationalAtom(mapping.relation, (identifier, *right)),
            ]
            equalities = [EqualityAtom(l, r) for l, r in zip(left, right)]
            dependencies.append(
                DED(f"{mapping.relation}_id_key", premise, [Disjunct(equalities)])
            )
        return dependencies

    # ------------------------------------------------------------------
    def _specialize_atoms(
        self, atoms: List[Atom], used_names: Sequence[str]
    ) -> List[Atom]:
        factory = VariableFactory(prefix="_s", used=list(used_names))
        for mapping in self.mappings:
            atoms = self._apply_mapping(mapping, atoms, factory)
        return atoms

    def _apply_mapping(
        self,
        mapping: SpecializationMapping,
        atoms: List[Atom],
        factory: VariableFactory,
    ) -> List[Atom]:
        schema = self._schemas[mapping.document]
        tag_rel = schema.relation("tag")
        child_rel = schema.relation("child")
        text_rel = schema.relation("text")
        desc_rel = schema.relation("desc")
        root_rel = schema.relation("root")

        relational = [a for a in atoms if isinstance(a, RelationalAtom)]
        others = [a for a in atoms if not isinstance(a, RelationalAtom)]

        # Index helpers over the current atom list.
        def find_tag(node: Term, tag: str) -> Optional[RelationalAtom]:
            for atom in relational:
                if (
                    atom.relation == tag_rel
                    and atom.terms[0] == node
                    and atom.terms[1] == Constant(tag)
                ):
                    return atom
            return None

        def children_of(node: Term) -> List[RelationalAtom]:
            return [
                atom
                for atom in relational
                if atom.relation == child_rel and atom.terms[0] == node
            ]

        def text_of(node: Term) -> Optional[RelationalAtom]:
            for atom in relational:
                if atom.relation == text_rel and atom.terms[0] == node:
                    return atom
            return None

        # Find specialized element occurrences: variables tagged with the
        # mapping's element tag.
        consumed: Set[RelationalAtom] = set()
        replacements: List[RelationalAtom] = []
        element_atoms = [
            atom
            for atom in relational
            if atom.relation == tag_rel and atom.terms[1] == Constant(mapping.element_tag)
        ]
        for tag_atom in element_atoms:
            element = tag_atom.terms[0]
            locally_consumed: Set[RelationalAtom] = {tag_atom}
            # Parent edge (pid column).
            parent_term: Optional[Term] = None
            for atom in relational:
                if atom.relation == child_rel and atom.terms[1] == element:
                    parent_term = atom.terms[0]
                    locally_consumed.add(atom)
                    break
            if parent_term is None:
                parent_term = factory.fresh("p")
            # Field chains.
            field_values: List[Term] = []
            for field in mapping.fields:
                value, chain = self._match_field_chain(
                    element, field.path, find_tag, children_of, text_of
                )
                if value is None:
                    field_values.append(factory.fresh("f"))
                else:
                    field_values.append(value)
                    locally_consumed.update(chain)
            replacements.append(
                RelationalAtom(
                    mapping.relation,
                    (element, parent_term) + tuple(field_values),
                )
            )
            consumed.update(locally_consumed)

        if not replacements:
            return atoms

        remaining = [a for a in relational if a not in consumed]
        # Drop absolute-navigation prefixes to specialized elements:
        # ``root(r), desc(r, x)`` where x is a specialized element and r is
        # not otherwise needed (every element is a descendant of the root).
        specialized_nodes = {atom.terms[0] for atom in replacements}
        remaining = self._drop_root_prefixes(
            remaining, specialized_nodes, root_rel, desc_rel
        )
        return remaining + replacements + others

    @staticmethod
    def _drop_root_prefixes(
        atoms: List[RelationalAtom],
        specialized_nodes: Set[Term],
        root_rel: str,
        desc_rel: str,
    ) -> List[RelationalAtom]:
        dropped_desc = [
            atom
            for atom in atoms
            if atom.relation == desc_rel and atom.terms[1] in specialized_nodes
        ]
        candidates = [a for a in atoms if a not in dropped_desc]
        # A root atom is dropped when its variable no longer occurs anywhere else.
        used_terms: Set[Term] = set()
        for atom in candidates:
            if atom.relation != root_rel:
                used_terms.update(atom.terms)
        result = []
        for atom in candidates:
            if atom.relation == root_rel and atom.terms[0] not in used_terms:
                continue
            result.append(atom)
        return result

    @staticmethod
    def _match_field_chain(
        element: Term,
        path: Tuple[str, ...],
        find_tag,
        children_of,
        text_of,
    ) -> Tuple[Optional[Term], List[RelationalAtom]]:
        """Match ``child/tag`` chains for a field; return (text variable, atoms)."""
        current = element
        chain: List[RelationalAtom] = []
        for tag in path:
            matched = None
            for child_atom in children_of(current):
                node = child_atom.terms[1]
                tag_atom = find_tag(node, tag)
                if tag_atom is not None:
                    matched = (child_atom, tag_atom, node)
                    break
            if matched is None:
                return None, []
            child_atom, tag_atom, node = matched
            chain.extend([child_atom, tag_atom])
            current = node
        text_atom = text_of(current)
        if text_atom is None:
            return None, []
        chain.append(text_atom)
        return text_atom.terms[1], chain


# ----------------------------------------------------------------------
# Post-processing and data materialization
# ----------------------------------------------------------------------
def expand_specialized_atoms(
    query: ConjunctiveQuery,
    mappings: Sequence[SpecializationMapping],
) -> ConjunctiveQuery:
    """Replace specialized atoms in a reformulation with the GReX pattern.

    This is the post-processing step of paper Figure 7: reformulations over
    ``spec(S)`` are translated back to the original XML entities so they can
    be shipped to the native XML store.
    """
    by_relation = {mapping.relation: mapping for mapping in mappings}
    factory = VariableFactory(prefix="_e", used=[v.name for v in query.variables()])
    new_body: List[Atom] = []
    for atom in query.body:
        if not isinstance(atom, RelationalAtom) or atom.relation not in by_relation:
            new_body.append(atom)
            continue
        mapping = by_relation[atom.relation]
        schema = GrexSchema(mapping.document)
        element, parent = atom.terms[0], atom.terms[1]
        new_body.append(schema.tag(element, mapping.element_tag))
        new_body.append(schema.child(parent, element))
        for field, value in zip(mapping.fields, atom.terms[2:]):
            current = element
            for tag in field.path:
                node = factory.fresh("n")
                new_body.append(schema.child(current, node))
                new_body.append(schema.tag(node, tag))
                current = node
            new_body.append(schema.text(current, value))
    return ConjunctiveQuery(query.name, query.head, new_body)


def materialize_specialization(
    mapping: SpecializationMapping, document: XMLDocument
) -> List[Tuple[object, ...]]:
    """Compute the extent of a specialized relation over an instance document."""
    rows: List[Tuple[object, ...]] = []
    for node in document.nodes():
        if node.tag != mapping.element_tag:
            continue
        parent_id = node.parent.node_id if node.parent is not None else (
            document.document_node_id
        )
        values: List[object] = [node.node_id, parent_id]
        complete = True
        for field in mapping.fields:
            current = node
            for tag in field.path:
                matches = current.child_elements(tag)
                if not matches:
                    complete = False
                    break
                current = matches[0]
            if not complete:
                break
            values.append(current.text_content())
        if complete:
            rows.append(tuple(values))
    return rows
