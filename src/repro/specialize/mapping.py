"""Schema-specialization mappings: XML tree patterns as virtual relations.

Paper section 5: when part of a document is regular (e.g. every ``author``
element has a ``name/first``, ``name/last``, ``address/street``, ... with
exactly one occurrence each), the whole pattern can be modelled as a single
tuple of a virtual relation ``Author(id, pid, first, last, street, ...)``.
Replacing the corresponding GReX atoms in queries and constraints by one
specialized atom makes both dramatically smaller, which speeds up the chase
(whose steps are NP-hard in the constraint size) and the backchase.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import SpecializationError


@dataclass(frozen=True)
class SpecializationField:
    """One column of a specialized relation.

    ``path`` is the chain of child element tags descended from the
    specialized element; the column holds the text content of the element at
    the end of the chain.  The paper's ``Author`` example has fields such as
    ``("first", ("name", "first"))`` and ``("city", ("address", "city"))``.
    """

    name: str
    path: Tuple[str, ...]

    def __init__(self, name: str, path: Sequence[str]):
        path = tuple(path)
        if not path:
            raise SpecializationError(f"field {name!r}: empty path")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "path", path)


@dataclass(frozen=True)
class SpecializationMapping:
    """Maps occurrences of an element tag (in one document) to a virtual relation.

    The relation's columns are ``(id, pid, field_1, ..., field_n)``: the
    identity of the specialized element, the identity of its parent, and the
    text values of the fields.  The mapping is only sound when the document
    is *regular* for this pattern: every element with the given tag has
    exactly one occurrence of every field path (this is what a DTD/XML
    Schema or the inference of :class:`~repro.xmlmodel.dtd.DocumentType`
    establishes).
    """

    relation: str
    document: str
    element_tag: str
    fields: Tuple[SpecializationField, ...]

    def __init__(
        self,
        relation: str,
        document: str,
        element_tag: str,
        fields: Sequence[SpecializationField],
    ):
        fields = tuple(fields)
        names = [field.name for field in fields]
        if len(set(names)) != len(names):
            raise SpecializationError(
                f"specialization {relation}: duplicate field names"
            )
        object.__setattr__(self, "relation", relation)
        object.__setattr__(self, "document", document)
        object.__setattr__(self, "element_tag", element_tag)
        object.__setattr__(self, "fields", fields)

    @property
    def arity(self) -> int:
        return 2 + len(self.fields)

    @property
    def attributes(self) -> Tuple[str, ...]:
        return ("id", "pid") + tuple(field.name for field in self.fields)

    def field_index(self, name: str) -> int:
        for index, field in enumerate(self.fields):
            if field.name == name:
                return index
        raise SpecializationError(f"specialization {self.relation}: no field {name!r}")

    def __str__(self) -> str:
        columns = ", ".join(self.attributes)
        return f"{self.relation}({columns}) ~ <{self.element_tag}> in {self.document}"
