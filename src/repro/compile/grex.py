"""GReX: the generic relational encoding of XML documents.

Paper section 2.2 defines the schema

    GReX = [root, el, child, desc, tag, attr, id, text]

as a *logical* representation used for reasoning about XQueries -- the data
is not actually stored this way.  Because a MARS configuration involves
several documents (published and proprietary), each document gets its own
copy of the schema; relation names are suffixed with the document name
(``child__case_xml`` and so on), mirroring the paper's ``GReX1``/``GReX2``
notation.

For executing reformulations in the reproduction we *can* materialize the
encoding of a proprietary native-XML document into the in-memory database;
:meth:`GrexSchema.materialize` does exactly that.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..engine.shortcut import ClosureSpec
from ..logical.atoms import RelationalAtom
from ..logical.schema import RelationalSchema
from ..logical.terms import Constant, Term
from ..xmlmodel.model import XMLDocument

GREX_ARITIES: Dict[str, int] = {
    "root": 1,
    "el": 1,
    "child": 2,
    "desc": 2,
    "tag": 2,
    "attr": 3,
    "id": 2,
    "text": 2,
}

GREX_ATTRIBUTES: Dict[str, Tuple[str, ...]] = {
    "root": ("node",),
    "el": ("node",),
    "child": ("parent", "child"),
    "desc": ("ancestor", "descendant"),
    "tag": ("node", "tag"),
    "attr": ("node", "name", "value"),
    "id": ("node", "id"),
    "text": ("node", "value"),
}


def sanitize_document_name(name: str) -> str:
    """Turn a document name into an identifier usable inside relation names."""
    return re.sub(r"[^A-Za-z0-9_]", "_", name)


@dataclass(frozen=True)
class GrexSchema:
    """The GReX relation names for one document."""

    document_name: str

    @property
    def suffix(self) -> str:
        return sanitize_document_name(self.document_name)

    def relation(self, base: str) -> str:
        """The suffixed relation name for *base* (``child`` -> ``child__doc``)."""
        if base not in GREX_ARITIES:
            raise KeyError(f"unknown GReX relation {base!r}")
        return f"{base}__{self.suffix}"

    def relation_names(self) -> Tuple[str, ...]:
        return tuple(self.relation(base) for base in GREX_ARITIES)

    def closure_spec(self) -> ClosureSpec:
        """The :class:`ClosureSpec` for this document (used by the chase shortcut)."""
        return ClosureSpec(
            child=self.relation("child"),
            desc=self.relation("desc"),
            el=self.relation("el"),
            root=self.relation("root"),
            tag=self.relation("tag"),
            text=self.relation("text"),
            attr=self.relation("attr"),
            id=self.relation("id"),
        )

    # -- atom constructors -------------------------------------------------
    def root(self, node: Term) -> RelationalAtom:
        return RelationalAtom(self.relation("root"), (node,))

    def el(self, node: Term) -> RelationalAtom:
        return RelationalAtom(self.relation("el"), (node,))

    def child(self, parent: Term, child: Term) -> RelationalAtom:
        return RelationalAtom(self.relation("child"), (parent, child))

    def desc(self, ancestor: Term, descendant: Term) -> RelationalAtom:
        return RelationalAtom(self.relation("desc"), (ancestor, descendant))

    def tag(self, node: Term, tag: Term) -> RelationalAtom:
        if isinstance(tag, str):
            tag = Constant(tag)
        return RelationalAtom(self.relation("tag"), (node, tag))

    def text(self, node: Term, value: Term) -> RelationalAtom:
        return RelationalAtom(self.relation("text"), (node, value))

    def attr(self, node: Term, name: Term, value: Term) -> RelationalAtom:
        if isinstance(name, str):
            name = Constant(name)
        return RelationalAtom(self.relation("attr"), (node, name, value))

    def identity(self, node: Term, value: Term) -> RelationalAtom:
        return RelationalAtom(self.relation("id"), (node, value))

    # -- schema / storage integration ---------------------------------------
    def add_to_schema(self, schema: RelationalSchema) -> None:
        """Declare the suffixed relations in a :class:`RelationalSchema`."""
        for base, arity in GREX_ARITIES.items():
            name = self.relation(base)
            if name not in schema:
                schema.add_relation(name, GREX_ATTRIBUTES[base])

    def materialize(self, document: XMLDocument, store) -> None:
        """Store the document's GReX encoding as tables in *store*.

        This is how native-XML proprietary documents become executable: a
        reformulation whose atoms range over this document's GReX relations
        is evaluated directly against these tables.  *store* is anything
        with the relational-store interface — an
        :class:`~repro.storage.relational_db.InMemoryDatabase` or any
        :class:`~repro.storage.backends.StorageBackend`.
        """
        facts = document.grex_facts()
        for base, rows in facts.items():
            name = self.relation(base)
            if not store.has_table(name):
                store.create_table(name, GREX_ARITIES[base], GREX_ATTRIBUTES[base])
            else:
                store.clear_table(name)
            store.insert_many(name, rows)


def closure_specs(schemas: Iterable[GrexSchema]) -> Tuple[ClosureSpec, ...]:
    """Convenience: the closure specs of several documents."""
    return tuple(schema.closure_spec() for schema in schemas)
