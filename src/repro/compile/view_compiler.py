"""Compilation of schema-correspondence views into DEDs.

Paper sections 2.3 and 2.4.  Views are the heart of a MARS configuration:
the correspondence between the public and the proprietary schema is a set of
GAV and LAV views.  To treat both directions uniformly, MARS compiles every
view into constraints:

* a view whose output is a *relation* (e.g. a materialized relational copy
  of some XML data, as STORED would create) becomes the classical pair of
  inclusion dependencies ``cV``/``bV`` relating the defining query's body
  and the view relation;
* a view whose output is an *XML document* (e.g. the published virtual
  document of a GAV mapping, or a cached query answer) requires Skolem
  functions describing the invention of new element nodes.  Each element
  constructor becomes a *graph relation* ``G_view_rule(keys..., node)``
  constrained to be an injective function whose domain is the set of
  bindings of the rule's source query and whose range is wired into the
  GReX encoding of the output document (constraints (5)-(10) of the paper),
  together with the reverse constraints that let client queries over the
  output document be reformulated back onto the sources.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..errors import CompilationError
from ..logical.atoms import Atom, EqualityAtom, RelationalAtom
from ..logical.dependencies import DED, Disjunct, tgd
from ..logical.queries import ConjunctiveQuery
from ..logical.terms import Constant, Term, Variable, is_variable
from ..xbind.atoms import PathAtom
from ..xbind.evaluation import MixedStorage, evaluate_xbind
from ..xbind.query import XBindQuery
from ..xmlmodel.model import XMLDocument, XMLNode
from .grex import GrexSchema
from .xbind_compiler import GrexCompiler


# ----------------------------------------------------------------------
# Relational-output views
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RelationalView:
    """A view whose extent is a relation, defined by an XBind query.

    Typical uses: a STORED-style shredded copy of part of an XML document
    (LAV), or a relational cache of a previously answered query.
    """

    name: str
    definition: XBindQuery

    @property
    def arity(self) -> int:
        return len(self.definition.head)

    def head_atom(self) -> RelationalAtom:
        return RelationalAtom(self.name, self.definition.head)

    def compile(self, compiler: GrexCompiler) -> List[DED]:
        """The two inclusion DEDs ``cV`` and ``bV`` of paper section 2.3."""
        body, _ = self.compile_body(compiler)
        view_atom = self.head_atom()
        forward = tgd(f"c_{self.name}", body, [view_atom])
        backward = tgd(f"b_{self.name}", [view_atom], list(body))
        return [forward, backward]

    def compile_body(self, compiler: GrexCompiler) -> Tuple[List[Atom], Dict[Variable, str]]:
        used = [v.name for v in self.definition.variables()]
        return compiler.compile_atoms(self.definition.body, used_names=used)

    def compiled_query(self, compiler: GrexCompiler) -> ConjunctiveQuery:
        """The defining query compiled over GReX (used to materialize the view)."""
        body, _ = self.compile_body(compiler)
        return ConjunctiveQuery(self.name, self.definition.head, body)


# ----------------------------------------------------------------------
# XML-output views
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ElementRule:
    """One element constructor of an XML-output view.

    ``keys`` are the variables the constructed element's identity depends on
    (the arguments of the Skolem function); they must be bound by ``body``.
    ``parent`` names the rule constructing the parent element; its keys must
    be a subset of this rule's variables so the edge can be established.
    """

    name: str
    tag: str
    keys: Tuple[Variable, ...]
    body: Tuple[object, ...]
    parent: Optional[str] = None
    text_var: Optional[Variable] = None
    attributes: Tuple[Tuple[str, Variable], ...] = ()
    is_leaf: bool = False

    def __init__(
        self,
        name: str,
        tag: str,
        keys: Sequence[Variable],
        body: Sequence[object],
        parent: Optional[str] = None,
        text_var: Optional[Variable] = None,
        attributes: Union[Mapping[str, Variable], Sequence[Tuple[str, Variable]]] = (),
        is_leaf: bool = False,
    ):
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "tag", tag)
        object.__setattr__(self, "keys", tuple(keys))
        object.__setattr__(self, "body", tuple(body))
        object.__setattr__(self, "parent", parent)
        object.__setattr__(self, "text_var", text_var)
        if isinstance(attributes, Mapping):
            attributes = tuple(attributes.items())
        object.__setattr__(self, "attributes", tuple(attributes))
        object.__setattr__(self, "is_leaf", is_leaf)


@dataclass(frozen=True)
class XMLView:
    """A view whose output is an XML document built by element rules."""

    name: str
    output_document: str
    rules: Tuple[ElementRule, ...]

    def __init__(self, name: str, output_document: str, rules: Sequence[ElementRule]):
        rules = tuple(rules)
        names = [rule.name for rule in rules]
        if len(set(names)) != len(names):
            raise CompilationError(f"XML view {name}: duplicate rule names")
        roots = [rule for rule in rules if rule.parent is None]
        if len(roots) != 1:
            raise CompilationError(
                f"XML view {name}: exactly one root rule required, found {len(roots)}"
            )
        by_name = {rule.name: rule for rule in rules}
        for rule in rules:
            if rule.parent is not None and rule.parent not in by_name:
                raise CompilationError(
                    f"XML view {name}: rule {rule.name} references unknown parent "
                    f"{rule.parent}"
                )
            if rule.text_var is not None and rule.text_var not in rule.keys:
                raise CompilationError(
                    f"XML view {name}: rule {rule.name}: text variable must be a key"
                )
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "output_document", output_document)
        object.__setattr__(self, "rules", rules)

    # ------------------------------------------------------------------
    def rule(self, name: str) -> ElementRule:
        for rule in self.rules:
            if rule.name == name:
                return rule
        raise CompilationError(f"XML view {self.name}: unknown rule {name}")

    @property
    def root_rule(self) -> ElementRule:
        return next(rule for rule in self.rules if rule.parent is None)

    def children_of(self, name: str) -> List[ElementRule]:
        return [rule for rule in self.rules if rule.parent == name]

    def skolem_relation(self, rule: ElementRule) -> str:
        return f"G_{self.name}_{rule.name}"

    def skolem_atom(self, rule: ElementRule, node: Term) -> RelationalAtom:
        return RelationalAtom(self.skolem_relation(rule), tuple(rule.keys) + (node,))

    # ------------------------------------------------------------------
    def compile(
        self, compiler: GrexCompiler, target_schema: GrexSchema
    ) -> List[DED]:
        """All DEDs describing this view (both directions)."""
        dependencies: List[DED] = []
        for rule in self.rules:
            dependencies.extend(self._compile_rule(rule, compiler, target_schema))
        return dependencies

    def _compile_rule(
        self, rule: ElementRule, compiler: GrexCompiler, target: GrexSchema
    ) -> List[DED]:
        skolem = self.skolem_relation(rule)
        node = Variable(f"_{rule.name}_node")
        node2 = Variable(f"_{rule.name}_node2")
        keys = list(rule.keys)
        keys2 = [Variable(f"_{v.name}_2") for v in keys]
        used = [v.name for v in keys] + [node.name, node2.name]
        dependencies: List[DED] = []

        # (domain, paper (7)): every source binding has a constructed element.
        if rule.body:
            body_atoms, _ = compiler.compile_atoms(rule.body, used_names=used)
        else:
            body_atoms = []
        if body_atoms:
            dependencies.append(
                tgd(f"{skolem}_domain", body_atoms, [self.skolem_atom(rule, node)])
            )

        # (functionality, paper (6)) and (injectivity, paper (5)).
        if keys:
            functional_premise = [
                RelationalAtom(skolem, tuple(keys) + (node,)),
                RelationalAtom(skolem, tuple(keys) + (node2,)),
            ]
            dependencies.append(
                DED(
                    f"{skolem}_functional",
                    functional_premise,
                    [Disjunct([EqualityAtom(node, node2)])],
                )
            )
            injective_premise = [
                RelationalAtom(skolem, tuple(keys) + (node,)),
                RelationalAtom(skolem, tuple(keys2) + (node,)),
            ]
            dependencies.append(
                DED(
                    f"{skolem}_injective",
                    injective_premise,
                    [Disjunct([EqualityAtom(k, k2) for k, k2 in zip(keys, keys2)])],
                )
            )
        else:
            dependencies.append(
                DED(
                    f"{skolem}_functional",
                    [
                        RelationalAtom(skolem, (node,)),
                        RelationalAtom(skolem, (node2,)),
                    ],
                    [Disjunct([EqualityAtom(node, node2)])],
                )
            )

        # (range / structure, paper (8)): the constructed element hangs off its
        # parent in the output document and carries its tag.  As in the
        # paper's constraint (8), the parent element's existence is asserted
        # in the conclusion (``Gitem(x,c) -> exists r Gresult(r) & child(r,c)``).
        structure_conclusion: List[Atom] = [target.tag(node, rule.tag)]
        structure_premise: List[Atom] = [self.skolem_atom(rule, node)]
        if rule.parent is None:
            document_node = Variable("_doc_node")
            structure_conclusion.insert(0, target.child(document_node, node))
            structure_conclusion.insert(0, target.root(document_node))
        else:
            parent_rule = self.rule(rule.parent)
            parent_node = Variable(f"_{parent_rule.name}_pnode")
            structure_conclusion.insert(0, target.child(parent_node, node))
            structure_conclusion.insert(0, self.skolem_atom(parent_rule, parent_node))
        dependencies.append(
            tgd(f"{skolem}_structure", structure_premise, structure_conclusion)
        )

        # (content, paper (9)) and attribute content.
        if rule.text_var is not None:
            dependencies.append(
                tgd(
                    f"{skolem}_text",
                    [self.skolem_atom(rule, node)],
                    [target.text(node, rule.text_var)],
                )
            )
            value = Variable("_text_value")
            dependencies.append(
                DED(
                    f"{skolem}_text_value",
                    [self.skolem_atom(rule, node), target.text(node, value)],
                    [Disjunct([EqualityAtom(value, rule.text_var)])],
                )
            )
        for attribute, variable in rule.attributes:
            dependencies.append(
                tgd(
                    f"{skolem}_attr_{attribute}",
                    [self.skolem_atom(rule, node)],
                    [target.attr(node, attribute, variable)],
                )
            )
            value = Variable(f"_attr_{attribute}_value")
            dependencies.append(
                DED(
                    f"{skolem}_attr_{attribute}_value",
                    [
                        self.skolem_atom(rule, node),
                        target.attr(node, attribute, value),
                    ],
                    [Disjunct([EqualityAtom(value, variable)])],
                )
            )

        # (no invented children, paper (10)): leaves have no proper descendants.
        if rule.is_leaf or not self.children_of(rule.name):
            descendant = Variable("_leaf_desc")
            dependencies.append(
                DED(
                    f"{skolem}_leaf",
                    [self.skolem_atom(rule, node), target.desc(node, descendant)],
                    [Disjunct([EqualityAtom(descendant, node)])],
                )
            )

        # Reverse direction: navigation in the output document is explained by
        # the Skolem graphs and, through them, by the sources.
        if rule.body:
            dependencies.append(
                tgd(f"{skolem}_source", [self.skolem_atom(rule, node)], body_atoms)
            )
        if rule.parent is None:
            document_node = Variable("_doc_node")
            premise = [
                target.root(document_node),
                target.child(document_node, node),
                target.tag(node, rule.tag),
            ]
            dependencies.append(
                tgd(f"{skolem}_reverse", premise, [self.skolem_atom(rule, node)])
            )
        else:
            parent_rule = self.rule(rule.parent)
            parent_node = Variable(f"_{parent_rule.name}_pnode")
            premise = [
                self.skolem_atom(parent_rule, parent_node),
                target.child(parent_node, node),
                target.tag(node, rule.tag),
            ]
            dependencies.append(
                tgd(f"{skolem}_reverse", premise, [self.skolem_atom(rule, node)])
            )
        # When the rule's tag is unique within the view, any element carrying
        # it in the (virtual) output document must be one of the constructed
        # elements: a tag-based reverse constraint.  This lets descendant
        # navigation (``//case``) be explained without knowing the full path
        # from the document root.
        if sum(1 for other in self.rules if other.tag == rule.tag) == 1:
            dependencies.append(
                tgd(
                    f"{skolem}_reverse_tag",
                    [target.tag(node, rule.tag)],
                    [self.skolem_atom(rule, node)],
                )
            )
        return dependencies

    # ------------------------------------------------------------------
    def materialize(self, storage: MixedStorage) -> XMLDocument:
        """Evaluate the view over *storage* and build the output document.

        Used to produce instance data for published documents in tests and
        examples, so that naive execution over the published schema can be
        compared with the execution of reformulations over the proprietary
        storage.
        """
        root_rule = self.root_rule
        nodes: Dict[Tuple[str, Tuple[object, ...]], XMLNode] = {}

        def build_for(rule: ElementRule, parent_lookup: Dict[Tuple[object, ...], XMLNode]):
            query = XBindQuery(
                f"{self.name}_{rule.name}",
                tuple(rule.keys),
                rule.body,
            )
            rows = evaluate_xbind(query, storage) if rule.body else [()]
            created: Dict[Tuple[object, ...], XMLNode] = {}
            for row in rows:
                key = tuple(row)
                if key in created:
                    continue
                values = dict(zip(rule.keys, row))
                node = XMLNode(rule.tag)
                if rule.text_var is not None:
                    node.text = str(values[rule.text_var])
                for attribute, variable in rule.attributes:
                    node.attributes[attribute] = str(values[variable])
                created[key] = node
                if rule.parent is not None:
                    parent_rule = self.rule(rule.parent)
                    parent_key = tuple(
                        values[k] for k in parent_rule.keys if k in values
                    )
                    parent = parent_lookup.get(parent_key)
                    if parent is not None:
                        parent.append(node)
                nodes[(rule.name, key)] = node
            return created

        created_root = build_for(root_rule, {})
        if not created_root:
            root_node = XMLNode(root_rule.tag)
            created_root = {(): root_node}
            nodes[(root_rule.name, ())] = root_node
        # Breadth-first over the rule tree.
        frontier = [root_rule]
        lookups: Dict[str, Dict[Tuple[object, ...], XMLNode]] = {
            root_rule.name: created_root
        }
        while frontier:
            rule = frontier.pop(0)
            for child_rule in self.children_of(rule.name):
                lookups[child_rule.name] = build_for(child_rule, lookups[rule.name])
                frontier.append(child_rule)
        root_node = next(iter(created_root.values()))
        return XMLDocument(self.output_document, root_node)


def identity_xml_view(
    name: str, document: str, published_as: Optional[str] = None
) -> "IdentityView":
    """An identity mapping publishing a proprietary document as-is (IdMap)."""
    return IdentityView(name, document, published_as or document)


@dataclass(frozen=True)
class IdentityView:
    """Publishes a stored XML document unchanged (paper Example 1.1's IdMap).

    Compilation produces, for every GReX relation, the two inclusions between
    the source and target encodings, effectively stating the documents are
    equal node-for-node.  ``published_as`` is the public name of the document
    (it may differ from the stored name).
    """

    name: str
    document: str
    published_as: str

    def compile(self, source: GrexSchema, target: GrexSchema) -> List[DED]:
        from .grex import GREX_ARITIES

        dependencies: List[DED] = []
        for base, arity in GREX_ARITIES.items():
            variables = tuple(Variable(f"v{i}") for i in range(arity))
            source_atom = RelationalAtom(source.relation(base), variables)
            target_atom = RelationalAtom(target.relation(base), variables)
            dependencies.append(
                tgd(f"{self.name}_{base}_fwd", [source_atom], [target_atom])
            )
            dependencies.append(
                tgd(f"{self.name}_{base}_bwd", [target_atom], [source_atom])
            )
        return dependencies
