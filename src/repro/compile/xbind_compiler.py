"""Compilation of XBind queries into conjunctive queries over GReX.

Paper section 2.2 (i): each XBind query describing the navigational part of
the client XQuery is compiled into a relational conjunctive query (with
inequalities) over the GReX schema by a straightforward syntax-directed
translation of its path atoms.  The same translation is reused to compile
XICs and view definitions, so it lives in a reusable :class:`GrexCompiler`.

The translation of one path step:

====================  =====================================================
step                  atoms produced (``cur`` is the context node)
====================  =====================================================
``/name``             ``child(cur, n), tag(n, 'name')``
``//name``            ``desc(cur, n), tag(n, 'name')``
``/*`` / ``//*``      ``child(cur, n)`` / ``desc(cur, n)``
``/text()``           ``text(cur, value)``
``//text()``          ``desc(cur, n), text(n, value)``
``/@a``               ``attr(cur, 'a', value)``
``//@a``              ``desc(cur, n), attr(n, 'a', value)``
====================  =====================================================

Absolute paths start from a fresh variable bound by the document's ``root``
relation.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import CompilationError
from ..logical.atoms import Atom, EqualityAtom, InequalityAtom, RelationalAtom
from ..logical.queries import ConjunctiveQuery
from ..logical.terms import Term, Variable, VariableFactory, is_variable
from ..xbind.atoms import PathAtom
from ..xbind.query import XBindQuery
from ..xmlmodel.xpath import Axis, NodeTestKind, Step, XPath
from .grex import GrexSchema


class GrexCompiler:
    """Compiles XBind queries, XICs and view bodies to atoms over GReX."""

    def __init__(
        self,
        schemas: Mapping[str, GrexSchema],
        default_document: Optional[str] = None,
    ):
        self.schemas: Dict[str, GrexSchema] = dict(schemas)
        if default_document is None and len(self.schemas) == 1:
            default_document = next(iter(self.schemas))
        self.default_document = default_document

    # ------------------------------------------------------------------
    def schema_for(self, document: Optional[str]) -> GrexSchema:
        name = document or self.default_document
        if name is None:
            raise CompilationError(
                "an absolute path atom needs a document (several documents are "
                "registered and no default was chosen)"
            )
        try:
            return self.schemas[name]
        except KeyError as error:
            raise CompilationError(f"unknown document {name!r}") from error

    # ------------------------------------------------------------------
    def compile_xbind(self, query: XBindQuery) -> ConjunctiveQuery:
        """Compile an XBind query to a conjunctive query over GReX."""
        atoms, _ = self.compile_atoms(query.body, used_names=[v.name for v in query.variables()])
        return ConjunctiveQuery(query.name, query.head, atoms)

    def compile_atoms(
        self,
        body: Sequence[object],
        used_names: Sequence[str] = (),
        variable_documents: Optional[Dict[Variable, str]] = None,
    ) -> Tuple[List[Atom], Dict[Variable, str]]:
        """Compile a mixed body (path / relational / filter atoms) to GReX atoms.

        Returns the compiled atoms and the mapping from element-valued
        variables to the document they navigate, which callers such as the
        specializer and the view compiler need.
        """
        factory = VariableFactory(prefix="_n", used=used_names)
        documents: Dict[Variable, str] = dict(variable_documents or {})
        compiled: List[Atom] = []
        pending = list(body)
        progressed = True
        while pending and progressed:
            progressed = False
            remaining = []
            for atom in pending:
                if isinstance(atom, PathAtom):
                    resolved = self._resolve_document(atom, documents)
                    if resolved is None:
                        remaining.append(atom)
                        continue
                    compiled.extend(
                        self._compile_path_atom(atom, resolved, documents, factory)
                    )
                elif isinstance(atom, (RelationalAtom, EqualityAtom, InequalityAtom)):
                    compiled.append(atom)
                else:
                    raise CompilationError(f"cannot compile atom {atom!r}")
                progressed = True
            pending = remaining
        if pending:
            raise CompilationError(
                "could not resolve the document of path atoms "
                f"{[str(a) for a in pending]}; bind their source variables first "
                "or set the atom's document explicitly"
            )
        return compiled, documents

    # ------------------------------------------------------------------
    def _resolve_document(
        self, atom: PathAtom, documents: Dict[Variable, str]
    ) -> Optional[str]:
        if atom.document:
            return atom.document
        if atom.is_absolute:
            return self.default_document or (
                next(iter(self.schemas)) if len(self.schemas) == 1 else None
            )
        source = atom.source
        if is_variable(source) and source in documents:
            return documents[source]
        if len(self.schemas) == 1:
            return next(iter(self.schemas))
        return None

    def _compile_path_atom(
        self,
        atom: PathAtom,
        document: str,
        documents: Dict[Variable, str],
        factory: VariableFactory,
    ) -> List[RelationalAtom]:
        schema = self.schema_for(document)
        atoms: List[RelationalAtom] = []
        if atom.is_absolute:
            current: Term = factory.fresh("r")
            atoms.append(schema.root(current))
        else:
            current = atom.source
        if is_variable(current):
            documents.setdefault(current, document)
        steps = atom.path.steps
        if not steps:
            raise CompilationError(f"path atom {atom} has no steps")
        for index, step in enumerate(steps):
            is_last = index == len(steps) - 1
            current = self._compile_step(
                schema, step, current, atom.target if is_last else None, atoms, factory
            )
            if is_variable(current):
                documents.setdefault(current, document)
        return atoms

    def _compile_step(
        self,
        schema: GrexSchema,
        step: Step,
        current: Term,
        bind_to: Optional[Term],
        atoms: List[RelationalAtom],
        factory: VariableFactory,
    ) -> Term:
        """Compile one path step; return the new context term."""
        if step.kind is NodeTestKind.TEXT:
            target = bind_to if bind_to is not None else factory.fresh("t")
            if step.axis is Axis.DESCENDANT:
                node = factory.fresh("d")
                atoms.append(schema.desc(current, node))
                atoms.append(schema.text(node, target))
            else:
                atoms.append(schema.text(current, target))
            return target
        if step.kind is NodeTestKind.ATTRIBUTE:
            target = bind_to if bind_to is not None else factory.fresh("a")
            if step.axis is Axis.DESCENDANT:
                node = factory.fresh("d")
                atoms.append(schema.desc(current, node))
                atoms.append(schema.attr(node, step.name, target))
            else:
                atoms.append(schema.attr(current, step.name, target))
            return target
        # element steps (name test or wildcard)
        target = bind_to if bind_to is not None else factory.fresh("e")
        if step.axis is Axis.DESCENDANT:
            atoms.append(schema.desc(current, target))
        else:
            atoms.append(schema.child(current, target))
        if step.kind is NodeTestKind.NAME:
            atoms.append(schema.tag(target, step.name))
        return target
