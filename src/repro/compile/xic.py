"""XML Integrity Constraints (XICs) and their compilation to DEDs.

Paper section 2.1: XICs have the same general form as DEDs, with relational
atoms replaced by XPath-defined predicates.  They can express XML Schema
key/keyref constraints but also richer statements such as "every person has
an ssn child".  Section 2.2 (ii) compiles them to DEDs over GReX with the
same path-atom translation used for XBind queries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple, Union

from ..errors import CompilationError
from ..logical.atoms import Atom, EqualityAtom, InequalityAtom, RelationalAtom
from ..logical.dependencies import DED, Disjunct
from ..logical.terms import Variable
from ..xbind.atoms import PathAtom
from .xbind_compiler import GrexCompiler

XICAtom = Union[PathAtom, RelationalAtom, EqualityAtom, InequalityAtom]


@dataclass(frozen=True)
class XIC:
    """An XML integrity constraint: premise -> disjunction of conclusions.

    Premise and conclusions are conjunctions of path atoms, relational atoms
    and (in)equalities.  Variables occurring only in a conclusion are
    existentially quantified there, exactly as in DEDs.
    """

    name: str
    premise: Tuple[XICAtom, ...]
    disjuncts: Tuple[Tuple[XICAtom, ...], ...]

    def __init__(
        self,
        name: str,
        premise: Sequence[XICAtom],
        disjuncts: Sequence[Sequence[XICAtom]],
    ):
        premise = tuple(premise)
        disjuncts = tuple(tuple(d) for d in disjuncts)
        if not premise:
            raise CompilationError(f"XIC {name}: empty premise")
        if not disjuncts:
            raise CompilationError(f"XIC {name}: needs at least one conclusion")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "premise", premise)
        object.__setattr__(self, "disjuncts", disjuncts)

    def __str__(self) -> str:
        premise_text = " & ".join(str(a) for a in self.premise)
        conclusion_text = " | ".join(
            "(" + " & ".join(str(a) for a in d) + ")" for d in self.disjuncts
        )
        return f"[{self.name}] {premise_text} -> {conclusion_text}"


def xic_key(name: str, element_path: str, key_path: str, document: str = None) -> XIC:
    """Helper: the child element reached by *key_path* is a key for *element_path*.

    This is the shape of XIC (1) in the paper: two distinct elements cannot
    agree on the key value.
    """
    p, q, s = Variable("p"), Variable("q"), Variable("s")
    return XIC(
        name,
        [
            PathAtom(element_path, p, document=document),
            PathAtom(key_path, s, source=p),
            PathAtom(element_path, q, document=document),
            PathAtom(key_path, s, source=q),
        ],
        [[EqualityAtom(p, q)]],
    )


def xic_exists_child(
    name: str, element_path: str, child_path: str, document: str = None
) -> XIC:
    """Helper: every element on *element_path* has a child on *child_path*.

    This is the shape of XIC (2) in the paper ("each person has an ssn").
    """
    p, s = Variable("p"), Variable("s")
    return XIC(
        name,
        [PathAtom(element_path, p, document=document)],
        [[PathAtom(child_path, s, source=p)]],
    )


def compile_xic(xic: XIC, compiler: GrexCompiler) -> DED:
    """Compile an XIC to a DED over GReX.

    The premise's path atoms are compiled first; the variable-to-document
    mapping they induce is shared with the conclusions so that relative
    paths in a conclusion navigate the correct document.
    """
    used = [v.name for a in xic.premise for v in a.variables()]
    for disjunct in xic.disjuncts:
        used.extend(v.name for a in disjunct for v in a.variables())
    premise_atoms, documents = compiler.compile_atoms(xic.premise, used_names=used)
    premise_variable_names = [
        v.name
        for atom in premise_atoms
        for v in atom.variables()
    ]
    compiled_disjuncts: List[Disjunct] = []
    for index, disjunct in enumerate(xic.disjuncts):
        disjunct_atoms, _ = compiler.compile_atoms(
            disjunct,
            used_names=used + premise_variable_names + [f"__disjunct{index}"],
            variable_documents=dict(documents),
        )
        compiled_disjuncts.append(Disjunct(disjunct_atoms))
    return DED(xic.name, premise_atoms, compiled_disjuncts)


def compile_xics(xics: Sequence[XIC], compiler: GrexCompiler) -> List[DED]:
    """Compile a collection of XICs."""
    return [compile_xic(xic, compiler) for xic in xics]
