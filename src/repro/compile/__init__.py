"""XML-to-relational compilation: GReX, TIX, XBind/XIC/view compilers."""

from .grex import GREX_ARITIES, GrexSchema, closure_specs, sanitize_document_name
from .tix import tix_dependencies, tix_for_documents
from .view_compiler import (
    ElementRule,
    IdentityView,
    RelationalView,
    XMLView,
    identity_xml_view,
)
from .xbind_compiler import GrexCompiler
from .xic import XIC, compile_xic, compile_xics, xic_exists_child, xic_key

__all__ = [
    "ElementRule",
    "GREX_ARITIES",
    "GrexCompiler",
    "GrexSchema",
    "IdentityView",
    "RelationalView",
    "XIC",
    "XMLView",
    "closure_specs",
    "compile_xic",
    "compile_xics",
    "identity_xml_view",
    "sanitize_document_name",
    "tix_dependencies",
    "tix_for_documents",
    "xic_exists_child",
    "xic_key",
]
