"""TIX: the built-in dependencies true in every XML document.

Paper section 2.2: the relations of GReX are not independent -- ``desc`` is
the reflexive-transitive closure of ``child``, every node has exactly one
tag, ancestors of a node lie on a single root-to-leaf path, and so on.  TIX
captures these facts as DEDs so that the chase can exploit them.  The paper
lists 13 such constraints; the set below covers the ones spelled out in the
paper ((base), (trans), (refl), (line), the key constraints on tag/text/id/
attr) plus the element-hood axioms needed for (refl) to fire, all
parameterised by document.

The ``(line)`` axiom is disjunctive.  Chasing with disjunctive dependencies
forks the chase tree, which the paper's configurations never require, so it
is excluded by default and can be requested explicitly.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from ..logical.atoms import EqualityAtom, RelationalAtom
from ..logical.dependencies import DED, Disjunct, tgd
from ..logical.terms import Variable
from .grex import GrexSchema

_X = Variable("x")
_Y = Variable("y")
_Z = Variable("z")
_U = Variable("u")
_T1 = Variable("t1")
_T2 = Variable("t2")
_N = Variable("n")


def tix_dependencies(
    schema: GrexSchema, include_disjunctive: bool = False
) -> List[DED]:
    """The TIX axioms for one document's GReX relations."""
    suffix = schema.suffix
    dependencies: List[DED] = [
        # (base): child is contained in desc.
        tgd(f"tix_base__{suffix}", [schema.child(_X, _Y)], [schema.desc(_X, _Y)]),
        # (trans): desc is transitive.
        tgd(
            f"tix_trans__{suffix}",
            [schema.desc(_X, _Y), schema.desc(_Y, _Z)],
            [schema.desc(_X, _Z)],
        ),
        # (refl): desc is reflexive on element nodes.
        tgd(f"tix_refl__{suffix}", [schema.el(_X)], [schema.desc(_X, _X)]),
        # Element-hood of the nodes mentioned by the other relations.
        tgd(f"tix_child_el_parent__{suffix}", [schema.child(_X, _Y)], [schema.el(_X)]),
        tgd(f"tix_child_el_child__{suffix}", [schema.child(_X, _Y)], [schema.el(_Y)]),
        tgd(f"tix_desc_el_source__{suffix}", [schema.desc(_X, _Y)], [schema.el(_X)]),
        tgd(f"tix_desc_el_target__{suffix}", [schema.desc(_X, _Y)], [schema.el(_Y)]),
        tgd(f"tix_root_el__{suffix}", [schema.root(_X)], [schema.el(_X)]),
        tgd(f"tix_tag_el__{suffix}", [schema.tag(_X, _T1)], [schema.el(_X)]),
        tgd(f"tix_text_el__{suffix}", [schema.text(_X, _T1)], [schema.el(_X)]),
        tgd(f"tix_attr_el__{suffix}", [schema.attr(_X, _N, _T1)], [schema.el(_X)]),
        tgd(f"tix_id_el__{suffix}", [schema.identity(_X, _T1)], [schema.el(_X)]),
        # Key constraints: a node has at most one tag, text value and identity,
        # and at most one value per attribute name.
        DED(
            f"tix_tag_key__{suffix}",
            [schema.tag(_X, _T1), schema.tag(_X, _T2)],
            [Disjunct([EqualityAtom(_T1, _T2)])],
        ),
        DED(
            f"tix_text_key__{suffix}",
            [schema.text(_X, _T1), schema.text(_X, _T2)],
            [Disjunct([EqualityAtom(_T1, _T2)])],
        ),
        DED(
            f"tix_id_key__{suffix}",
            [schema.identity(_X, _T1), schema.identity(_X, _T2)],
            [Disjunct([EqualityAtom(_T1, _T2)])],
        ),
        DED(
            f"tix_attr_key__{suffix}",
            [schema.attr(_X, _N, _T1), schema.attr(_X, _N, _T2)],
            [Disjunct([EqualityAtom(_T1, _T2)])],
        ),
        # A node has at most one parent, and the document has one root.
        DED(
            f"tix_parent_key__{suffix}",
            [schema.child(_X, _Z), schema.child(_Y, _Z)],
            [Disjunct([EqualityAtom(_X, _Y)])],
        ),
        DED(
            f"tix_root_key__{suffix}",
            [schema.root(_X), schema.root(_Y)],
            [Disjunct([EqualityAtom(_X, _Y)])],
        ),
    ]
    if include_disjunctive:
        # (line): ancestors of a node lie on the same root-to-leaf path.
        dependencies.append(
            DED(
                f"tix_line__{suffix}",
                [schema.desc(_X, _U), schema.desc(_Y, _U)],
                [
                    Disjunct([EqualityAtom(_X, _Y)]),
                    Disjunct([schema.desc(_X, _Y)]),
                    Disjunct([schema.desc(_Y, _X)]),
                ],
            )
        )
    return dependencies


def tix_for_documents(
    schemas: Iterable[GrexSchema], include_disjunctive: bool = False
) -> List[DED]:
    """TIX axioms for a collection of documents."""
    dependencies: List[DED] = []
    for schema in schemas:
        dependencies.extend(tix_dependencies(schema, include_disjunctive))
    return dependencies
