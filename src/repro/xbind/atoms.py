"""Path atoms: the XPath-defined predicates of XBind queries and XICs.

Paper section 2.1: the body atoms of XBind queries are either purely
relational or predicates defined by XPath expressions.  A binary predicate
``[p](x, y)`` holds when ``y`` is reachable from node ``x`` along path
``p``; a unary predicate ``[p](y)`` holds when ``p`` is an absolute path
from the document root reaching ``y``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping, Optional, Tuple, Union

from ..errors import SchemaError
from ..logical.terms import Constant, Term, Variable, is_variable
from ..xmlmodel.xpath import XPath, parse_xpath


@dataclass(frozen=True)
class PathAtom:
    """An XPath-defined predicate over one or two variables.

    ``source`` is ``None`` for unary (absolute) predicates.  ``document``
    optionally names the published document an absolute path navigates; when
    omitted it is resolved from context (single-document configurations) or
    propagated from the source variable during compilation.
    """

    path: XPath
    target: Term
    source: Optional[Term] = None
    document: Optional[str] = None

    def __init__(
        self,
        path: Union[XPath, str],
        target: Term,
        source: Optional[Term] = None,
        document: Optional[str] = None,
    ):
        if isinstance(path, str):
            path = parse_xpath(path)
        if source is None and not path.absolute:
            raise SchemaError(
                f"unary path predicate [{path}] must use an absolute path"
            )
        if source is not None and path.absolute:
            raise SchemaError(
                f"binary path predicate [{path}] must use a relative path"
            )
        object.__setattr__(self, "path", path)
        object.__setattr__(self, "target", target)
        object.__setattr__(self, "source", source)
        object.__setattr__(self, "document", document)

    # ------------------------------------------------------------------
    @property
    def is_absolute(self) -> bool:
        return self.source is None

    def variables(self) -> Iterator[Variable]:
        if self.source is not None and is_variable(self.source):
            yield self.source
        if is_variable(self.target):
            yield self.target

    def substitute(self, mapping: Mapping[Term, Term]) -> "PathAtom":
        source = None if self.source is None else mapping.get(self.source, self.source)
        target = mapping.get(self.target, self.target)
        return PathAtom(self.path, target, source, self.document)

    def with_document(self, document: str) -> "PathAtom":
        return PathAtom(self.path, self.target, self.source, document)

    def __str__(self) -> str:
        where = f"@{self.document}" if self.document else ""
        if self.source is None:
            return f"[{self.path}]{where}({self.target})"
        return f"[{self.path}]{where}({self.source}, {self.target})"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return str(self)
