"""Direct (unreformulated) evaluation of XBind queries over mixed storage.

This is the reproduction's stand-in for executing the client XQuery "as is"
with an XQuery engine such as Galax or Enosys (paper section 4.2): a naive
nested-loop evaluation of the path predicates over the published XML
documents, joined with any relational atoms over the relational store.  The
execution-time-savings experiments compare this against executing the MARS
reformulation over the proprietary storage.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from ..errors import EvaluationError
from ..logical.atoms import EqualityAtom, InequalityAtom, RelationalAtom
from ..logical.terms import Constant, Term, Variable, is_variable
from ..storage.relational_db import InMemoryDatabase
from ..xmlmodel.model import XMLDocument, XMLNode
from ..xmlmodel.xpath import evaluate_xpath
from .atoms import PathAtom
from .query import XBindQuery

Value = Union[XMLNode, str, int, float]
Binding = Dict[Variable, Value]


class MixedStorage:
    """A set of named XML documents plus a relational store.

    ``database`` is anything with the relational-store interface
    (``has_table``/``rows``): the default :class:`InMemoryDatabase` or a
    :class:`~repro.storage.backends.StorageBackend`.
    """

    def __init__(
        self,
        documents: Optional[Mapping[str, XMLDocument]] = None,
        database: Optional[object] = None,
    ):
        self.documents: Dict[str, XMLDocument] = dict(documents or {})
        self.database = database if database is not None else InMemoryDatabase()

    def add_document(self, document: XMLDocument) -> None:
        self.documents[document.name] = document

    def document(self, name: str) -> XMLDocument:
        try:
            return self.documents[name]
        except KeyError as error:
            raise EvaluationError(f"unknown document {name!r}") from error

    def single_document(self) -> XMLDocument:
        if len(self.documents) != 1:
            raise EvaluationError(
                "an absolute path atom without a document requires exactly one "
                f"registered document, found {len(self.documents)}"
            )
        return next(iter(self.documents.values()))


def _externalize(value: Value) -> object:
    """Convert a bound value to a comparable output value (nodes -> identities)."""
    if isinstance(value, XMLNode):
        return value.node_id
    return value


def _term_value(term: Term, binding: Binding) -> Value:
    if is_variable(term):
        if term not in binding:
            raise EvaluationError(f"unbound variable {term} in XBind evaluation")
        return binding[term]
    return term.value


def _compatible(existing: Value, candidate: Value) -> bool:
    if isinstance(existing, XMLNode) or isinstance(candidate, XMLNode):
        return existing is candidate
    return existing == candidate


def evaluate_xbind(
    query: XBindQuery,
    storage: MixedStorage,
    distinct: bool = True,
) -> List[Tuple[object, ...]]:
    """Evaluate *query* against *storage*, returning externalized head tuples."""
    bindings: List[Binding] = [{}]
    for atom in query.body:
        if isinstance(atom, PathAtom):
            bindings = _apply_path_atom(atom, bindings, storage)
        elif isinstance(atom, RelationalAtom):
            bindings = _apply_relational_atom(atom, bindings, storage.database)
        elif isinstance(atom, (EqualityAtom, InequalityAtom)):
            continue  # filters applied at the end, once everything is bound
        else:  # pragma: no cover - defensive
            raise EvaluationError(f"unsupported atom in XBind query: {atom!r}")
        if not bindings:
            break

    results: List[Tuple[object, ...]] = []
    seen = set()
    for binding in bindings:
        if not _filters_hold(query, binding):
            continue
        row = tuple(_externalize(_term_value(term, binding)) for term in query.head)
        if distinct:
            if row in seen:
                continue
            seen.add(row)
        results.append(row)
    return results


def _filters_hold(query: XBindQuery, binding: Binding) -> bool:
    for atom in query.filters:
        left = _externalize(_term_value(atom.left, binding))
        right = _externalize(_term_value(atom.right, binding))
        if isinstance(atom, EqualityAtom) and left != right:
            return False
        if isinstance(atom, InequalityAtom) and left == right:
            return False
    return True


def _apply_path_atom(
    atom: PathAtom, bindings: List[Binding], storage: MixedStorage
) -> List[Binding]:
    output: List[Binding] = []
    for binding in bindings:
        if atom.is_absolute:
            document = (
                storage.document(atom.document)
                if atom.document
                else storage.single_document()
            )
            values = evaluate_xpath(atom.path, document)
        else:
            source = binding.get(atom.source) if is_variable(atom.source) else None
            if not isinstance(source, XMLNode):
                raise EvaluationError(
                    f"path atom {atom} requires its source {atom.source} to be "
                    "bound to an element node"
                )
            document = (
                storage.document(atom.document)
                if atom.document
                else _owning_document(source, storage)
            )
            values = evaluate_xpath(atom.path, document, context=source)
        for value in values:
            if is_variable(atom.target):
                existing = binding.get(atom.target)
                if existing is not None and not _compatible(existing, value):
                    continue
                extended = dict(binding)
                extended[atom.target] = value
                output.append(extended)
            else:
                if _externalize(value) == atom.target.value:
                    output.append(dict(binding))
    return output


def _owning_document(node: XMLNode, storage: MixedStorage) -> XMLDocument:
    if node.node_id is not None:
        prefix = node.node_id.split("#", 1)[0]
        if prefix in storage.documents:
            return storage.documents[prefix]
    for document in storage.documents.values():
        ancestor = node
        while ancestor.parent is not None:
            ancestor = ancestor.parent
        if ancestor is document.root:
            return document
    raise EvaluationError("could not determine the document owning a bound node")


def _apply_relational_atom(
    atom: RelationalAtom, bindings: List[Binding], database: object
) -> List[Binding]:
    if not database.has_table(atom.relation):
        raise EvaluationError(f"unknown table {atom.relation!r} in XBind query")
    rows = database.rows(atom.relation)
    output: List[Binding] = []
    for binding in bindings:
        for row in rows:
            if len(row) != atom.arity:
                continue
            extended = dict(binding)
            ok = True
            for term, value in zip(atom.terms, row):
                if is_variable(term):
                    existing = extended.get(term)
                    if existing is None:
                        extended[term] = value
                    elif _externalize(existing) != value:
                        ok = False
                        break
                elif term.value != value:
                    ok = False
                    break
            if ok:
                output.append(extended)
    return output
