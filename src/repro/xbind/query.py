"""XBind queries: the navigation part of XQueries, in conjunctive-query form.

Paper section 2.1 introduces XBind queries as the internal notation for the
navigation/binding phase of an XQuery: a head returning a tuple of
variables, and a body of path predicates, relational atoms and
(in)equalities.  Client queries, views and integrity constraints are all
expressed with the same kind of bodies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from ..errors import SchemaError
from ..logical.atoms import EqualityAtom, InequalityAtom, RelationalAtom
from ..logical.terms import Term, Variable, is_variable

from .atoms import PathAtom

XBindAtom = Union[PathAtom, RelationalAtom, EqualityAtom, InequalityAtom]


@dataclass(frozen=True)
class XBindQuery:
    """A conjunctive query whose body may contain XPath-defined predicates."""

    name: str
    head: Tuple[Term, ...]
    body: Tuple[XBindAtom, ...]

    def __init__(self, name: str, head: Sequence[Term], body: Sequence[XBindAtom]):
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "head", tuple(head))
        object.__setattr__(self, "body", tuple(body))
        object.__setattr__(self, "_fingerprint", None)
        object.__setattr__(self, "_fingerprint_digest", None)

    # ------------------------------------------------------------------
    @property
    def path_atoms(self) -> Tuple[PathAtom, ...]:
        return tuple(a for a in self.body if isinstance(a, PathAtom))

    @property
    def relational_atoms(self) -> Tuple[RelationalAtom, ...]:
        return tuple(a for a in self.body if isinstance(a, RelationalAtom))

    @property
    def filters(self) -> Tuple[Union[EqualityAtom, InequalityAtom], ...]:
        return tuple(
            a for a in self.body if isinstance(a, (EqualityAtom, InequalityAtom))
        )

    def head_variables(self) -> Tuple[Variable, ...]:
        seen: Dict[Variable, None] = {}
        for item in self.head:
            if is_variable(item):
                seen.setdefault(item, None)
        return tuple(seen)

    def variables(self) -> Tuple[Variable, ...]:
        seen: Dict[Variable, None] = {}
        for item in self.head:
            if is_variable(item):
                seen.setdefault(item, None)
        for atom in self.body:
            for variable in atom.variables():
                seen.setdefault(variable, None)
        return tuple(seen)

    def is_safe(self) -> bool:
        body_variables = set()
        for atom in self.body:
            body_variables.update(atom.variables())
        return all(v in body_variables for v in self.head_variables())

    def documents(self) -> Tuple[str, ...]:
        """Names of the documents explicitly referenced by absolute path atoms."""
        seen: Dict[str, None] = {}
        for atom in self.path_atoms:
            if atom.document:
                seen.setdefault(atom.document, None)
        return tuple(seen)

    # ------------------------------------------------------------------
    def fingerprint(self) -> Tuple:
        """A hashable structural key for this query, modulo variable names.

        Variables are numbered by first occurrence (head first, then body in
        order), so two queries that differ only in variable naming — or in
        the query name — share a fingerprint.  The plan cache of the
        publishing service keys reformulations on this, letting repeated
        client queries skip the C&B engine entirely.

        Computed once and cached: the query is frozen, and both the plan
        cache and the cost-feedback recorder ask for it on every publish.
        """
        cached = self._fingerprint
        if cached is not None:
            return cached
        numbering: Dict[Variable, int] = {}

        def term_key(item: Optional[Term]) -> Optional[Tuple]:
            if item is None:
                return None
            if is_variable(item):
                index = numbering.get(item)
                if index is None:
                    index = numbering[item] = len(numbering)
                return ("v", index)
            return ("c", type(item.value).__name__, item.value)

        head = tuple(term_key(item) for item in self.head)
        body = []
        for atom in self.body:
            if isinstance(atom, PathAtom):
                body.append(
                    (
                        "path",
                        str(atom.path),
                        atom.document,
                        term_key(atom.source),
                        term_key(atom.target),
                    )
                )
            elif isinstance(atom, RelationalAtom):
                body.append(
                    ("rel", atom.relation, tuple(term_key(t) for t in atom.terms))
                )
            elif isinstance(atom, EqualityAtom):
                body.append(("eq", term_key(atom.left), term_key(atom.right)))
            elif isinstance(atom, InequalityAtom):
                body.append(("neq", term_key(atom.left), term_key(atom.right)))
            else:  # future atom kinds: fall back to their repr
                body.append(("atom", repr(atom)))
        result = (head, tuple(body))
        object.__setattr__(self, "_fingerprint", result)
        return result

    def fingerprint_digest(self) -> str:
        """The fingerprint as a stable hex digest (SHA-256 of stable JSON).

        The raw :meth:`fingerprint` tuple is an in-process cache key; its
        ``repr`` and pickle forms are incidental and drift across
        refactors.  The digest is the durable string form: plan-artifact
        filenames, audit entries and any label that must survive a
        restart key on this.  Memoized like the fingerprint itself.
        """
        cached = self._fingerprint_digest
        if cached is not None:
            return cached
        # Imported lazily: repro.plan imports this module to decode
        # canonical artifacts back into XBind queries.
        from ..plan.identity import fingerprint_digest

        digest = fingerprint_digest(self.fingerprint())
        object.__setattr__(self, "_fingerprint_digest", digest)
        return digest

    # ------------------------------------------------------------------
    def substitute(self, mapping: Mapping[Term, Term]) -> "XBindQuery":
        head = tuple(mapping.get(item, item) for item in self.head)
        body = tuple(atom.substitute(mapping) for atom in self.body)
        return XBindQuery(self.name, head, body)

    def with_name(self, name: str) -> "XBindQuery":
        return XBindQuery(name, self.head, self.body)

    def add_atoms(self, atoms: Sequence[XBindAtom]) -> "XBindQuery":
        return XBindQuery(self.name, self.head, tuple(self.body) + tuple(atoms))

    def __str__(self) -> str:
        head_text = ", ".join(str(item) for item in self.head)
        body_text = ", ".join(str(atom) for atom in self.body)
        return f"{self.name}({head_text}) :- {body_text}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return str(self)


def make_xbind(
    name: str, head: Sequence[Term], body: Sequence[XBindAtom]
) -> XBindQuery:
    """Build an XBind query and check its safety."""
    query = XBindQuery(name, head, body)
    if not query.is_safe():
        raise SchemaError(f"unsafe XBind query {name}: head variable not bound in body")
    return query
