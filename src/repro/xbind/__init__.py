"""XBind queries: navigation part of XQueries and their direct evaluation."""

from .atoms import PathAtom
from .evaluation import MixedStorage, evaluate_xbind
from .query import XBindQuery, make_xbind

__all__ = ["MixedStorage", "PathAtom", "XBindQuery", "evaluate_xbind", "make_xbind"]
