"""The bounded, sampled ring of completed :class:`QueryProfile` trees.

Always-on profiling cannot mean profiling *every* publish — per-operator
estimate computation costs real time on the hot path.  The
:class:`ProfileBuffer` therefore owns two decisions:

* **whether** to profile the next publish (:meth:`should_sample`, a
  deterministic 1-in-N counter — the slow-query-log idiom, never a coin
  flip, so test runs and replays profile exactly the same requests; a
  *seed* shifts which publish in each stride fires, letting two services
  sample disjoint request sets);
* **what to keep** (:meth:`record` into a bounded ring, newest evicting
  oldest), exported newest-first by :meth:`recent` and worst
  operator-q-error-first by :meth:`worst` — the bodies behind the
  ``/profiles/recent`` and ``/profiles/worst`` admin routes.

The sampling decision is made *before* execution, so an unsampled
publish builds no tree at all (backends see :data:`NULL_PROFILE`); the
dict export happens at read time, keeping the per-profile recording cost
to a counter bump and a list append.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional

from .nodes import QueryProfile


class ProfileBuffer:
    """Thread-safe sampler + ring of the profiles a service retained."""

    def __init__(self, maxlen: int = 64, sample: int = 1, seed: int = 0):
        if maxlen < 1:
            raise ValueError(f"profile buffer needs maxlen >= 1, got {maxlen}")
        if sample < 1:
            raise ValueError(f"profile sample must be >= 1, got {sample}")
        if seed < 0:
            raise ValueError(f"profile sampler seed must be >= 0, got {seed}")
        self.sample = sample
        self.seed = seed
        self._lock = threading.Lock()
        self._profiles: List[QueryProfile] = []
        self._maxlen = maxlen
        self._offered = 0
        self._recorded = 0

    # -- sampling ------------------------------------------------------
    def should_sample(self) -> bool:
        """Decide (deterministically) whether the next publish is profiled.

        Fires on the ``seed+1``-th publish and every ``sample``-th after
        it: ``sample=1`` profiles everything, ``sample=10`` one in ten.
        Called once per publish *before* execution so unsampled requests
        pay nothing beyond this counter bump.
        """
        with self._lock:
            self._offered += 1
            return (self._offered - 1 + self.seed) % self.sample == 0

    # -- recording -----------------------------------------------------
    def record(self, profile: QueryProfile) -> bool:
        """Retain one completed profile; returns whether it was kept."""
        if profile is None or not profile.root.enabled:
            return False
        with self._lock:
            self._profiles.append(profile)
            if len(self._profiles) > self._maxlen:
                del self._profiles[0]
            self._recorded += 1
            return True

    # -- reading -------------------------------------------------------
    @property
    def offered(self) -> int:
        """Publishes the sampler has decided on over the buffer's lifetime."""
        with self._lock:
            return self._offered

    @property
    def recorded(self) -> int:
        """Profiles retained over the buffer's lifetime (before eviction)."""
        with self._lock:
            return self._recorded

    def __len__(self) -> int:
        with self._lock:
            return len(self._profiles)

    def recent(self, n: Optional[int] = None) -> List[Dict[str, Any]]:
        """The retained profiles as dicts, newest first (at most *n*)."""
        with self._lock:
            profiles = list(reversed(self._profiles))
        if n is not None:
            if n <= 0:
                return []
            profiles = profiles[:n]
        return [profile.to_dict() for profile in profiles]

    def worst(self, n: Optional[int] = None) -> List[Dict[str, Any]]:
        """Retained profiles as dicts, largest worst-operator q-error first."""
        with self._lock:
            profiles = list(self._profiles)
        profiles.sort(key=lambda profile: profile.worst_q_error(), reverse=True)
        if n is not None:
            if n <= 0:
                return []
            profiles = profiles[:n]
        return [profile.to_dict() for profile in profiles]

    def worst_q_error(self) -> float:
        """The largest per-operator q-error across retained profiles."""
        with self._lock:
            profiles = list(self._profiles)
        if not profiles:
            return 1.0
        return max(profile.worst_q_error() for profile in profiles)

    def clear(self) -> None:
        with self._lock:
            self._profiles.clear()
