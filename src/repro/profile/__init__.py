"""Per-operator EXPLAIN ANALYZE: structured profiles of real executions.

``explain()`` renders the planner's *intent* as a string; this package
records what execution actually *did*, operator by operator, so a
cardinality misestimate can be localized to the join step, shard or
replica that produced it rather than blamed on a whole fingerprint:

* :mod:`repro.profile.nodes` — the :class:`ProfileNode` operator tree
  (``scan`` / ``join-step`` / ``union-branch`` / ``shard-fragment`` /
  ``replica-read`` / ``merge`` nodes, each with ``estimated_rows``,
  ``actual_rows``, ``elapsed_seconds`` and a per-operator ``q_error``),
  the :class:`QueryProfile` wrapper, and the ambient
  :func:`current_profile` sink (free when inactive via
  :data:`NULL_PROFILE`, mirroring the span tracer);
* :mod:`repro.profile.buffer` — the deterministic 1-in-N sampler and
  bounded ring (:class:`ProfileBuffer`) behind the service's always-on
  sampled profiling and the ``/profiles/recent`` / ``/profiles/worst``
  admin routes.

Every storage backend emits nodes into the ambient sink when a profile
is active; ``PublishingService.explain(query, analyze=True)`` forces one
profiled execution and returns its :class:`QueryProfile`.  See the
"Query profiling" section of ``docs/OBSERVABILITY.md``.
"""

from .buffer import ProfileBuffer
from .nodes import (
    JOIN_STEP,
    MERGE,
    NULL_PROFILE,
    REPLICA_READ,
    SCAN,
    SHARD_FRAGMENT,
    STATEMENT,
    UNION_BRANCH,
    ProfileNode,
    QueryProfile,
    current_profile,
)

__all__ = [
    "JOIN_STEP",
    "MERGE",
    "NULL_PROFILE",
    "ProfileBuffer",
    "ProfileNode",
    "QueryProfile",
    "REPLICA_READ",
    "SCAN",
    "SHARD_FRAGMENT",
    "STATEMENT",
    "UNION_BRANCH",
    "current_profile",
]
