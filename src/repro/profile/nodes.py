"""The structured profile tree: per-operator estimate-vs-actual records.

``explain()`` tells you what the planner *intended*; a
:class:`QueryProfile` records what execution actually *did*, operator by
operator.  Each :class:`ProfileNode` is one operator of a real execution
— a base-table scan, one hash-join step, a union branch, a shard
fragment, a replica read, a merge — carrying the planner's
``estimated_rows``, the measured ``actual_rows``, the wall-clock
``elapsed_seconds``, and the resulting per-operator ``q_error``.  That
is the signal whole-query feedback cannot give: which join, shard or
atom the misestimate came from.

Profiles are produced through the same **ambient sink** design as the
span tracer (:mod:`repro.obs.trace`): entering a node pushes it on a
thread-local stack and :func:`current_profile` hands any code on that
thread the innermost open node, so storage backends attach operator
children without a profiling parameter in any interface.  When no
profile is active, :func:`current_profile` returns the
:data:`NULL_PROFILE` singleton whose every method is an allocation-free
no-op — instrumented code never branches on an "is profiling on" flag,
which is what keeps sampled-off publishes at full speed.  Worker threads
(the scatter/gather pool) capture the parent node in their task closures
instead — thread-locals do not cross threads, profile nodes do (child
attachment is a GIL-atomic list append, exactly like spans).

Truthiness doubles as the activity test: real nodes are truthy, the null
node is falsy, so estimate computation that is only worth paying while
profiling guards with ``if profile:``.
"""

from __future__ import annotations

import json
import threading
from time import perf_counter as _now
from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..obs.feedback import q_error

#: Canonical operator kinds.  Backends may introduce engine-specific
#: kinds (the SQLite backend's ``statement``), but these six are the
#: vocabulary the docs, the admin endpoints and the tests speak.
SCAN = "scan"
JOIN_STEP = "join-step"
UNION_BRANCH = "union-branch"
SHARD_FRAGMENT = "shard-fragment"
REPLICA_READ = "replica-read"
MERGE = "merge"
#: One SQL statement executed by a real engine (the SQLite backend).
STATEMENT = "statement"

_ACTIVE = threading.local()


def current_profile() -> "ProfileNode":
    """The innermost open profile node on this thread, or :data:`NULL_PROFILE`.

    Backends use this to attach per-operator children without a
    profiling parameter threading through every ``StorageBackend``
    method — the same contract as :func:`repro.obs.current_span`.
    """
    stack = getattr(_ACTIVE, "stack", None)
    if stack:
        return stack[-1]
    return NULL_PROFILE


class ProfileNode:
    """One executed operator: estimated vs. actual rows, and its timing.

    Like spans, nodes are deliberately lock-free: the mutating
    operations (``children.append``, ``attributes.update``) are single
    bytecode-dispatched calls on built-in containers, GIL-atomic, so
    concurrent scatter/gather workers can attach fragments to a shared
    parent without a per-node lock.
    """

    __slots__ = (
        "kind",
        "label",
        "estimated_rows",
        "actual_rows",
        "start",
        "end",
        "attributes",
        "children",
    )

    def __init__(
        self,
        kind: str,
        label: str,
        estimated_rows: Optional[float] = None,
        **attributes: Any,
    ):
        self.kind = kind
        self.label = label
        self.estimated_rows = estimated_rows
        self.actual_rows: Optional[int] = None
        self.start: float = _now()
        self.end: Optional[float] = None
        self.attributes: Dict[str, Any] = attributes
        self.children: List["ProfileNode"] = []

    # -- recording -----------------------------------------------------
    def child(
        self,
        kind: str,
        label: str,
        estimated_rows: Optional[float] = None,
        **attributes: Any,
    ) -> "ProfileNode":
        """Open (and return) a child operator; use it as a context manager."""
        node = ProfileNode(kind, label, estimated_rows, **attributes)
        self.children.append(node)
        return node

    def annotate(self, **attributes: Any) -> None:
        """Merge *attributes* into this node (last write wins per key)."""
        self.attributes.update(attributes)

    def finish(self, actual_rows: Optional[int] = None) -> None:
        """Close the timing window and record the measured cardinality."""
        if actual_rows is not None:
            self.actual_rows = actual_rows
        if self.end is None:
            self.end = _now()

    # -- context manager (sets the ambient profile node) ---------------
    def __enter__(self) -> "ProfileNode":
        try:
            _ACTIVE.stack.append(self)
        except AttributeError:
            _ACTIVE.stack = [self]
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        stack = _ACTIVE.stack
        if stack and stack[-1] is self:
            stack.pop()
        if exc_type is not None:
            self.attributes["error"] = getattr(exc_type, "__name__", str(exc_type))
        if self.end is None:
            self.end = _now()

    # -- reading -------------------------------------------------------
    def __bool__(self) -> bool:
        return True

    @property
    def enabled(self) -> bool:
        return True

    @property
    def elapsed_seconds(self) -> float:
        """Seconds this operator covered (open nodes read as 'so far')."""
        return (self.end if self.end is not None else _now()) - self.start

    @property
    def q_error(self) -> Optional[float]:
        """Per-operator cardinality q-error; ``None`` until both sides exist."""
        if self.estimated_rows is None or self.actual_rows is None:
            return None
        return q_error(self.estimated_rows, self.actual_rows)

    def describe(self) -> str:
        """``kind:label`` — the operator name feedback and reports use."""
        return f"{self.kind}:{self.label}"

    def walk(self) -> Iterator["ProfileNode"]:
        """This node and every descendant, depth-first."""
        yield self
        for child in list(self.children):
            yield from child.walk()

    def worst_operator(self) -> Optional["ProfileNode"]:
        """The descendant (or self) with the largest q-error, if any."""
        worst: Optional["ProfileNode"] = None
        worst_error = 0.0
        for node in self.walk():
            error = node.q_error
            if error is not None and error > worst_error:
                worst, worst_error = node, error
        return worst

    def to_dict(self) -> Dict[str, Any]:
        entry: Dict[str, Any] = {
            "kind": self.kind,
            "label": self.label,
            "estimated_rows": self.estimated_rows,
            "actual_rows": self.actual_rows,
            "elapsed_seconds": round(self.elapsed_seconds, 6),
        }
        error = self.q_error
        if error is not None:
            entry["q_error"] = round(error, 3)
        if self.attributes:
            entry["attributes"] = dict(self.attributes)
        children = list(self.children)
        if children:
            entry["children"] = [child.to_dict() for child in children]
        return entry


class _NullProfileNode:
    """The do-nothing node handed out while no profile is active.

    Every method absorbs its call without allocating; ``child`` returns
    the singleton itself so arbitrarily deep instrumentation stays free,
    and the node is falsy so estimate computation can skip itself with
    ``if profile:``.
    """

    __slots__ = ()

    kind = ""
    label = ""
    estimated_rows = None
    actual_rows = None
    attributes: Dict[str, Any] = {}
    children: Tuple[()] = ()
    start = 0.0
    end = 0.0
    elapsed_seconds = 0.0
    q_error = None
    enabled = False

    def __bool__(self) -> bool:
        return False

    def child(
        self,
        kind: str,
        label: str,
        estimated_rows: Optional[float] = None,
        **attributes: Any,
    ) -> "_NullProfileNode":
        return self

    def annotate(self, **attributes: Any) -> None:
        pass

    def finish(self, actual_rows: Optional[int] = None) -> None:
        pass

    def __enter__(self) -> "_NullProfileNode":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass

    def describe(self) -> str:
        return ""

    def walk(self) -> Iterator["ProfileNode"]:
        return iter(())

    def worst_operator(self) -> None:
        return None

    def to_dict(self) -> Dict[str, Any]:
        return {}


NULL_PROFILE = _NullProfileNode()


class QueryProfile:
    """A finished operator tree plus request metadata.

    The root node covers the whole execution (its ``actual_rows`` is the
    published row count); metadata carries the query name, fingerprint,
    strategy and whether the profile came from the 1-in-N sampler or a
    forced ``explain(analyze=True)`` run.
    """

    __slots__ = ("root", "metadata")

    def __init__(self, root: ProfileNode, **metadata: Any):
        self.root = root
        self.metadata: Dict[str, Any] = metadata

    @property
    def elapsed_seconds(self) -> float:
        return self.root.elapsed_seconds

    @property
    def actual_rows(self) -> Optional[int]:
        return self.root.actual_rows

    def worst_operator(self) -> Optional[ProfileNode]:
        return self.root.worst_operator()

    def worst_q_error(self) -> float:
        """The largest per-operator q-error in the tree (1.0 when none)."""
        worst = self.worst_operator()
        error = worst.q_error if worst is not None else None
        return error if error is not None else 1.0

    def to_dict(self) -> Dict[str, Any]:
        entry: Dict[str, Any] = dict(self.metadata)
        worst = self.worst_operator()
        if worst is not None:
            entry["worst_operator"] = worst.describe()
            entry["worst_q_error"] = round(worst.q_error or 1.0, 3)
        entry["profile"] = self.root.to_dict()
        return entry

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, default=repr)

    def operators(self) -> List[ProfileNode]:
        """Every node of the tree, depth-first (handy in assertions)."""
        return list(self.root.walk())

    def render(self) -> str:
        """The operator tree as indented text — the EXPLAIN ANALYZE view."""
        lines: List[str] = []
        if self.metadata:
            meta = ", ".join(f"{k}={v}" for k, v in sorted(self.metadata.items()))
            lines.append(f"profile [{meta}]")

        def emit(node: ProfileNode, depth: int) -> None:
            cells = []
            if node.estimated_rows is not None:
                cells.append(f"est={node.estimated_rows:g}")
            if node.actual_rows is not None:
                cells.append(f"act={node.actual_rows}")
            error = node.q_error
            if error is not None:
                cells.append(f"q={error:.2f}")
            cells.append(f"{node.elapsed_seconds * 1000.0:.3f} ms")
            attrs = ""
            if node.attributes:
                attrs = " {" + ", ".join(
                    f"{k}={v!r}" for k, v in sorted(node.attributes.items())
                ) + "}"
            lines.append(
                f"{'  ' * depth}{node.kind} {node.label}: "
                + ", ".join(cells) + attrs
            )
            for child in list(node.children):
                emit(child, depth + 1)

        emit(self.root, 1 if self.metadata else 0)
        return "\n".join(lines)
