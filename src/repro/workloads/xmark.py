"""An XMark-style auction scenario (paper section 4.2, "More Experiments").

The XMark benchmark [27] models an auction site: items grouped by region,
registered people, and closed auctions referencing items and buyers.  The
paper uses an XMark-based configuration with realistic queries and
redundant views to show that reformulation times stay well within
feasibility range (about 350 ms on average on 2003 hardware).

Our rendition publishes a stored ``auction.xml`` document as-is and adds
redundant relational materializations typical of tuning: a name index over
items, a person directory, and a closed-auction price summary.  The query
suite exercises descendant navigation, attribute access, value joins across
subtrees, selections on constants and inequalities.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..compile.view_compiler import RelationalView
from ..core.configuration import MarsConfiguration
from ..logical.atoms import InequalityAtom
from ..logical.terms import Constant, Variable
from ..xbind.atoms import PathAtom
from ..xbind.query import XBindQuery
from ..xmlmodel.model import XMLDocument, XMLNode
from .datagen import SyntheticDataGenerator

AUCTION_DOCUMENT = "auction.xml"
REGIONS = ("europe", "namerica", "asia")


@dataclass(frozen=True)
class XMarkParameters:
    """Size knobs for the generated auction document."""

    items_per_region: int = 12
    people: int = 20
    closed_auctions: int = 25
    seed: int = 13


# ----------------------------------------------------------------------
# Instance data
# ----------------------------------------------------------------------
def build_auction_document(parameters: XMarkParameters = XMarkParameters()) -> XMLDocument:
    """Generate an auction-site document in the spirit of XMark."""
    generator = SyntheticDataGenerator(parameters.seed)
    site = XMLNode("site")
    regions = site.add("regions")
    item_ids: List[str] = []
    for region in REGIONS:
        region_node = regions.add(region)
        for index in range(parameters.items_per_region):
            item_id = f"item_{region}_{index}"
            item_ids.append(item_id)
            item = region_node.add("item", id=item_id)
            item.add("name", generator.token("gadget"))
            item.add("category", generator.choice(("art", "books", "coins", "toys")))
            item.add("description", generator.words(6))
    people = site.add("people")
    person_ids: List[str] = []
    for index in range(parameters.people):
        person_id = f"person_{index}"
        person_ids.append(person_id)
        person = people.add("person", id=person_id)
        person.add("name", generator.token("name"))
        person.add("city", generator.choice(("paris", "berlin", "tokyo", "boston")))
    closed = site.add("closed_auctions")
    for index in range(parameters.closed_auctions):
        auction = closed.add("closed_auction")
        auction.add("itemref", generator.choice(item_ids))
        auction.add("buyer", generator.choice(person_ids))
        auction.add("price", str(generator.integer(5, 500)))
    return XMLDocument(AUCTION_DOCUMENT, site)


# ----------------------------------------------------------------------
# Redundant views
# ----------------------------------------------------------------------
def item_name_view() -> RelationalView:
    item, item_id, name = Variable("i_el"), Variable("item_id"), Variable("name")
    definition = XBindQuery(
        "ItemNameMap",
        (item_id, name),
        (
            PathAtom("//item", item, document=AUCTION_DOCUMENT),
            PathAtom("./@id", item_id, source=item),
            PathAtom("./name/text()", name, source=item),
        ),
    )
    return RelationalView("itemName", definition)


def item_category_view() -> RelationalView:
    item, item_id, category = Variable("i_el"), Variable("item_id"), Variable("cat")
    definition = XBindQuery(
        "ItemCategoryMap",
        (item_id, category),
        (
            PathAtom("//item", item, document=AUCTION_DOCUMENT),
            PathAtom("./@id", item_id, source=item),
            PathAtom("./category/text()", category, source=item),
        ),
    )
    return RelationalView("itemCategory", definition)


def person_directory_view() -> RelationalView:
    person, person_id = Variable("p_el"), Variable("person_id")
    name, city = Variable("name"), Variable("city")
    definition = XBindQuery(
        "PersonDirectoryMap",
        (person_id, name, city),
        (
            PathAtom("//person", person, document=AUCTION_DOCUMENT),
            PathAtom("./@id", person_id, source=person),
            PathAtom("./name/text()", name, source=person),
            PathAtom("./city/text()", city, source=person),
        ),
    )
    return RelationalView("personDirectory", definition)


def auction_price_view() -> RelationalView:
    auction, item_id = Variable("a_el"), Variable("item_id")
    buyer, price = Variable("buyer_id"), Variable("price")
    definition = XBindQuery(
        "AuctionPriceMap",
        (item_id, buyer, price),
        (
            PathAtom("//closed_auction", auction, document=AUCTION_DOCUMENT),
            PathAtom("./itemref/text()", item_id, source=auction),
            PathAtom("./buyer/text()", buyer, source=auction),
            PathAtom("./price/text()", price, source=auction),
        ),
    )
    return RelationalView("auctionPrice", definition)


def build_configuration(
    parameters: XMarkParameters = XMarkParameters(), with_instance: bool = True
) -> MarsConfiguration:
    """The XMark-style MARS configuration."""
    from ..compile.xic import XIC, xic_key

    configuration = MarsConfiguration("xmark")
    instance = build_auction_document(parameters) if with_instance else None
    configuration.publish_document_as_is(AUCTION_DOCUMENT, instance)
    # XML Schema style constraints: @id identifies items and people, and every
    # item/person carries one (key + existence, as the paper's XICs express).
    configuration.add_xic(
        xic_key("key_item_id", "//item", "./@id", document=AUCTION_DOCUMENT)
    )
    configuration.add_xic(
        xic_key("key_person_id", "//person", "./@id", document=AUCTION_DOCUMENT)
    )
    for tag in ("item", "person"):
        element, identifier = Variable("e"), Variable("i")
        configuration.add_xic(
            XIC(
                f"exists_{tag}_id",
                [PathAtom(f"//{tag}", element, document=AUCTION_DOCUMENT)],
                [[PathAtom("./@id", identifier, source=element)]],
            )
        )
    for child in ("buyer", "itemref", "price"):
        auction_el, value = Variable("ca"), Variable("cv")
        configuration.add_xic(
            XIC(
                f"exists_auction_{child}",
                [PathAtom("//closed_auction", auction_el, document=AUCTION_DOCUMENT)],
                [[PathAtom(f"./{child}/text()", value, source=auction_el)]],
            )
        )
    configuration.add_relational_view(item_name_view(), attributes=("item_id", "name"))
    configuration.add_relational_view(
        item_category_view(), attributes=("item_id", "category")
    )
    configuration.add_relational_view(
        person_directory_view(), attributes=("person_id", "name", "city")
    )
    configuration.add_relational_view(
        auction_price_view(), attributes=("item_id", "buyer_id", "price")
    )
    # Sharding hints: the item-keyed views split on item_id (so the
    # item-name/auction-price join Q4 exercises is co-partitioned), the
    # person directory on person_id.  The auction document's GReX encoding
    # stays broadcast.
    configuration.set_partition_key("itemName", "item_id")
    configuration.set_partition_key("itemCategory", "item_id")
    configuration.set_partition_key("personDirectory", "person_id")
    configuration.set_partition_key("auctionPrice", "item_id")
    return configuration


# ----------------------------------------------------------------------
# The query suite
# ----------------------------------------------------------------------
def query_item_names() -> XBindQuery:
    """Q1: identifiers and names of all items (descendant navigation + attribute)."""
    item, item_id, name = Variable("i_el"), Variable("item_id"), Variable("name")
    return XBindQuery(
        "ItemNames",
        (item_id, name),
        (
            PathAtom("//item", item, document=AUCTION_DOCUMENT),
            PathAtom("./@id", item_id, source=item),
            PathAtom("./name/text()", name, source=item),
        ),
    )


def query_items_in_category(category: str = "art") -> XBindQuery:
    """Q2: items of a given category (selection on a constant)."""
    item, item_id, name = Variable("i_el"), Variable("item_id"), Variable("name")
    return XBindQuery(
        "ItemsInCategory",
        (item_id, name),
        (
            PathAtom("//item", item, document=AUCTION_DOCUMENT),
            PathAtom("./@id", item_id, source=item),
            PathAtom("./name/text()", name, source=item),
            PathAtom("./category/text()", Constant(category), source=item),
        ),
    )


def query_person_cities() -> XBindQuery:
    """Q3: names and cities of registered people."""
    person, name, city = Variable("p_el"), Variable("name"), Variable("city")
    return XBindQuery(
        "PersonCities",
        (name, city),
        (
            PathAtom("//person", person, document=AUCTION_DOCUMENT),
            PathAtom("./name/text()", name, source=person),
            PathAtom("./city/text()", city, source=person),
        ),
    )


def query_item_prices() -> XBindQuery:
    """Q4: item names with the price they sold for (value join across subtrees)."""
    item, auction = Variable("i_el"), Variable("a_el")
    item_id, name, price = Variable("item_id"), Variable("name"), Variable("price")
    return XBindQuery(
        "ItemPrices",
        (name, price),
        (
            PathAtom("//item", item, document=AUCTION_DOCUMENT),
            PathAtom("./@id", item_id, source=item),
            PathAtom("./name/text()", name, source=item),
            PathAtom("//closed_auction", auction, document=AUCTION_DOCUMENT),
            PathAtom("./itemref/text()", item_id, source=auction),
            PathAtom("./price/text()", price, source=auction),
        ),
    )


def query_buyers_with_items() -> XBindQuery:
    """Q5: buyers (name, city) together with the items they bought."""
    auction, person, item = Variable("a_el"), Variable("p_el"), Variable("i_el")
    person_id, item_id = Variable("person_id"), Variable("item_id")
    buyer_name, city, item_name = Variable("buyer"), Variable("city"), Variable("item")
    return XBindQuery(
        "BuyersWithItems",
        (buyer_name, city, item_name),
        (
            PathAtom("//closed_auction", auction, document=AUCTION_DOCUMENT),
            PathAtom("./buyer/text()", person_id, source=auction),
            PathAtom("./itemref/text()", item_id, source=auction),
            PathAtom("//person", person, document=AUCTION_DOCUMENT),
            PathAtom("./@id", person_id, source=person),
            PathAtom("./name/text()", buyer_name, source=person),
            PathAtom("./city/text()", city, source=person),
            PathAtom("//item", item, document=AUCTION_DOCUMENT),
            PathAtom("./@id", item_id, source=item),
            PathAtom("./name/text()", item_name, source=item),
        ),
    )


def query_out_of_town_buyers(city: str = "paris") -> XBindQuery:
    """Q6: buyers not living in the given city (inequality)."""
    auction, person = Variable("a_el"), Variable("p_el")
    person_id, buyer_name, buyer_city = (
        Variable("person_id"),
        Variable("buyer"),
        Variable("city"),
    )
    return XBindQuery(
        "OutOfTownBuyers",
        (buyer_name, buyer_city),
        (
            PathAtom("//closed_auction", auction, document=AUCTION_DOCUMENT),
            PathAtom("./buyer/text()", person_id, source=auction),
            PathAtom("//person", person, document=AUCTION_DOCUMENT),
            PathAtom("./@id", person_id, source=person),
            PathAtom("./name/text()", buyer_name, source=person),
            PathAtom("./city/text()", buyer_city, source=person),
            InequalityAtom(buyer_city, Constant(city)),
        ),
    )


def query_region_items(region: str = "europe") -> XBindQuery:
    """Q7: names of items listed in a given region (child-axis chain)."""
    item, name = Variable("i_el"), Variable("name")
    return XBindQuery(
        "RegionItems",
        (name,),
        (
            PathAtom(f"/site/regions/{region}/item", item, document=AUCTION_DOCUMENT),
            PathAtom("./name/text()", name, source=item),
        ),
    )


def query_suite() -> List[XBindQuery]:
    """The full query mix used by the XMark feasibility experiment."""
    return [
        query_item_names(),
        query_items_in_category(),
        query_person_cities(),
        query_item_prices(),
        query_buyers_with_items(),
        query_out_of_town_buyers(),
        query_region_items(),
    ]
