"""Workload generators: the paper's experimental configurations."""

from . import medical, star, xmark
from .datagen import SyntheticDataGenerator
from .star import StarParameters
from .xmark import XMarkParameters

__all__ = [
    "StarParameters",
    "SyntheticDataGenerator",
    "XMarkParameters",
    "medical",
    "star",
    "xmark",
]
