"""Deterministic synthetic data generation helpers for the workloads.

All generators are seeded so that test runs and benchmark runs are
reproducible; no global random state is touched.
"""

from __future__ import annotations

import random
from typing import Dict, List, Mapping, Sequence, Tuple


class SyntheticDataGenerator:
    """A small façade over :mod:`random` with workload-friendly helpers."""

    def __init__(self, seed: int = 0):
        self._random = random.Random(seed)

    def integer(self, low: int, high: int) -> int:
        """A uniform integer in ``[low, high]`` (inclusive)."""
        return self._random.randint(low, high)

    def token(self, prefix: str, width: int = 6) -> str:
        """A short pseudo-random identifier with the given prefix."""
        value = self._random.randrange(10 ** width)
        return f"{prefix}_{value:0{width}d}"

    def choice(self, items: Sequence):
        return self._random.choice(list(items))

    def sample(self, items: Sequence, count: int) -> List:
        items = list(items)
        count = min(count, len(items))
        return self._random.sample(items, count)

    def words(self, count: int, vocabulary: Sequence[str] = ()) -> str:
        """A snippet of text built from a vocabulary (for notes/descriptions)."""
        if not vocabulary:
            vocabulary = (
                "auction", "reserve", "bidder", "rare", "vintage", "mint",
                "shipping", "payment", "seller", "warranty", "offer", "lot",
            )
        return " ".join(self.choice(vocabulary) for _ in range(count))


class UpdateStreamGenerator:
    """A seeded stream of change sets over a snapshot of stored tables.

    Feeds the live write path (``PublishingService.update`` or a bare
    ``backend.apply``) with reproducible mixed workloads: each
    :meth:`next_changeset` inserts fresh rows (mutated copies of sampled
    stored rows, so value distributions stay workload-shaped) and deletes
    rows that are actually present (bag-correct: a row is deleted at most
    as often as it occurs).  The generator tracks the table state it has
    produced, so :meth:`expected_rows` doubles as the oracle the
    differential tests compare engines against.
    """

    def __init__(
        self,
        tables: Mapping[str, Sequence[Sequence[object]]],
        seed: int = 0,
        token_prefix: str = "upd",
    ):
        self._rng = random.Random(seed)
        self._state: Dict[str, List[Tuple[object, ...]]] = {
            name: [tuple(row) for row in rows]
            for name, rows in tables.items()
            if len(tuple(rows))
        }
        if not self._state:
            raise ValueError("update stream needs at least one populated table")
        self._names = sorted(self._state)
        # Row shapes survive even if a table is deleted down to empty.
        self._shapes: Dict[str, Tuple[object, ...]] = {
            name: rows[0] for name, rows in self._state.items()
        }
        self._prefix = token_prefix
        self._counter = 0

    @classmethod
    def from_backend(
        cls,
        backend,
        relations: Sequence[str],
        seed: int = 0,
        token_prefix: str = "upd",
    ) -> "UpdateStreamGenerator":
        """Snapshot *relations* out of a built backend and stream over them."""
        return cls(
            {name: backend.rows(name) for name in relations},
            seed=seed,
            token_prefix=token_prefix,
        )

    def _fresh_value(self, template: object) -> object:
        self._counter += 1
        if isinstance(template, (int, float)) and not isinstance(template, bool):
            return type(template)(self._rng.randint(1, 10_000))
        return f"{self._prefix}_{self._counter:06d}"

    def _fresh_row(self, table: str) -> Tuple[object, ...]:
        """A new row shaped like the stored data, with some fresh values."""
        source = self._state[table] or [self._shapes[table]]
        template = list(self._rng.choice(source))
        positions = range(len(template))
        mutate = self._rng.sample(
            list(positions), self._rng.randint(1, len(template))
        )
        for position in mutate:
            template[position] = self._fresh_value(template[position])
        return tuple(template)

    def next_changeset(
        self, max_tables: int = 2, max_rows: int = 4
    ) -> "ChangeSet":
        """The next random change set; the internal oracle state advances."""
        from ..replica.changeset import ChangeSet, TableChange

        rng = self._rng
        count = rng.randint(1, min(max_tables, len(self._names)))
        changes = []
        for table in rng.sample(self._names, count):
            state = self._state[table]
            inserts = [
                self._fresh_row(table) for _ in range(rng.randint(0, max_rows))
            ]
            deletable = min(len(state), rng.randint(0, max_rows))
            deletes = rng.sample(state, deletable) if deletable else []
            if not inserts and not deletes:
                inserts = [self._fresh_row(table)]
            for row in deletes:
                state.remove(row)
            state.extend(inserts)
            changes.append(
                TableChange(
                    relation=table,
                    inserts=tuple(inserts),
                    deletes=tuple(deletes),
                )
            )
        return ChangeSet(changes=tuple(changes))

    def expected_rows(self, table: str) -> Tuple[Tuple[object, ...], ...]:
        """The oracle: the multiset of rows *table* should hold now."""
        return tuple(self._state[table])
