"""Deterministic synthetic data generation helpers for the workloads.

All generators are seeded so that test runs and benchmark runs are
reproducible; no global random state is touched.
"""

from __future__ import annotations

import random
from typing import List, Sequence


class SyntheticDataGenerator:
    """A small façade over :mod:`random` with workload-friendly helpers."""

    def __init__(self, seed: int = 0):
        self._random = random.Random(seed)

    def integer(self, low: int, high: int) -> int:
        """A uniform integer in ``[low, high]`` (inclusive)."""
        return self._random.randint(low, high)

    def token(self, prefix: str, width: int = 6) -> str:
        """A short pseudo-random identifier with the given prefix."""
        value = self._random.randrange(10 ** width)
        return f"{prefix}_{value:0{width}d}"

    def choice(self, items: Sequence):
        return self._random.choice(list(items))

    def sample(self, items: Sequence, count: int) -> List:
        items = list(items)
        count = min(count, len(items))
        return self._random.sample(items, count)

    def words(self, count: int, vocabulary: Sequence[str] = ()) -> str:
        """A snippet of text built from a vocabulary (for notes/descriptions)."""
        if not vocabulary:
            vocabulary = (
                "auction", "reserve", "bidder", "rare", "vintage", "mint",
                "shipping", "payment", "seller", "warranty", "offer", "lot",
            )
        return " ".join(self.choice(vocabulary) for _ in range(count))
