"""The synthetic XML star-query scenario (paper sections 4.1, 4.2 and 5.2).

Public schema (one document, ``star.xml``): ``R`` elements (children of the
root) with a key subelement ``K`` and foreign-key subelements ``A1..A_NC``;
for every corner ``1 <= i <= NC`` there are ``Si`` elements with subelements
``A`` and ``B``.  ``R.Ai`` references ``Si.A`` and ``K`` is a key for ``R``
(expressed as XICs).

Proprietary schema: a relational shredding of the document (the hub table
``R_store`` and one corner table per ``Si``), plus ``NV`` redundantly
materialized star views ``V_l`` joining the hub with corners ``l`` and
``l+1`` and projecting on ``K`` and the two ``B`` values.  The document is
*published* from this storage; the shredding and the views are LAV views of
the published document.  (The paper materializes the views as XML; storing
them relationally is the substitution documented in DESIGN.md -- the
reformulation search space, which is what the experiments measure, is the
same: any subset of the views can be combined with base accesses thanks to
the key constraint on ``R``.)

The client query joins ``R`` with all ``NC`` corners and returns ``K`` and
every corner's ``B``; with the key XIC it can be rewritten using any subset
of the views, so the backchase faces on the order of ``2^NV`` minimal
reformulations.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..compile.view_compiler import RelationalView
from ..core.configuration import MarsConfiguration
from ..logical.terms import Variable
from ..xbind.atoms import PathAtom
from ..xbind.query import XBindQuery
from ..xmlmodel.model import XMLDocument, XMLNode
from .datagen import SyntheticDataGenerator

STAR_DOCUMENT = "star.xml"


@dataclass(frozen=True)
class StarParameters:
    """Parameters of one star configuration."""

    corners: int = 3  # NC in the paper
    views: Optional[int] = None  # NV; defaults to NC - 1
    hub_count: int = 20  # number of R elements in the generated instance
    corner_size: int = 20  # number of Si elements per corner
    include_base_storage: bool = True  # False for the Figure 8 scenario
    seed: int = 7

    @property
    def view_count(self) -> int:
        if self.views is not None:
            return self.views
        return max(0, self.corners - 1)


def corner_tag(index: int) -> str:
    return f"S{index}"


def hub_attribute_tag(index: int) -> str:
    return f"A{index}"


def view_name(index: int) -> str:
    return f"V{index}"


# ----------------------------------------------------------------------
# Instance data
# ----------------------------------------------------------------------
def build_star_document(parameters: StarParameters) -> XMLDocument:
    """Generate an instance of the public star document."""
    generator = SyntheticDataGenerator(parameters.seed)
    root = XMLNode("star")
    for corner in range(1, parameters.corners + 1):
        for row in range(parameters.corner_size):
            element = root.add(corner_tag(corner))
            element.add("A", f"a{corner}_{row}")
            element.add("B", generator.token(f"b{corner}"))
    for hub in range(parameters.hub_count):
        element = root.add("R")
        element.add("K", f"k{hub}")
        for corner in range(1, parameters.corners + 1):
            row = generator.integer(0, parameters.corner_size - 1)
            element.add(hub_attribute_tag(corner), f"a{corner}_{row}")
    return XMLDocument(STAR_DOCUMENT, root)


# ----------------------------------------------------------------------
# Views
# ----------------------------------------------------------------------
def hub_shredding_view(parameters: StarParameters) -> RelationalView:
    """The shredded hub table: ``R_store(k, a1, ..., a_NC)``."""
    hub = Variable("r_el")
    key = Variable("k")
    attributes = [Variable(f"a{i}") for i in range(1, parameters.corners + 1)]
    body = [
        PathAtom("//R", hub, document=STAR_DOCUMENT),
        PathAtom("./K/text()", key, source=hub),
    ]
    for index, variable in enumerate(attributes, start=1):
        body.append(PathAtom(f"./{hub_attribute_tag(index)}/text()", variable, source=hub))
    definition = XBindQuery("RStoreMap", (key, *attributes), body)
    return RelationalView("R_store", definition)


def corner_shredding_view(index: int) -> RelationalView:
    """The shredded corner table ``S{index}_store(a, b)``."""
    corner = Variable("s_el")
    a, b = Variable("a"), Variable("b")
    definition = XBindQuery(
        f"S{index}StoreMap",
        (a, b),
        (
            PathAtom(f"//{corner_tag(index)}", corner, document=STAR_DOCUMENT),
            PathAtom("./A/text()", a, source=corner),
            PathAtom("./B/text()", b, source=corner),
        ),
    )
    return RelationalView(f"S{index}_store", definition)


def star_view(index: int) -> RelationalView:
    """The materialized star view ``V_index(k, b_index, b_index+1)``."""
    hub = Variable("r_el")
    key = Variable("k")
    left_corner, right_corner = Variable("sl_el"), Variable("sr_el")
    left_a, right_a = Variable("al"), Variable("ar")
    left_b, right_b = Variable("bl"), Variable("br")
    definition = XBindQuery(
        f"ViewMap{index}",
        (key, left_b, right_b),
        (
            PathAtom("//R", hub, document=STAR_DOCUMENT),
            PathAtom("./K/text()", key, source=hub),
            PathAtom(f"./{hub_attribute_tag(index)}/text()", left_a, source=hub),
            PathAtom(f"./{hub_attribute_tag(index + 1)}/text()", right_a, source=hub),
            PathAtom(f"//{corner_tag(index)}", left_corner, document=STAR_DOCUMENT),
            PathAtom("./A/text()", left_a, source=left_corner),
            PathAtom("./B/text()", left_b, source=left_corner),
            PathAtom(f"//{corner_tag(index + 1)}", right_corner, document=STAR_DOCUMENT),
            PathAtom("./A/text()", right_a, source=right_corner),
            PathAtom("./B/text()", right_b, source=right_corner),
        ),
    )
    return RelationalView(view_name(index), definition)


# ----------------------------------------------------------------------
# Integrity constraints
# ----------------------------------------------------------------------
def star_xics(parameters: StarParameters):
    """The key XIC on R and a foreign-key XIC per corner."""
    from ..compile.xic import XIC, xic_key
    from ..logical.atoms import EqualityAtom

    xics = [xic_key("key_R_K", "//R", "./K/text()", document=STAR_DOCUMENT)]
    for index in range(1, parameters.corners + 1):
        hub, a, corner = Variable("r"), Variable("a"), Variable("s")
        xics.append(
            XIC(
                f"fk_R_A{index}",
                [
                    PathAtom("//R", hub, document=STAR_DOCUMENT),
                    PathAtom(f"./{hub_attribute_tag(index)}/text()", a, source=hub),
                ],
                [
                    [
                        PathAtom(f"//{corner_tag(index)}", corner, document=STAR_DOCUMENT),
                        PathAtom("./A/text()", a, source=corner),
                    ]
                ],
            )
        )
    return xics


# ----------------------------------------------------------------------
# Configuration and client query
# ----------------------------------------------------------------------
def build_configuration(
    parameters: StarParameters, with_instance: bool = False
) -> MarsConfiguration:
    """Assemble the star configuration.

    With ``parameters.include_base_storage`` the proprietary schema contains
    the shredded base tables *and* the views (the Figure 5 scenario: maximal
    redundancy); without it only the views are stored (the Figure 8 /
    specialization scenario).
    """
    configuration = MarsConfiguration(f"star_nc{parameters.corners}")
    instance = build_star_document(parameters) if with_instance else None
    configuration.add_public_document(STAR_DOCUMENT, instance)
    for xic in star_xics(parameters):
        configuration.add_xic(xic)
    if parameters.include_base_storage:
        hub_view = hub_shredding_view(parameters)
        configuration.add_relational_view(
            hub_view,
            attributes=("k",) + tuple(f"a{i}" for i in range(1, parameters.corners + 1)),
        )
        configuration.add_key("R_store", ("k",))
        # Sharding hints: the hub splits on its key; corner tables split on
        # their A value (the hub's foreign key into them).
        configuration.set_partition_key("R_store", "k")
        for index in range(1, parameters.corners + 1):
            configuration.add_relational_view(
                corner_shredding_view(index), attributes=("a", "b")
            )
            configuration.set_partition_key(f"S{index}_store", "a")
    for index in range(1, parameters.view_count + 1):
        configuration.add_relational_view(
            star_view(index), attributes=("k", "b_left", "b_right")
        )
        # The star views carry the hub key, so they shard alongside it.
        configuration.set_partition_key(view_name(index), "k")
    return configuration


def client_query(parameters: StarParameters) -> XBindQuery:
    """The star client query joining R with all NC corners."""
    hub = Variable("r_el")
    key = Variable("k")
    head: List[Variable] = [key]
    body = [
        PathAtom("//R", hub, document=STAR_DOCUMENT),
        PathAtom("./K/text()", key, source=hub),
    ]
    for index in range(1, parameters.corners + 1):
        a = Variable(f"a{index}")
        b = Variable(f"b{index}")
        corner = Variable(f"s{index}_el")
        body.append(PathAtom(f"./{hub_attribute_tag(index)}/text()", a, source=hub))
        body.append(PathAtom(f"//{corner_tag(index)}", corner, document=STAR_DOCUMENT))
        body.append(PathAtom("./A/text()", a, source=corner))
        body.append(PathAtom("./B/text()", b, source=corner))
        head.append(b)
    return XBindQuery(f"Star{parameters.corners}", head, body)
