"""The medical publishing scenario of paper Example 1.1.

Proprietary storage:

* relational tables ``patientDiag(name, diag)`` and
  ``patientDrug(name, drug, usage)`` (sensitive: patient names);
* a native XML document ``catalog.xml`` associating drugs with prices and
  free-form notes;
* for tuning, a redundant relational copy ``drugPrice(drug, price)`` of part
  of ``catalog.xml`` (STORED-style LAV view) and, optionally, a cached XML
  document ``cache.xml`` holding the result of a previously answered query
  (the association diagnosis-drug from ``case.xml``).

Public schema:

* ``case.xml``, produced by the GAV view ``CaseMap`` which joins the two
  patient tables on the (hidden) patient name;
* ``catalog.xml``, published as-is (IdMap).

The client query asks for the association between each diagnosis and the
corresponding drug's price; thanks to the redundancy it has several
reformulations, and MARS picks the cheapest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..compile.view_compiler import ElementRule, RelationalView, XMLView
from ..core.configuration import MarsConfiguration
from ..logical.terms import Variable
from ..xbind.atoms import PathAtom
from ..xbind.query import XBindQuery
from ..xmlmodel.model import XMLDocument, XMLNode

CASE_DOCUMENT = "case.xml"
CATALOG_DOCUMENT = "catalog.xml"
CACHE_DOCUMENT = "cache.xml"

DEFAULT_PATIENTS = (
    ("ana", "flu", "tamiflu", "oral"),
    ("bob", "flu", "tamiflu", "oral"),
    ("cruz", "migraine", "triptan", "oral"),
    ("dana", "asthma", "albuterol", "inhaled"),
    ("eve", "migraine", "ibuprofen", "oral"),
)

DEFAULT_CATALOG = (
    ("tamiflu", "75", "take with food"),
    ("triptan", "120", "max twice daily"),
    ("albuterol", "40", "shake before use"),
    ("ibuprofen", "5", "generic available"),
    ("insulin", "90", "refrigerate"),
)


def build_catalog_document(
    entries: Sequence[Tuple[str, str, str]] = DEFAULT_CATALOG,
) -> XMLDocument:
    """The stored ``catalog.xml`` document: drug name, price and notes."""
    root = XMLNode("catalog")
    for name, price, notes in entries:
        drug = root.add("drug")
        drug.add("name", name)
        drug.add("price", price)
        drug.add("notes", notes)
    return XMLDocument(CATALOG_DOCUMENT, root)


def case_map_view() -> XMLView:
    """The GAV mapping CaseMap: publish patient data as ``case.xml``, hiding names."""
    diag, drug, usage = Variable("diag"), Variable("drug"), Variable("usage")
    name = Variable("pname")
    from ..logical.atoms import RelationalAtom

    case_body = (
        RelationalAtom("patientDiag", (name, diag)),
        RelationalAtom("patientDrug", (name, drug, usage)),
    )
    return XMLView(
        "CaseMap",
        CASE_DOCUMENT,
        [
            ElementRule("cases", "cases", (), ()),
            ElementRule(
                "case", "case", (diag, drug, usage), case_body, parent="cases"
            ),
            ElementRule(
                "diag",
                "diag",
                (diag, drug, usage),
                case_body,
                parent="case",
                text_var=diag,
            ),
            ElementRule(
                "drug",
                "drug",
                (diag, drug, usage),
                case_body,
                parent="case",
                text_var=drug,
            ),
            ElementRule(
                "usage",
                "usage",
                (diag, drug, usage),
                case_body,
                parent="case",
                text_var=usage,
            ),
        ],
    )


def drug_price_view() -> RelationalView:
    """The STORED-style redundant relational copy of drug prices (DrugPriceMap)."""
    drug_el, drug, price = Variable("d_el"), Variable("drug"), Variable("price")
    definition = XBindQuery(
        "DrugPriceMap",
        (drug, price),
        (
            PathAtom("//drug", drug_el, document=CATALOG_DOCUMENT),
            PathAtom("./name/text()", drug, source=drug_el),
            PathAtom("./price/text()", price, source=drug_el),
        ),
    )
    return RelationalView("drugPrice", definition)


def cache_view() -> XMLView:
    """The cached answer of PrevQ: diagnosis-drug associations from ``case.xml``."""
    case_el, diag, drug = Variable("c_el"), Variable("cdiag"), Variable("cdrug")
    body = (
        PathAtom("//case", case_el, document=CASE_DOCUMENT),
        PathAtom("./diag/text()", diag, source=case_el),
        PathAtom("./drug/text()", drug, source=case_el),
    )
    return XMLView(
        "PrevQ",
        CACHE_DOCUMENT,
        [
            ElementRule("cache", "cache", (), ()),
            ElementRule("entry", "entry", (diag, drug), body, parent="cache"),
            ElementRule(
                "ediag", "diag", (diag, drug), body, parent="entry", text_var=diag
            ),
            ElementRule(
                "edrug", "drug", (diag, drug), body, parent="entry", text_var=drug
            ),
        ],
    )


def build_configuration(
    patients: Sequence[Tuple[str, str, str, str]] = DEFAULT_PATIENTS,
    catalog: Sequence[Tuple[str, str, str]] = DEFAULT_CATALOG,
    include_cache: bool = False,
) -> MarsConfiguration:
    """The full Example 1.1 configuration with instance data."""
    configuration = MarsConfiguration("medical")
    configuration.add_relation(
        "patientDiag",
        ("name", "diag"),
        rows=[(name, diag) for name, diag, _, _ in patients],
    )
    configuration.add_relation(
        "patientDrug",
        ("name", "drug", "usage"),
        rows=[(name, drug, usage) for name, _, drug, usage in patients],
    )
    configuration.publish_document_as_is(CATALOG_DOCUMENT, build_catalog_document(catalog))
    configuration.add_xml_view(case_map_view(), published=True)
    configuration.add_relational_view(drug_price_view(), attributes=("drug", "price"))
    # Sharding hints: the two patient tables split on the (hidden) patient
    # name — CaseMap joins them on it, so a sharded deployment keeps that
    # join co-partitioned — and the redundant price copy splits on drug.
    # The catalog's GReX encoding stays broadcast (small dimension data).
    configuration.set_partition_key("patientDiag", "name")
    configuration.set_partition_key("patientDrug", "name")
    configuration.set_partition_key("drugPrice", "drug")
    if include_cache:
        cache = cache_view()
        configuration.add_xml_view(cache, published=False)
        configuration.add_proprietary_document(CACHE_DOCUMENT)
        configuration.public_documents.pop(CACHE_DOCUMENT, None)
    return configuration


def client_query() -> XBindQuery:
    """Example 1.1's client query: diagnosis joined with the drug's price."""
    case_el, drug_el = Variable("case_el"), Variable("drug_el")
    diag, drug, price = Variable("diag"), Variable("drug"), Variable("price")
    return XBindQuery(
        "DiagPrice",
        (diag, price),
        (
            PathAtom("//case", case_el, document=CASE_DOCUMENT),
            PathAtom("./diag/text()", diag, source=case_el),
            PathAtom("./drug/text()", drug, source=case_el),
            PathAtom("//drug", drug_el, document=CATALOG_DOCUMENT),
            PathAtom("./name/text()", drug, source=drug_el),
            PathAtom("./price/text()", price, source=drug_el),
        ),
    )


def drug_usage_query() -> XBindQuery:
    """A second client query: drugs and how they are used, from ``case.xml`` only."""
    case_el = Variable("case_el")
    drug, usage = Variable("drug"), Variable("usage")
    return XBindQuery(
        "DrugUsage",
        (drug, usage),
        (
            PathAtom("//case", case_el, document=CASE_DOCUMENT),
            PathAtom("./drug/text()", drug, source=case_el),
            PathAtom("./usage/text()", usage, source=case_el),
        ),
    )
