"""Pluggable storage backends executing MARS reformulations.

The default ``memory`` backend runs the original hash-join evaluator; the
``sqlite`` backend ships the parameterized SQL to a real relational engine.
Select one with ``create_backend("sqlite")`` or via
``MarsConfiguration.backend`` / ``MarsExecutor(configuration, backend=...)``.
"""

from .base import (
    Query,
    Row,
    StorageBackend,
    available_backends,
    create_backend,
    default_backend_name,
    register_backend,
)
from .memory import MemoryBackend
from .sqlite import SQLiteBackend

register_backend("memory", MemoryBackend)
register_backend("sqlite", SQLiteBackend)

__all__ = [
    "MemoryBackend",
    "Query",
    "Row",
    "SQLiteBackend",
    "StorageBackend",
    "available_backends",
    "create_backend",
    "default_backend_name",
    "register_backend",
]
