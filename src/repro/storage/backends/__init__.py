"""Pluggable storage backends executing MARS reformulations.

The default ``memory`` backend runs the original hash-join evaluator; the
``sqlite`` backend ships the parameterized SQL to a real relational engine;
the ``sharded`` backend partitions tables over N child backends (any mix of
the other engines) with shard-pruning routing and scatter/gather execution.
Select one with ``create_backend("sqlite")`` or via
``MarsConfiguration.backend`` / ``MarsExecutor(configuration, backend=...)``.

Beyond loading and executing, every backend can ``explain`` how it would
run a plan and measure a statistics catalog of its own data
(``collect_statistics()``, consumed by :mod:`repro.cost`).
"""

from .base import (
    Query,
    Row,
    StorageBackend,
    available_backends,
    create_backend,
    default_backend_name,
    register_backend,
)
from .memory import MemoryBackend
from .sqlite import SQLiteBackend

register_backend("memory", MemoryBackend)
register_backend("sqlite", SQLiteBackend)

# Imported after the registry exists: the sharded and replicated backends
# build their child engines through create_backend at runtime but only need
# base.py at import time, so there is no cycle.
from ...shard.backend import ShardedBackend  # noqa: E402

register_backend("sharded", ShardedBackend)

from ...replica.backend import ReplicatedBackend  # noqa: E402

register_backend("replicated", ReplicatedBackend)

__all__ = [
    "MemoryBackend",
    "Query",
    "ReplicatedBackend",
    "Row",
    "SQLiteBackend",
    "ShardedBackend",
    "StorageBackend",
    "available_backends",
    "create_backend",
    "default_backend_name",
    "register_backend",
]
